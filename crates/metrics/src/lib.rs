//! Metric series, summary statistics and report rendering for the
//! partitioning study.
//!
//! The paper presents its results as time series sampled in 4-hour windows
//! (Fig. 3), box-and-whisker/violin statistics over periods (Fig. 4) and
//! per-method aggregates versus shard count (Fig. 5). This crate provides
//! the corresponding building blocks:
//!
//! * [`TimeSeries`] — timestamped scalar series with CSV export;
//! * [`FiveNumber`] — min/Q1/median/Q3/max (the box-and-whisker numbers);
//! * [`ViolinDensity`] — a Gaussian kernel density estimate (the violin);
//! * [`Table`] — ASCII/CSV table rendering for the bench binaries;
//! * [`Json`] — a minimal JSON builder for machine-readable reports
//!   (the workspace builds offline, without `serde_json`);
//! * [`calendar`] — month labelling aligned with the paper's x-axes.
//!
//! # Examples
//!
//! ```
//! use blockpart_metrics::FiveNumber;
//!
//! let stats = FiveNumber::of(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
//! assert_eq!(stats.median, 3.0);
//! assert_eq!(stats.max, 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
mod concentration;
mod histogram;
mod json;
mod report;
mod series;
mod summary;

pub use concentration::{gini, top_share};
pub use histogram::LogHistogram;
pub use json::Json;
pub use report::Table;
pub use series::TimeSeries;
pub use summary::{percentile_sorted, FiveNumber, ViolinDensity};
