/root/repo/target/debug/deps/fig6-55ab282f6d2528e8.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-55ab282f6d2528e8: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
