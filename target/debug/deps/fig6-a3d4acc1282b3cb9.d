/root/repo/target/debug/deps/fig6-a3d4acc1282b3cb9.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-a3d4acc1282b3cb9.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
