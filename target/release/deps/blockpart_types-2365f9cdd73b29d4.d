/root/repo/target/release/deps/blockpart_types-2365f9cdd73b29d4.d: crates/types/src/lib.rs crates/types/src/address.rs crates/types/src/quantity.rs crates/types/src/shard.rs crates/types/src/time.rs

/root/repo/target/release/deps/libblockpart_types-2365f9cdd73b29d4.rlib: crates/types/src/lib.rs crates/types/src/address.rs crates/types/src/quantity.rs crates/types/src/shard.rs crates/types/src/time.rs

/root/repo/target/release/deps/libblockpart_types-2365f9cdd73b29d4.rmeta: crates/types/src/lib.rs crates/types/src/address.rs crates/types/src/quantity.rs crates/types/src/shard.rs crates/types/src/time.rs

crates/types/src/lib.rs:
crates/types/src/address.rs:
crates/types/src/quantity.rs:
crates/types/src/shard.rs:
crates/types/src/time.rs:
