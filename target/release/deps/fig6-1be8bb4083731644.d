/root/repo/target/release/deps/fig6-1be8bb4083731644.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-1be8bb4083731644: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
