//! The `Partitioner` abstraction shared by all methods.

use blockpart_graph::Csr;
use blockpart_types::ShardCount;

use crate::partition::Partition;

/// Everything a partitioner needs to (re)partition a graph.
///
/// * `csr` — the symmetric weighted graph;
/// * `k` — the number of shards;
/// * `stable_ids` — optional per-vertex stable identifiers (e.g.
///   [`Address::stable_hash`](blockpart_types::Address::stable_hash)); hash
///   partitioning uses these so a vertex keeps its shard across graphs.
///   Falls back to the dense index when absent;
/// * `previous` — the current assignment, used by incremental methods
///   (distributed KL refines it rather than starting over).
///
/// # Examples
///
/// ```
/// use blockpart_graph::Csr;
/// use blockpart_partition::PartitionRequest;
/// use blockpart_types::ShardCount;
///
/// let csr = Csr::from_edges(2, &[(0, 1, 1)]);
/// let req = PartitionRequest::new(&csr, ShardCount::TWO);
/// assert!(req.stable_ids.is_none());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PartitionRequest<'a> {
    /// The graph to partition.
    pub csr: &'a Csr,
    /// Number of shards.
    pub k: ShardCount,
    /// Stable per-vertex identifiers, parallel to the CSR vertex order.
    pub stable_ids: Option<&'a [u64]>,
    /// The partition currently installed, if any.
    pub previous: Option<&'a Partition>,
}

impl<'a> PartitionRequest<'a> {
    /// Creates a request with no stable ids and no previous partition.
    pub fn new(csr: &'a Csr, k: ShardCount) -> Self {
        PartitionRequest {
            csr,
            k,
            stable_ids: None,
            previous: None,
        }
    }

    /// Attaches stable per-vertex identifiers.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != csr.node_count()`.
    pub fn with_stable_ids(mut self, ids: &'a [u64]) -> Self {
        assert_eq!(ids.len(), self.csr.node_count(), "stable id slice length");
        self.stable_ids = Some(ids);
        self
    }

    /// Attaches the currently-installed partition.
    pub fn with_previous(mut self, previous: &'a Partition) -> Self {
        self.previous = Some(previous);
        self
    }

    /// The stable id of vertex `v` (dense index when no ids were supplied).
    pub fn stable_id(&self, v: usize) -> u64 {
        match self.stable_ids {
            Some(ids) => ids[v],
            None => v as u64,
        }
    }
}

/// A graph partitioning algorithm.
///
/// Implementations may keep internal state (RNG streams, tuning); calling
/// [`Partitioner::partition`] twice with the same request and a freshly
/// constructed partitioner must produce the same result (all provided
/// implementations are deterministic given their seed).
///
/// The trait is object-safe: heterogeneous method tables
/// (`Vec<Box<dyn Partitioner>>`) drive the study.
pub trait Partitioner {
    /// A short human-readable method name ("hash", "metis", …).
    fn name(&self) -> &str;

    /// Produces an assignment of every vertex in `req.csr` to one of
    /// `req.k` shards.
    fn partition(&mut self, req: &PartitionRequest<'_>) -> Partition;
}

impl<P: Partitioner + ?Sized> Partitioner for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn partition(&mut self, req: &PartitionRequest<'_>) -> Partition {
        (**self).partition(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::HashPartitioner;

    #[test]
    fn request_builders() {
        let csr = Csr::from_edges(3, &[(0, 1, 1)]);
        let ids = [10u64, 20, 30];
        let prev = Partition::all_on_first(3, ShardCount::TWO);
        let req = PartitionRequest::new(&csr, ShardCount::TWO)
            .with_stable_ids(&ids)
            .with_previous(&prev);
        assert_eq!(req.stable_id(1), 20);
        assert!(req.previous.is_some());
    }

    #[test]
    fn stable_id_falls_back_to_index() {
        let csr = Csr::from_edges(2, &[(0, 1, 1)]);
        let req = PartitionRequest::new(&csr, ShardCount::TWO);
        assert_eq!(req.stable_id(1), 1);
    }

    #[test]
    #[should_panic(expected = "stable id slice length")]
    fn wrong_id_length_panics() {
        let csr = Csr::from_edges(2, &[(0, 1, 1)]);
        let ids = [1u64];
        let _ = PartitionRequest::new(&csr, ShardCount::TWO).with_stable_ids(&ids);
    }

    #[test]
    fn trait_is_object_safe() {
        let mut boxed: Box<dyn Partitioner> = Box::new(HashPartitioner::new());
        let csr = Csr::from_edges(2, &[(0, 1, 1)]);
        let p = boxed.partition(&PartitionRequest::new(&csr, ShardCount::TWO));
        assert_eq!(p.len(), 2);
        assert_eq!(boxed.name(), "hash");
    }
}
