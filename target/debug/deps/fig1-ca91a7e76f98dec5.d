/root/repo/target/debug/deps/fig1-ca91a7e76f98dec5.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/libfig1-ca91a7e76f98dec5.rmeta: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
