/root/repo/target/debug/deps/runtime-89aec9de23349d17.d: tests/runtime.rs

/root/repo/target/debug/deps/libruntime-89aec9de23349d17.rmeta: tests/runtime.rs

tests/runtime.rs:
