//! The study runner: methods × shard counts over one interaction log.
//!
//! [`Study`] predates the unified [`Experiment`](crate::Experiment)
//! pipeline and is now a thin shim over it, kept so [`Method`]-based call
//! sites migrate incrementally. New code should use
//! [`Experiment`](crate::Experiment) with a
//! [`StrategyRegistry`](crate::StrategyRegistry).

use std::sync::Arc;

use blockpart_graph::InteractionLog;
use blockpart_shard::SimulationResult;
use blockpart_types::{Duration, ShardCount};

use crate::experiment::Experiment;
use crate::methods::Method;
use crate::strategy::{CanonicalStrategy, StrategySpec};

/// One completed simulation: a method at a shard count.
#[derive(Clone, Debug)]
pub struct MethodRun {
    /// The partitioning method.
    pub method: Method,
    /// The shard count.
    pub k: ShardCount,
    /// Per-window metrics and totals.
    pub result: SimulationResult,
}

/// Results of a [`Study`], indexable by method and shard count.
#[derive(Clone, Debug, Default)]
pub struct StudyResult {
    /// All runs, in methods-major order.
    pub runs: Vec<MethodRun>,
}

impl StudyResult {
    /// The result for `method` at `k`, if it was part of the study.
    pub fn get(&self, method: Method, k: ShardCount) -> Option<&SimulationResult> {
        self.runs
            .iter()
            .find(|r| r.method == method && r.k == k)
            .map(|r| &r.result)
    }
}

/// Configures and runs a partitioning study over an interaction log.
///
/// Runs execute in parallel (one thread per method × shard-count pair,
/// bounded by available parallelism) and are individually deterministic:
/// the same log, methods, shard counts and seed always produce the same
/// result regardless of thread scheduling.
///
/// # Examples
///
/// ```
/// use blockpart_core::{Method, Study};
/// use blockpart_graph::{Interaction, InteractionLog};
/// use blockpart_types::{Address, ShardCount, Timestamp};
///
/// let mut log = InteractionLog::new();
/// for i in 0..200u64 {
///     log.push(Interaction::new(
///         Timestamp::from_secs(i * 600),
///         Address::from_index(i % 10),
///         Address::from_index((i + 1) % 10),
///     ));
/// }
/// let result = Study::new(&log)
///     .methods(vec![Method::Hash])
///     .shard_counts(vec![ShardCount::TWO])
///     .run();
/// assert_eq!(result.runs.len(), 1);
/// ```
#[derive(Debug)]
pub struct Study<'a> {
    log: &'a InteractionLog,
    methods: Vec<Method>,
    shard_counts: Vec<ShardCount>,
    window: Duration,
    seed: u64,
}

impl<'a> Study<'a> {
    /// Creates a study over `log` with the paper's defaults: all five
    /// methods, k ∈ {2, 4, 8}, 4-hour windows.
    pub fn new(log: &'a InteractionLog) -> Self {
        Study {
            log,
            methods: Method::ALL.to_vec(),
            shard_counts: [2u16, 4, 8]
                .iter()
                .map(|&k| ShardCount::new(k).expect("non-zero"))
                .collect(),
            window: Duration::hours(4),
            seed: 0x57_55_44_59, // "STUDY"
        }
    }

    /// Restricts the methods to run.
    pub fn methods(mut self, methods: Vec<Method>) -> Self {
        self.methods = methods;
        self
    }

    /// Restricts the shard counts.
    pub fn shard_counts(mut self, shard_counts: Vec<ShardCount>) -> Self {
        self.shard_counts = shard_counts;
        self
    }

    /// Overrides the measurement window.
    pub fn window(mut self, window: Duration) -> Self {
        self.window = window;
        self
    }

    /// Overrides the seed fed to the stochastic partitioners.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs every method × shard-count pair and collects the results.
    ///
    /// Delegates to the unified [`Experiment`] pipeline with each
    /// method's canonical strategy spec; the numbers are identical to
    /// the historical direct implementation.
    pub fn run(self) -> StudyResult {
        let specs: Vec<Arc<dyn StrategySpec>> = self
            .methods
            .iter()
            .map(|&m| Arc::new(CanonicalStrategy::new(m)) as Arc<dyn StrategySpec>)
            .collect();
        let report = Experiment::over_log(self.log)
            .strategies(specs)
            .shard_counts(self.shard_counts.clone())
            .window(self.window)
            .seed(self.seed)
            .run();

        // the experiment preserves strategy-major pair order, which is
        // exactly the methods-major order this result promises
        let mut results = report.runs.into_iter();
        let mut runs = Vec::new();
        for &method in &self.methods {
            for &k in &self.shard_counts {
                let run = results.next().expect("one run per pair");
                assert_eq!(run.k, k, "experiment pair order changed");
                assert_eq!(
                    run.strategy,
                    method.label(),
                    "experiment pair order changed"
                );
                runs.push(MethodRun {
                    method,
                    k,
                    result: run.offline.expect("offline stage enabled"),
                });
            }
        }
        StudyResult { runs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpart_graph::Interaction;
    use blockpart_types::{Address, Timestamp};

    fn log() -> InteractionLog {
        let mut log = InteractionLog::new();
        for d in 0..30u64 {
            for h in 0..24 {
                let t = Timestamp::from_secs(d * 86_400 + h * 3_600);
                let i = (d * 24 + h) % 20;
                log.push(Interaction::new(
                    t,
                    Address::from_index(i),
                    Address::from_index((i + 1) % 20),
                ));
            }
        }
        log
    }

    #[test]
    fn runs_all_pairs() {
        let log = log();
        let result = Study::new(&log)
            .methods(vec![Method::Hash, Method::Metis])
            .shard_counts(vec![ShardCount::TWO, ShardCount::new(4).unwrap()])
            .run();
        assert_eq!(result.runs.len(), 4);
        assert!(result.get(Method::Hash, ShardCount::TWO).is_some());
        assert!(result.get(Method::Kl, ShardCount::TWO).is_none());
    }

    #[test]
    fn parallel_runs_are_deterministic() {
        let log = log();
        let run = || {
            Study::new(&log)
                .methods(vec![Method::Kl, Method::Metis, Method::TrMetis])
                .shard_counts(vec![ShardCount::TWO])
                .seed(42)
                .run()
        };
        let a = run();
        let b = run();
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            assert_eq!(ra.method, rb.method);
            assert_eq!(ra.result.total_moves, rb.result.total_moves);
            assert_eq!(ra.result.windows.len(), rb.result.windows.len());
            for (wa, wb) in ra.result.windows.iter().zip(&rb.result.windows) {
                assert_eq!(wa, wb);
            }
        }
    }

    #[test]
    fn default_study_covers_paper_grid() {
        let log = log();
        let s = Study::new(&log);
        assert_eq!(s.methods.len(), 5);
        assert_eq!(s.shard_counts.len(), 3);
    }
}
