/root/repo/target/debug/deps/blockpart-256c24c5fee3bc6e.d: src/bin/blockpart.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart-256c24c5fee3bc6e.rmeta: src/bin/blockpart.rs Cargo.toml

src/bin/blockpart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
