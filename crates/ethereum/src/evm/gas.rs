//! Gas schedules: per-opcode prices, and the EIP-150 repricing.
//!
//! The September–October 2016 attack worked because pre-fork Ethereum
//! priced state-reading opcodes far below their real I/O cost, so an
//! attacker could touch millions of fresh accounts for pennies. EIP-150
//! ("Tangerine Whistle") repriced them. Modelling both schedules lets the
//! substrate reproduce the economics: the attack mix is cheap under the
//! frontier schedule and an order of magnitude costlier after the fork.

use blockpart_types::Gas;
use serde::{Deserialize, Serialize};

use crate::evm::Op;

/// Per-opcode gas prices.
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::evm::{GasSchedule, Op};
///
/// let pre = GasSchedule::frontier();
/// let post = GasSchedule::eip150();
/// assert!(post.cost(&Op::Balance).get() > pre.cost(&Op::Balance).get() * 10);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GasSchedule {
    /// Flat cost charged for every transaction.
    pub tx_base: u64,
    /// Stack manipulation (`PUSH`, `POP`, `DUP`, `SWAP`).
    pub stack: u64,
    /// Arithmetic (`ADD` … `MOD`).
    pub arith: u64,
    /// Environment reads (`CALLER`, `CALLVALUE`, `SELFADDR`,
    /// `BLOCKTIME`, `RAND`).
    pub env: u64,
    /// `BALANCE` — the opcode family the 2016 attack abused.
    pub balance: u64,
    /// `SLOAD`.
    pub sload: u64,
    /// `SSTORE`.
    pub sstore: u64,
    /// `TRANSFER` (value transfer surcharge).
    pub transfer: u64,
    /// `CALL` base cost.
    pub call: u64,
    /// `CREATE`.
    pub create: u64,
    /// `JUMP`.
    pub jump: u64,
    /// `JUMPI`.
    pub jumpi: u64,
    /// `LOG`.
    pub log: u64,
}

impl GasSchedule {
    /// The launch-era prices: state reads are nearly free, which is what
    /// made the 2016 spam economically viable.
    pub const fn frontier() -> GasSchedule {
        GasSchedule {
            tx_base: 21_000,
            stack: 3,
            arith: 5,
            env: 2,
            balance: 20,
            sload: 50,
            sstore: 5_000,
            transfer: 9_000,
            call: 40,
            create: 32_000,
            jump: 8,
            jumpi: 10,
            log: 375,
        }
    }

    /// The EIP-150 repricing (October 2016): `BALANCE` 20→400,
    /// `SLOAD` 50→200, `CALL` 40→700.
    pub const fn eip150() -> GasSchedule {
        GasSchedule {
            balance: 400,
            sload: 200,
            call: 700,
            ..GasSchedule::frontier()
        }
    }

    /// The price of one instruction under this schedule.
    pub fn cost(&self, op: &Op) -> Gas {
        let units = match op {
            Op::Stop | Op::Revert => 0,
            Op::Push(_) | Op::Pop | Op::Dup(_) | Op::Swap(_) => self.stack,
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod => self.arith,
            Op::Caller | Op::CallValue | Op::SelfAddr | Op::BlockTime | Op::Rand => self.env,
            Op::Balance => self.balance,
            Op::SLoad => self.sload,
            Op::SStore => self.sstore,
            Op::Transfer => self.transfer,
            Op::Call => self.call,
            Op::Create => self.create,
            Op::Jump(_) => self.jump,
            Op::JumpI(_) => self.jumpi,
            Op::Log => self.log,
        };
        Gas::new(units)
    }
}

impl Default for GasSchedule {
    /// Defaults to the post-fork (EIP-150) prices.
    fn default() -> Self {
        GasSchedule::eip150()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eip150_reprices_io_only() {
        let pre = GasSchedule::frontier();
        let post = GasSchedule::eip150();
        assert_eq!(post.balance, 400);
        assert_eq!(post.sload, 200);
        assert_eq!(post.call, 700);
        // unchanged categories
        assert_eq!(pre.sstore, post.sstore);
        assert_eq!(pre.tx_base, post.tx_base);
        assert_eq!(pre.create, post.create);
    }

    #[test]
    fn default_is_post_fork() {
        assert_eq!(GasSchedule::default(), GasSchedule::eip150());
    }

    #[test]
    fn cost_covers_every_opcode() {
        let s = GasSchedule::eip150();
        for op in [
            Op::Stop,
            Op::Push(1),
            Op::Pop,
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Div,
            Op::Mod,
            Op::Dup(0),
            Op::Swap(1),
            Op::Caller,
            Op::CallValue,
            Op::SelfAddr,
            Op::BlockTime,
            Op::Rand,
            Op::Balance,
            Op::SLoad,
            Op::SStore,
            Op::Transfer,
            Op::Call,
            Op::Create,
            Op::Jump(0),
            Op::JumpI(0),
            Op::Log,
            Op::Revert,
        ] {
            // terminators are free, everything else costs something
            let free = matches!(op, Op::Stop | Op::Revert);
            assert_eq!(s.cost(&op).get() == 0, free, "{op:?}");
        }
    }

    #[test]
    fn matches_legacy_op_costs() {
        // Op::gas_cost is the EIP-150 schedule (kept for convenience)
        let s = GasSchedule::eip150();
        for op in [Op::SLoad, Op::SStore, Op::Call, Op::Balance, Op::Transfer] {
            assert_eq!(s.cost(&op), op.gas_cost(), "{op:?}");
        }
    }
}
