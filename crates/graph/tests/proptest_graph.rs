//! Property-based tests for the graph crate's data structures and IO.

use blockpart_graph::io::{read_trace, write_trace};
use blockpart_graph::{Csr, GraphBuilder, Interaction, InteractionLog};
use blockpart_types::{AccountKind, Address, Timestamp};
use proptest::prelude::*;

fn interaction_strategy() -> impl Strategy<Value = (u64, u64, u64, u64, bool, bool)> {
    // (time-delta, from, to, weight, from_is_contract, to_is_contract)
    (
        0u64..500,
        0u64..30,
        0u64..30,
        1u64..20,
        any::<bool>(),
        any::<bool>(),
    )
}

fn log_from(raw: Vec<(u64, u64, u64, u64, bool, bool)>) -> InteractionLog {
    let mut t = 0u64;
    let mut log = InteractionLog::new();
    for (dt, from, to, weight, fc, tc) in raw {
        t += dt;
        let kind = |c: bool| {
            if c {
                AccountKind::Contract
            } else {
                AccountKind::ExternallyOwned
            }
        };
        log.push(Interaction {
            time: Timestamp::from_secs(t),
            from: Address::from_index(from),
            to: Address::from_index(to),
            weight,
            from_kind: kind(fc),
            to_kind: kind(tc),
        });
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn trace_roundtrip_is_lossless(raw in proptest::collection::vec(interaction_strategy(), 0..150)) {
        let log = log_from(raw);
        let mut buf = Vec::new();
        write_trace(&mut buf, &log).unwrap();
        let restored = read_trace(&buf[..]).unwrap();
        prop_assert_eq!(restored.events(), log.events());
    }

    #[test]
    fn builder_weight_accounting(raw in proptest::collection::vec(interaction_strategy(), 1..150)) {
        let log = log_from(raw.clone());
        let g = InteractionLog::graph_of(log.events());

        // every interaction adds `weight` to the source; non-self-loops
        // also add it to the target
        let expected_node_weight: u64 = raw.iter()
            .map(|&(_, f, t, w, _, _)| if f == t { w } else { 2 * w })
            .sum();
        prop_assert_eq!(g.total_node_weight(), expected_node_weight);

        // edge weight excludes self-loops
        let expected_edge_weight: u64 = raw.iter()
            .filter(|&&(_, f, t, _, _, _)| f != t)
            .map(|&(_, _, _, w, _, _)| w)
            .sum();
        prop_assert_eq!(g.total_edge_weight(), expected_edge_weight);
    }

    #[test]
    fn csr_of_any_log_validates(raw in proptest::collection::vec(interaction_strategy(), 0..150)) {
        let log = log_from(raw);
        let g = InteractionLog::graph_of(log.events());
        let csr = g.to_csr();
        prop_assert!(csr.validate().is_ok());
        // symmetric view preserves undirected weight: each directed edge's
        // weight appears exactly once in the undirected total
        prop_assert_eq!(csr.total_edge_weight(), g.total_edge_weight());
    }

    #[test]
    fn window_partitions_cover_log(
        raw in proptest::collection::vec(interaction_strategy(), 1..150),
        cut1 in 0u64..100_000,
        cut2 in 0u64..100_000,
    ) {
        let log = log_from(raw);
        let (a, b) = if cut1 <= cut2 { (cut1, cut2) } else { (cut2, cut1) };
        let (ta, tb) = (Timestamp::from_secs(a), Timestamp::from_secs(b));
        let far = Timestamp::from_secs(u64::MAX);
        let n = log.window(Timestamp::EPOCH, ta).len()
            + log.window(ta, tb).len()
            + log.window(tb, far).len();
        prop_assert_eq!(n, log.len());
    }

    #[test]
    fn contract_kind_never_downgrades(raw in proptest::collection::vec(interaction_strategy(), 1..100)) {
        let log = log_from(raw.clone());
        let g = InteractionLog::graph_of(log.events());
        // if an address was ever flagged contract, the graph says contract
        for &(_, f, t, _, fc, tc) in &raw {
            for (idx, is_c) in [(f, fc), (t, tc)] {
                if is_c {
                    let node = g.node_of(Address::from_index(idx)).unwrap();
                    prop_assert!(g.kind(node).is_contract());
                }
            }
        }
    }

    #[test]
    fn builder_is_insensitive_to_weight_splitting(
        pairs in proptest::collection::vec((0u64..10, 0u64..10, 1u64..10), 1..50),
    ) {
        // adding (u, v, w) once equals adding (u, v, 1) w times
        let mut whole = GraphBuilder::new();
        let mut split = GraphBuilder::new();
        for &(u, v, w) in &pairs {
            let (a, b) = (Address::from_index(u), Address::from_index(v));
            whole.add_interaction(a, b, w);
            for _ in 0..w {
                split.add_interaction(a, b, 1);
            }
        }
        let (gw, gs) = (whole.build(), split.build());
        prop_assert_eq!(gw.total_edge_weight(), gs.total_edge_weight());
        prop_assert_eq!(gw.edge_count(), gs.edge_count());
        prop_assert_eq!(gw.total_node_weight(), gs.total_node_weight());
    }

    #[test]
    fn parallel_build_matches_sequential(
        raw in proptest::collection::vec(interaction_strategy(), 0..200),
        workers in 2usize..6,
    ) {
        let log = log_from(raw);
        let serial = InteractionLog::graph_of_workers(log.events(), 1);
        let parallel = InteractionLog::graph_of_workers(log.events(), workers);

        // identical vertex numbering, kinds and weights …
        prop_assert_eq!(serial.node_count(), parallel.node_count());
        for (a, b) in serial.nodes().zip(parallel.nodes()) {
            prop_assert_eq!(a, b);
        }
        // … and identical adjacency (edge iteration covers every row in
        // order, so equality here is byte-identity of the CSR arrays)
        prop_assert_eq!(serial.edge_count(), parallel.edge_count());
        for (a, b) in serial.edges().zip(parallel.edges()) {
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(serial.total_edge_weight(), parallel.total_edge_weight());
        // the symmetric views agree too (Csr derives PartialEq)
        prop_assert_eq!(serial.to_csr(), parallel.to_csr());
    }

    #[test]
    fn parallel_csr_matches_sequential(
        raw in proptest::collection::vec(interaction_strategy(), 0..200),
        workers in 2usize..6,
    ) {
        let log = log_from(raw);
        let g = InteractionLog::graph_of(log.events());
        let serial = g.to_csr_workers(1);
        let parallel = g.to_csr_workers(workers);
        prop_assert_eq!(&serial, &parallel);
        prop_assert!(parallel.validate().is_ok());
    }

    #[test]
    fn bfs_reaches_exactly_the_component(
        (n, edges) in (2usize..40).prop_flat_map(|n| {
            let edge = (0..n as u32, 0..n as u32, 1u64..5)
                .prop_filter("no self-loops", |(u, v, _)| u != v);
            (Just(n), proptest::collection::vec(edge, 0..80))
        }),
    ) {
        let csr = Csr::from_edges(n, &edges);
        let (labels, _) = blockpart_graph::algos::connected_components(&csr);
        let reach = blockpart_graph::algos::bfs(&csr, 0);
        let component_size = labels.iter().filter(|&&l| l == labels[0]).count();
        prop_assert_eq!(reach.len(), component_size);
    }
}
