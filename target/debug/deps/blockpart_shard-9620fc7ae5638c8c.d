/root/repo/target/debug/deps/blockpart_shard-9620fc7ae5638c8c.d: crates/shard/src/lib.rs crates/shard/src/cost.rs crates/shard/src/placement.rs crates/shard/src/policy.rs crates/shard/src/simulator.rs crates/shard/src/state.rs

/root/repo/target/debug/deps/libblockpart_shard-9620fc7ae5638c8c.rmeta: crates/shard/src/lib.rs crates/shard/src/cost.rs crates/shard/src/placement.rs crates/shard/src/policy.rs crates/shard/src/simulator.rs crates/shard/src/state.rs

crates/shard/src/lib.rs:
crates/shard/src/cost.rs:
crates/shard/src/placement.rs:
crates/shard/src/policy.rs:
crates/shard/src/simulator.rs:
crates/shard/src/state.rs:
