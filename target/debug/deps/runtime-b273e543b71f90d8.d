/root/repo/target/debug/deps/runtime-b273e543b71f90d8.d: tests/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libruntime-b273e543b71f90d8.rmeta: tests/runtime.rs Cargo.toml

tests/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
