//! Dense node indices.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A dense index identifying a vertex inside one [`Graph`](crate::Graph).
///
/// Node ids are assigned by the [`GraphBuilder`](crate::GraphBuilder) in
/// first-appearance order and are only meaningful relative to the graph that
/// produced them; use [`Graph::address`](crate::Graph::address) to map back
/// to the stable [`Address`](blockpart_types::Address).
///
/// # Examples
///
/// ```
/// use blockpart_graph::NodeId;
///
/// let n = NodeId::new(5);
/// assert_eq!(n.index(), 5);
/// assert_eq!(n.to_string(), "n5");
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The raw index as `usize`, for vector indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw index as `u32`.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(index: u32) -> Self {
        NodeId(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        assert_eq!(NodeId::new(3).index(), 3);
        assert_eq!(NodeId::from(4u32).as_u32(), 4);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }
}
