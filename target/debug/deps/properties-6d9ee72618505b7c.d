/root/repo/target/debug/deps/properties-6d9ee72618505b7c.d: tests/properties.rs

/root/repo/target/debug/deps/libproperties-6d9ee72618505b7c.rmeta: tests/properties.rs

tests/properties.rs:
