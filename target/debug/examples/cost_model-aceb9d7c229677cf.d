/root/repo/target/debug/examples/cost_model-aceb9d7c229677cf.d: examples/cost_model.rs

/root/repo/target/debug/examples/cost_model-aceb9d7c229677cf: examples/cost_model.rs

examples/cost_model.rs:
