/root/repo/target/debug/deps/blockpart_bench-26c23e8850e13ab7.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart_bench-26c23e8850e13ab7.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
