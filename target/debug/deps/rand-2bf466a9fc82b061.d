/root/repo/target/debug/deps/rand-2bf466a9fc82b061.d: third_party/rand/src/lib.rs

/root/repo/target/debug/deps/librand-2bf466a9fc82b061.rlib: third_party/rand/src/lib.rs

/root/repo/target/debug/deps/librand-2bf466a9fc82b061.rmeta: third_party/rand/src/lib.rs

third_party/rand/src/lib.rs:
