/root/repo/target/debug/deps/crossbeam-bd313aa8c42cdd9e.d: third_party/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-bd313aa8c42cdd9e.rmeta: third_party/crossbeam/src/lib.rs Cargo.toml

third_party/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
