/root/repo/target/debug/deps/proptest-e60704a95d3c92da.d: third_party/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-e60704a95d3c92da.rmeta: third_party/proptest/src/lib.rs Cargo.toml

third_party/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
