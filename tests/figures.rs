//! Integration tests of the figure-regeneration pipeline on a scaled-down
//! 30-month history (the same code path as the bench binaries).

use blockpart::core::experiments::{
    fig1_growth, fig1_table, fig2_dot, fig3_run, fig3_table, fig4_cells, fig4_periods, fig4_table,
    fig5_rows, fig5_table,
};
use blockpart::core::{Method, Study};
use blockpart::ethereum::gen::{ChainGenerator, EraTimeline, GeneratorConfig};
use blockpart::metrics::calendar::month_start;
use blockpart::types::{ShardCount, Timestamp};

/// A very small full-timeline history (30 months at tiny scale), shared
/// across the tests in this file.
fn small_history() -> &'static blockpart::ethereum::SyntheticChain {
    static HISTORY: std::sync::OnceLock<blockpart::ethereum::SyntheticChain> =
        std::sync::OnceLock::new();
    HISTORY.get_or_init(|| {
        let config = GeneratorConfig::demo_scale(2024).with_scale(2.0e-4);
        ChainGenerator::new(config).generate()
    })
}

#[test]
fn fig1_shape_exponential_then_attack_spike() {
    let chain = small_history();
    let growth = fig1_growth(&chain.log);
    assert!(
        growth.len() >= 29,
        "should cover ~30 months: {}",
        growth.len()
    );

    // growth is monotone
    for pair in growth.windows(2) {
        assert!(pair[1].nodes >= pair[0].nodes);
        assert!(pair[1].edges >= pair[0].edges);
    }

    // the attack inflates the vertex count sharply between 09.16 and 11.16
    let nodes_at = |label: &str| {
        growth
            .iter()
            .find(|p| p.label == label)
            .map(|p| p.nodes)
            .unwrap_or(0)
    };
    let pre = nodes_at("09.16");
    let post = nodes_at("11.16");
    assert!(
        post as f64 > pre as f64 * 2.0,
        "attack vertex inflation missing: {pre} -> {post}"
    );

    // super-linear 2017: December 2017 well above March 2017
    let spring = nodes_at("03.17");
    let winter = nodes_at("12.17");
    assert!(winter > spring, "2017 growth: {spring} -> {winter}");

    // the table renders with markers
    let table = fig1_table(&growth, &EraTimeline::fig1_markers());
    let ascii = table.render_ascii();
    assert!(ascii.contains("Byzantium"));
    assert!(ascii.contains("08.15"));
}

#[test]
fn fig2_produces_dot_subgraph() {
    let chain = small_history();
    // look in a busy month (mid-2017)
    let dot = fig2_dot(&chain.log, month_start(22), month_start(23), 2);
    let dot = dot.expect("2017 has active contracts");
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("style=dashed"), "contracts must be dashed");
    assert!(dot.contains("->"), "subgraph must have edges");
}

#[test]
fn fig3_hash_vs_metis_tradeoff() {
    let chain = small_history();
    let result = fig3_run(&chain.log, 3);

    let hash = result.get(Method::Hash, ShardCount::TWO).expect("ran");
    let metis = result.get(Method::Metis, ShardCount::TWO).expect("ran");

    // hashing: optimum static balance once the population is large (the
    // first year at tiny scale has only tens of vertices, where binomial
    // noise dominates)
    let late = month_start(17);
    let max_bal = hash
        .windows
        .iter()
        .filter(|w| w.start >= late)
        .map(|w| w.static_balance)
        .fold(0.0f64, f64::max);
    assert!(
        max_bal < 1.25,
        "hash static balance stays near 1: {max_bal}"
    );

    // METIS: lower final cut than hashing, but worse dynamic balance
    let last_h = hash.windows.last().expect("windows");
    let last_m = metis.windows.last().expect("windows");
    assert!(
        last_m.cumulative_dynamic_edge_cut < last_h.cumulative_dynamic_edge_cut,
        "metis {} vs hash {}",
        last_m.cumulative_dynamic_edge_cut,
        last_h.cumulative_dynamic_edge_cut
    );
    assert!(
        last_m.cumulative_dynamic_balance >= last_h.cumulative_dynamic_balance - 0.1,
        "metis trades balance for cut: {} vs {}",
        last_m.cumulative_dynamic_balance,
        last_h.cumulative_dynamic_balance
    );

    // monthly tables render for both methods
    for m in [Method::Hash, Method::Metis] {
        let t = fig3_table(&result, m).expect("ran");
        assert!(t.len() >= 25, "{m} table rows: {}", t.len());
    }
}

#[test]
fn fig4_and_fig5_aggregate_full_grid() {
    let chain = small_history();
    let result = Study::new(&chain.log)
        .methods(Method::ALL.to_vec())
        .shard_counts(vec![ShardCount::TWO, ShardCount::new(8).expect("8")])
        .seed(5)
        .run();

    // fig 4: every method × k × 2017 period has a box
    let periods = fig4_periods();
    let cells = fig4_cells(&result, &periods);
    assert_eq!(cells.len(), 5 * 2 * 4, "cells: {}", cells.len());
    for c in &cells {
        assert!(c.edge_cut.min >= 0.0 && c.edge_cut.max <= 1.0);
        assert!(c.balance.min >= 1.0 - 1e-9);
        assert!(c.balance.max <= c.k.as_usize() as f64 + 1e-9);
    }
    let t2 = fig4_table(&cells, ShardCount::TWO);
    assert_eq!(t2.len(), 20); // 5 methods × 4 periods

    // fig 5: aggregates for the full grid
    let rows = fig5_rows(&result);
    assert_eq!(rows.len(), 10);
    let table = fig5_table(&rows);
    assert_eq!(table.len(), 10);

    // paper shape: hashing's cut grows toward 1 - 1/k
    let hash_cut = |kk: u16| {
        rows.iter()
            .find(|r| r.method == Method::Hash && r.k.get() == kk)
            .expect("present")
            .dynamic_edge_cut
    };
    assert!(hash_cut(2) < hash_cut(8));

    // paper shape: METIS moves the most; TR-METIS fewer than R-METIS
    let moves = |m: Method| {
        rows.iter()
            .filter(|r| r.method == m)
            .map(|r| r.moves)
            .sum::<u64>()
    };
    assert!(moves(Method::Metis) > moves(Method::TrMetis));
    assert_eq!(moves(Method::Hash), 0);

    // paper shape: TR-METIS repartitions no more than R-METIS
    let reparts = |m: Method| {
        rows.iter()
            .filter(|r| r.method == m)
            .map(|r| r.repartitions)
            .sum::<usize>()
    };
    assert!(reparts(Method::TrMetis) <= reparts(Method::RMetis));
}

#[test]
fn truncated_timeline_limits_history() {
    let tl = EraTimeline::ethereum_history().truncated(month_start(6));
    let config = GeneratorConfig::demo_scale(9)
        .with_scale(5.0e-4)
        .with_timeline(tl);
    let chain = ChainGenerator::new(config).generate();
    let last = chain.log.last_time().expect("events");
    assert!(last < month_start(6));
    assert!(Timestamp::EPOCH < last);
}
