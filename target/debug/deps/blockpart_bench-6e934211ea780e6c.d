/root/repo/target/debug/deps/blockpart_bench-6e934211ea780e6c.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart_bench-6e934211ea780e6c.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
