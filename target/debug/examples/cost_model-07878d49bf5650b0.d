/root/repo/target/debug/examples/cost_model-07878d49bf5650b0.d: examples/cost_model.rs Cargo.toml

/root/repo/target/debug/examples/libcost_model-07878d49bf5650b0.rmeta: examples/cost_model.rs Cargo.toml

examples/cost_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
