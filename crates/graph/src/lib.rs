//! Weighted directed multigraph for blockchain traces, with METIS-style CSR
//! views and the graph algorithms the partitioning study needs.
//!
//! The paper models Ethereum as a graph whose vertices are accounts and
//! contracts and whose edges are calls/transfers between them, weighted by
//! frequency. This crate provides:
//!
//! * [`GraphBuilder`] — interns [`Address`]es to dense [`NodeId`]s and
//!   accumulates weighted directed edges (parallel edges merge by summing
//!   weights, as the paper does);
//! * [`Graph`] — a frozen directed graph with vertex weights (activity) and
//!   account kinds;
//! * [`Csr`] — the symmetric compressed-sparse-row view used as partitioner
//!   input (undirected, weights of the two directions summed, self-loops
//!   dropped);
//! * [`InteractionLog`] — a time-ordered log of interactions from which
//!   cumulative or windowed graphs are built (the paper's "reduced graph");
//! * [`algos`] — BFS, connected components, degree statistics,
//!   neighbourhood extraction;
//! * [`io`] — the plain-text edge-list trace format and DOT export.
//!
//! # Examples
//!
//! ```
//! use blockpart_graph::GraphBuilder;
//! use blockpart_types::{AccountKind, Address};
//!
//! let mut b = GraphBuilder::new();
//! let a = Address::from_index(1);
//! let c = Address::from_index(2);
//! b.touch(c, AccountKind::Contract);
//! b.add_interaction(a, c, 3); // `a` called contract `c` three times
//! let g = b.build();
//! assert_eq!(g.node_count(), 2);
//! assert_eq!(g.edge_count(), 1);
//! assert_eq!(g.total_edge_weight(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algos;
mod builder;
mod csr;
mod event;
mod graph;
pub mod io;
mod node;
pub mod ooc;

pub use builder::GraphBuilder;
pub use csr::{edge_key, merge_sorted_shards, Csr};
pub use event::{Interaction, InteractionLog};
pub use graph::{EdgeRef, Graph, NodeRef};
pub use node::NodeId;
pub use ooc::{CsrRowStream, OocCsr, OocGraphBuilder};

pub use blockpart_types::{AccountKind, Address, StorageBackend};
