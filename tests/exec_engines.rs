//! Engine byte-identity under hostile workloads: the parallel engine
//! must match the serial engine transaction-for-transaction even on the
//! adversarial scenarios built to maximize contention (`hub-burst`
//! hammers a handful of hot contracts; `dummy-spam` floods throwaway
//! accounts), and must stay byte-identical to itself across lane counts
//! and reruns. Also exercises the name-resolution path end to end:
//! every engine here is resolved from the [`EngineRegistry`].

use blockpart::core::{EngineRegistry, Experiment, ScenarioRegistry, StrategyRegistry};
use blockpart::ethereum::gen::GeneratorConfig;
use blockpart::runtime::{Assignment, RuntimeConfig, RuntimeReport, ShardedRuntime};
use blockpart::types::ShardCount;
use proptest::prelude::*;

/// A hostile workload small enough to replay many times, loaded hard
/// enough (20µs arrival gap) that run queues build and the parallel
/// engine actually speculates ahead.
fn hostile_workload(
    scenario: &str,
    seed: u64,
) -> (
    blockpart::ethereum::World,
    Vec<blockpart::ethereum::ExecutedTx>,
) {
    let registry = ScenarioRegistry::with_builtins();
    let config = GeneratorConfig::test_scale(seed).with_scale(0.25);
    let built = registry.resolve(scenario).expect("scenario").build(&config);
    let txs = built.txs.iter().take(300).cloned().collect();
    (built.chain.world().clone(), txs)
}

fn run_with(
    engine_spec: &str,
    world: &blockpart::ethereum::World,
    txs: &[blockpart::ethereum::ExecutedTx],
) -> RuntimeReport {
    let engine = EngineRegistry::with_builtins()
        .resolve(engine_spec)
        .expect("engine resolves");
    let cfg = RuntimeConfig::new(ShardCount::TWO)
        .with_inter_arrival_us(20)
        .with_exec(engine);
    ShardedRuntime::new(cfg, Assignment::hashed(ShardCount::TWO)).run(world, txs)
}

/// Zeroes the additive speculation counters so a parallel report can be
/// compared field-for-field against a serial one.
fn without_exec_counters(mut report: RuntimeReport) -> RuntimeReport {
    report.exec_speculated = 0;
    report.exec_conflicts = 0;
    report.exec_re_executions = 0;
    for shard in &mut report.per_shard {
        shard.exec_speculated = 0;
        shard.exec_conflicts = 0;
        shard.exec_re_executions = 0;
    }
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    // On both historical-anomaly scenarios, the parallel engine commits
    // the exact transaction outcomes of the serial engine — only the
    // additive exec_* counters may differ — and any lane count (1, 2, N)
    // and any rerun produces the byte-identical report.
    #[test]
    fn parallel_matches_serial_on_adversarial_scenarios(
        seed in 0u64..1000,
        scenario_index in 0usize..2,
    ) {
        let scenario = ["hub-burst", "dummy-spam"][scenario_index];
        let (world, txs) = hostile_workload(scenario, seed);
        let serial = run_with("serial", &world, &txs);
        let lane_runs: Vec<RuntimeReport> = ["parallel[lanes=1]", "parallel[lanes=2]", "parallel[lanes=6]"]
            .iter()
            .map(|spec| run_with(spec, &world, &txs))
            .collect();
        for run in &lane_runs {
            prop_assert_eq!(
                without_exec_counters(run.clone()),
                without_exec_counters(serial.clone()),
                "{}: parallel diverged from serial", scenario
            );
        }
        // lane-count independence and rerun determinism, byte for byte
        prop_assert_eq!(&lane_runs[1], &lane_runs[0], "{}: lanes=2 != lanes=1", scenario);
        prop_assert_eq!(&lane_runs[2], &lane_runs[0], "{}: lanes=6 != lanes=1", scenario);
        let rerun = run_with("parallel[lanes=2]", &world, &txs);
        prop_assert_eq!(&rerun, &lane_runs[1], "{}: rerun diverged", scenario);
        prop_assert_eq!(serial.exec_speculated, 0, "serial engine must not speculate");
    }
}

/// The experiment pipeline threads the engine override into its replay
/// stage: a full `Experiment` run under the parallel engine reports the
/// same partition quality and commit outcomes as the serial default,
/// with only the exec counters (and the speculation they measure) added
/// on top.
#[test]
fn experiment_replay_is_engine_invariant() {
    let strategies = StrategyRegistry::with_builtins();
    let engines = EngineRegistry::with_builtins();
    let config = GeneratorConfig::test_scale(7).with_scale(0.25);
    let run = |engine: Option<&str>| {
        let mut exp = Experiment::from_generator(config.clone())
            .named_strategies(&strategies, "hash")
            .expect("strategy resolves")
            .shard_counts(vec![ShardCount::TWO])
            .inter_arrival_us(20)
            .replay(true);
        if let Some(spec) = engine {
            exp = exp.with_exec(engines.resolve(spec).expect("engine resolves"));
        }
        exp.run()
    };
    let serial = run(None);
    let parallel = run(Some("block-stm[lanes=3]"));
    let serial_rt = serial.runs[0].runtime.clone().expect("replay ran");
    let parallel_rt = parallel.runs[0].runtime.clone().expect("replay ran");
    assert!(
        parallel_rt.exec_speculated > 0,
        "override did not reach the replay stage: {parallel_rt:?}"
    );
    assert_eq!(serial_rt.exec_speculated, 0);
    assert_eq!(
        without_exec_counters(parallel_rt),
        without_exec_counters(serial_rt)
    );
}
