/root/repo/target/debug/deps/runtime-0177ea286d91a303.d: tests/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libruntime-0177ea286d91a303.rmeta: tests/runtime.rs Cargo.toml

tests/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
