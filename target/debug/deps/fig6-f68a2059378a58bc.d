/root/repo/target/debug/deps/fig6-f68a2059378a58bc.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/libfig6-f68a2059378a58bc.rmeta: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
