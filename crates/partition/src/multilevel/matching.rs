//! Vertex matchings for the coarsening phase.

use blockpart_graph::Csr;
use blockpart_types::{resolve_workers, split_ranges};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

/// Below this many vertices a matching round runs on the calling thread
/// even when more workers are available (coarse levels get tiny, and
/// thread spawns would dominate).
const PARALLEL_VERTEX_THRESHOLD: usize = 4_096;

/// How to pick the matching collapsed at each coarsening step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MatchingScheme {
    /// Match each vertex with its heaviest unmatched neighbour (METIS's
    /// HEM): hides heavy edges inside coarse vertices so they can never be
    /// cut, which is what drives the partitioner's low dynamic edge-cut.
    /// Computed by deterministic parallel handshake rounds — see
    /// [`match_vertices_workers`].
    #[default]
    HeavyEdge,
    /// Match with a uniformly random unmatched neighbour (METIS's RM).
    /// Cheaper but quality-blind; kept for the ablation benchmarks.
    /// Always sequential (it consumes the RNG per visit).
    Random,
}

/// Computes a matching over `csr` on the calling thread.
///
/// Equivalent to [`match_vertices_workers`] with one worker — and, since
/// the matching is deterministic in the worker count, equivalent to it at
/// *any* worker count.
///
/// # Examples
///
/// ```
/// use blockpart_graph::Csr;
/// use blockpart_partition::multilevel::matching::{match_vertices, MatchingScheme};
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let csr = Csr::from_edges(4, &[(0, 1, 9), (1, 2, 1), (2, 3, 9)]);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let mate = match_vertices(&csr, MatchingScheme::HeavyEdge, &mut rng);
/// // heavy edges 0-1 and 2-3 always win over the light 1-2
/// assert_eq!(mate[0], 1);
/// assert_eq!(mate[2], 3);
/// ```
pub fn match_vertices(csr: &Csr, scheme: MatchingScheme, rng: &mut SmallRng) -> Vec<u32> {
    match_vertices_workers(csr, scheme, rng, 1)
}

/// Computes a matching over `csr` using up to `workers` threads (`0` =
/// automatic).
///
/// Returns `mate` where `mate[v]` is the vertex `v` is matched with
/// (`mate[v] == v` for unmatched vertices). The relation is symmetric:
/// `mate[mate[v]] == v`. Matched pairs are either adjacent (edge
/// matching) or share a common neighbour (the two-hop phase that keeps
/// star-shaped blockchain graphs coarsening — see below).
///
/// [`MatchingScheme::HeavyEdge`] runs *handshake rounds*: every unmatched
/// vertex computes its preferred unmatched neighbour — heaviest edge,
/// ties to the smallest id — in parallel over vertex ranges, then pairs
/// whose preferences are mutual are matched. The preference pass is a
/// pure function of the round's start state, so the result is
/// byte-identical for every worker count. Rounds stop at a fixed cap or
/// when one yields no mutual pair; whatever remains (preference cycles,
/// cap leftovers) is matched by a single sequential greedy sweep in
/// index order using the same selection rule.
/// [`MatchingScheme::Random`] ignores `workers`.
pub fn match_vertices_workers(
    csr: &Csr,
    scheme: MatchingScheme,
    rng: &mut SmallRng,
    workers: usize,
) -> Vec<u32> {
    let n = csr.node_count();
    let mut mate: Vec<u32> = (0..n as u32).collect();
    let mut matched = vec![false; n];

    match scheme {
        MatchingScheme::HeavyEdge => {
            handshake_rounds(csr, &mut mate, &mut matched, workers);
        }
        MatchingScheme::Random => {
            let mut order: Vec<u32> = (0..n as u32).collect();
            order.shuffle(rng);
            for &v in &order {
                let v = v as usize;
                if matched[v] {
                    continue;
                }
                let free: Vec<u32> = csr
                    .neighbors(v)
                    .filter(|&(u, _)| !matched[u as usize])
                    .map(|(u, _)| u)
                    .collect();
                if let Some(&u) = free.choose(rng) {
                    let u = u as usize;
                    mate[v] = u as u32;
                    mate[u] = v as u32;
                    matched[v] = true;
                    matched[u] = true;
                }
            }
        }
    }

    // Second phase: two-hop matching for star-shaped regions. Blockchain
    // graphs are dominated by hubs with thousands of degree-1 leaves; edge
    // matchings can only pair one leaf per hub per level, stalling the
    // coarsening. Pair up unmatched leaves that share a neighbour instead
    // (METIS applies the same trick to power-law graphs).
    for hub in 0..n {
        let mut pending: Option<usize> = None;
        for (u, _) in csr.neighbors(hub) {
            let u = u as usize;
            if matched[u] || csr.degree(u) > 2 {
                continue;
            }
            match pending.take() {
                None => pending = Some(u),
                Some(prev) => {
                    mate[prev] = u as u32;
                    mate[u] = prev as u32;
                    matched[prev] = true;
                    matched[u] = true;
                }
            }
        }
    }
    mate
}

/// Handshake rounds before falling back to one sequential greedy sweep.
/// Real graphs converge in a handful of rounds; the cap bounds
/// adversarial shapes (e.g. a path with monotone weights resolves one
/// pair per round) to O(rounds · E) instead of O(V · E).
const MAX_HANDSHAKE_ROUNDS: usize = 16;

/// Runs deterministic heavy-edge handshake rounds, then matches whatever
/// they left (preference cycles, round-cap leftovers) with a single
/// sequential greedy sweep in index order.
fn handshake_rounds(csr: &Csr, mate: &mut [u32], matched: &mut [bool], workers: usize) {
    let n = csr.node_count();
    let mut candidate = vec![u32::MAX; n];
    for _ in 0..MAX_HANDSHAKE_ROUNDS {
        compute_candidates(csr, matched, &mut candidate, workers);
        let mut progress = false;
        for v in 0..n {
            if matched[v] || candidate[v] == u32::MAX {
                continue;
            }
            let u = candidate[v] as usize;
            // mutual preference; `v < u` so each pair matches once
            if !matched[u] && candidate[u] == v as u32 && v < u {
                mate[v] = u as u32;
                mate[u] = v as u32;
                matched[v] = true;
                matched[u] = true;
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }
    // Greedy finish: one O(E) pass picking each remaining vertex's best
    // unmatched neighbour by the same (weight, smallest-id) rule. Purely
    // sequential and index-ordered, so still worker-count-independent.
    for v in 0..n {
        if matched[v] {
            continue;
        }
        let best = csr
            .neighbors(v)
            .filter(|&(u, _)| !matched[u as usize])
            .max_by_key(|&(u, w)| (w, std::cmp::Reverse(u)))
            .map(|(u, _)| u);
        if let Some(u) = best {
            let u = u as usize;
            mate[v] = u as u32;
            mate[u] = v as u32;
            matched[v] = true;
            matched[u] = true;
        }
    }
}

/// Fills `candidate[v]` with `v`'s heaviest unmatched neighbour (ties to
/// the smallest id), or `u32::MAX` when `v` is matched or isolated among
/// the unmatched. A pure function of `(csr, matched)` — the worker split
/// never affects the values, only who computes them.
fn compute_candidates(csr: &Csr, matched: &[bool], candidate: &mut [u32], workers: usize) {
    let n = csr.node_count();
    let auto = workers == 0;
    let workers = resolve_workers(workers);
    let best = |v: usize| -> u32 {
        if matched[v] {
            return u32::MAX;
        }
        csr.neighbors(v)
            .filter(|&(u, _)| !matched[u as usize])
            .max_by_key(|&(u, w)| (w, std::cmp::Reverse(u)))
            .map_or(u32::MAX, |(u, _)| u)
    };
    if workers == 1 || (auto && n < PARALLEL_VERTEX_THRESHOLD) {
        for (v, slot) in candidate.iter_mut().enumerate() {
            *slot = best(v);
        }
        return;
    }
    let ranges = split_ranges(n, workers);
    let mut slices: Vec<&mut [u32]> = Vec::with_capacity(ranges.len());
    let mut rest = candidate;
    for range in &ranges {
        let (head, tail) = rest.split_at_mut(range.len());
        slices.push(head);
        rest = tail;
    }
    crossbeam::thread::scope(|scope| {
        for (slice, range) in slices.into_iter().zip(&ranges) {
            let start = range.start;
            let best = &best;
            scope.spawn(move |_| {
                for (i, slot) in slice.iter_mut().enumerate() {
                    *slot = best(start + i);
                }
            });
        }
    })
    .expect("matching worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    fn assert_valid_matching(csr: &Csr, mate: &[u32]) {
        for v in 0..csr.node_count() {
            let m = mate[v] as usize;
            assert_eq!(mate[m] as usize, v, "matching not symmetric at {v}");
            if m != v {
                let adjacent = csr.neighbors(v).any(|(u, _)| u as usize == m);
                let two_hop = csr
                    .neighbors(v)
                    .any(|(h, _)| csr.neighbors(h as usize).any(|(u, _)| u as usize == m));
                assert!(
                    adjacent || two_hop,
                    "matched vertices {v} and {m} share no neighbour"
                );
            }
        }
    }

    #[test]
    fn two_hop_phase_collapses_stars() {
        // a hub with 40 degree-1 leaves: edge matching alone pairs the hub
        // with one leaf, leaving 39 unmatched; the two-hop phase must pair
        // the rest so coarsening halves the graph.
        let edges: Vec<(u32, u32, u64)> = (1..41).map(|i| (0, i, 1)).collect();
        let csr = Csr::from_edges(41, &edges);
        let mate = match_vertices(&csr, MatchingScheme::HeavyEdge, &mut rng());
        assert_valid_matching(&csr, &mate);
        let unmatched = mate
            .iter()
            .enumerate()
            .filter(|&(v, &m)| v == m as usize)
            .count();
        assert!(unmatched <= 2, "star left {unmatched} unmatched vertices");
    }

    #[test]
    fn heavy_edge_prefers_heavy() {
        let csr = Csr::from_edges(4, &[(0, 1, 100), (1, 2, 1), (2, 3, 100)]);
        for seed in 0..10 {
            let mut r = SmallRng::seed_from_u64(seed);
            let mate = match_vertices(&csr, MatchingScheme::HeavyEdge, &mut r);
            assert_valid_matching(&csr, &mate);
            assert_eq!(mate[0], 1);
            assert_eq!(mate[2], 3);
        }
    }

    #[test]
    fn random_matching_is_valid() {
        let edges: Vec<(u32, u32, u64)> = (0..19).map(|i| (i, i + 1, 1)).collect();
        let csr = Csr::from_edges(20, &edges);
        let mate = match_vertices(&csr, MatchingScheme::Random, &mut rng());
        assert_valid_matching(&csr, &mate);
        // a path of 20 vertices always admits some matching
        let matched = mate
            .iter()
            .enumerate()
            .filter(|&(v, &m)| v != m as usize)
            .count();
        assert!(matched >= 2);
    }

    #[test]
    fn isolated_vertices_stay_unmatched() {
        let csr = Csr::from_edges(3, &[(0, 1, 1)]);
        let mate = match_vertices(&csr, MatchingScheme::HeavyEdge, &mut rng());
        assert_eq!(mate[2], 2);
        assert_valid_matching(&csr, &mate);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(0, &[]);
        assert!(match_vertices(&csr, MatchingScheme::HeavyEdge, &mut rng()).is_empty());
    }

    #[test]
    fn matching_halves_triangle() {
        // odd cycles leave exactly one vertex unmatched
        let csr = Csr::from_edges(3, &[(0, 1, 1), (1, 2, 1), (0, 2, 1)]);
        let mate = match_vertices(&csr, MatchingScheme::HeavyEdge, &mut rng());
        assert_valid_matching(&csr, &mate);
        let unmatched = mate
            .iter()
            .enumerate()
            .filter(|&(v, &m)| v == m as usize)
            .count();
        assert_eq!(unmatched, 1);
    }
}
