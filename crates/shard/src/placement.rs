//! Placement rules for vertices appearing between repartitions.

use blockpart_partition::HashPartitioner;
use blockpart_types::{Address, ShardCount, ShardId};
use serde::{Deserialize, Serialize};

use crate::state::ShardedState;

/// How a brand-new vertex is assigned to a shard when it first appears in
/// the transaction stream.
///
/// # Examples
///
/// ```
/// use blockpart_shard::{PlacementRule, ShardedState};
/// use blockpart_types::{Address, ShardCount};
///
/// let st = ShardedState::new(ShardCount::TWO);
/// let s = PlacementRule::Hash.place(&st, Address::from_index(1), None);
/// assert!(ShardCount::TWO.contains(s));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementRule {
    /// `hash(address) mod k` — placement never depends on the graph, so a
    /// vertex's shard is stable forever (the HASH and KL methods).
    #[default]
    Hash,
    /// The paper's METIS-family rule: inspect the counterparty of the
    /// transaction that introduces the vertex and join its shard (that
    /// choice cuts none of the new edges); when there is no assigned
    /// counterparty, fall back to the lightest shard (maximize balance).
    MinCut,
}

impl PlacementRule {
    /// Chooses the shard for new vertex `address`, given the transaction
    /// counterparty (if any).
    pub fn place(
        self,
        state: &ShardedState,
        address: Address,
        counterparty: Option<Address>,
    ) -> ShardId {
        match self {
            PlacementRule::Hash => {
                HashPartitioner::shard_for_id(address.stable_hash(), state.shard_count())
            }
            PlacementRule::MinCut => {
                if let Some(s) = counterparty.and_then(|c| state.shard_of(c)) {
                    return s;
                }
                lightest_shard(state.shard_counts(), state.shard_count())
            }
        }
    }
}

fn lightest_shard(counts: &[usize], k: ShardCount) -> ShardId {
    let (idx, _) = counts
        .iter()
        .enumerate()
        .min_by_key(|&(i, &c)| (c, i))
        .expect("k >= 1");
    debug_assert!(idx < k.as_usize());
    ShardId::new(idx as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpart_types::AccountKind;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    #[test]
    fn hash_is_stable_and_state_independent() {
        let st0 = ShardedState::new(ShardCount::TWO);
        let mut st1 = ShardedState::new(ShardCount::TWO);
        st1.insert_vertex(addr(9), AccountKind::ExternallyOwned, ShardId::new(1));
        let a = addr(42);
        assert_eq!(
            PlacementRule::Hash.place(&st0, a, None),
            PlacementRule::Hash.place(&st1, a, Some(addr(9)))
        );
    }

    #[test]
    fn min_cut_joins_counterparty() {
        let mut st = ShardedState::new(ShardCount::TWO);
        st.insert_vertex(addr(1), AccountKind::ExternallyOwned, ShardId::new(1));
        let s = PlacementRule::MinCut.place(&st, addr(2), Some(addr(1)));
        assert_eq!(s, ShardId::new(1));
    }

    #[test]
    fn min_cut_falls_back_to_lightest() {
        let mut st = ShardedState::new(ShardCount::TWO);
        st.insert_vertex(addr(1), AccountKind::ExternallyOwned, ShardId::new(0));
        st.insert_vertex(addr(2), AccountKind::ExternallyOwned, ShardId::new(0));
        // no counterparty: go to the emptier shard 1
        let s = PlacementRule::MinCut.place(&st, addr(3), None);
        assert_eq!(s, ShardId::new(1));
        // unknown counterparty: same fallback
        let s = PlacementRule::MinCut.place(&st, addr(4), Some(addr(99)));
        assert_eq!(s, ShardId::new(1));
    }

    #[test]
    fn hash_spreads_over_shards() {
        let k = ShardCount::new(8).unwrap();
        let st = ShardedState::new(k);
        let mut counts = vec![0usize; 8];
        for i in 0..8_000 {
            let s = PlacementRule::Hash.place(&st, addr(i), None);
            counts[s.as_usize()] += 1;
        }
        assert!(
            counts.iter().all(|&c| (800..1200).contains(&c)),
            "{counts:?}"
        );
    }
}
