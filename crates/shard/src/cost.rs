//! Cost models for sharded execution — what edge-cut and balance *mean*
//! for throughput.
//!
//! The paper's introduction names the two ways a system can handle a
//! multi-shard request: (a) coordinate the involved shards (Spanner-style
//! two-phase commit, S-SMR) or (b) move the needed state to one shard and
//! execute locally (dynamic SMR). Either way, a cross-shard transaction
//! costs more than a local one, and a shard can only process work
//! proportional to its capacity. This module turns a simulation's window
//! records into estimated system throughput under both regimes, so the
//! abstract metrics become a concrete "would sharding have helped?"
//! answer.

use serde::{Deserialize, Serialize};

use crate::simulator::{SimulationResult, WindowRecord};

/// How multi-shard transactions are executed.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CrossShardMode {
    /// Involved shards coordinate (2PC-style): a cross-shard transaction
    /// consumes `coordination_factor` times the work of a local one *on
    /// every involved shard*.
    Coordinate {
        /// Work multiplier per cross-shard transaction (≥ 1; Spanner-style
        /// systems typically pay 2–5×).
        coordination_factor: f64,
    },
    /// State moves to one shard first (dynamic SMR): the transaction runs
    /// locally, but the move itself costs `relocation_cost` transactions'
    /// worth of work.
    Relocate {
        /// Work units charged per relocated transaction.
        relocation_cost: f64,
    },
}

/// Parameters of the throughput estimate.
///
/// # Examples
///
/// ```
/// use blockpart_shard::cost::{CostModel, CrossShardMode};
///
/// let model = CostModel {
///     shard_capacity: 100.0,
///     mode: CrossShardMode::Coordinate { coordination_factor: 3.0 },
///     ..CostModel::default()
/// };
/// assert!(model.shard_capacity > 0.0);
/// assert_eq!(model.exec_lanes, 1.0); // serial execution by default
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Transactions per window one shard can execute.
    pub shard_capacity: f64,
    /// How cross-shard transactions are handled.
    pub mode: CrossShardMode,
    /// Intra-shard execution parallelism: the effective number of
    /// concurrent execution lanes per shard (a Block-STM-style parallel
    /// engine). Scales each shard's capacity; the unsharded baseline the
    /// speed-up compares against stays a single serial machine. `1.0`
    /// (the default) reproduces the serial model's numbers exactly;
    /// fractional values express sub-linear scaling under conflicts
    /// (e.g. `3.4` effective lanes from 4 physical ones). Degenerate
    /// values (zero, negative, non-finite — including a zero from a
    /// pre-field document) are treated as serial.
    #[serde(default)]
    pub exec_lanes: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            shard_capacity: 1_000.0,
            mode: CrossShardMode::Coordinate {
                coordination_factor: 3.0,
            },
            exec_lanes: 1.0,
        }
    }
}

/// The estimated performance of one window under a [`CostModel`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WindowThroughput {
    /// Work units demanded of the busiest shard.
    pub bottleneck_load: f64,
    /// The fraction of offered load the system sustains (1.0 = keeps up).
    pub sustained_fraction: f64,
    /// Speed-up over a single unsharded machine with the same capacity.
    pub speedup: f64,
}

impl CostModel {
    /// Sets the intra-shard parallelism factor (see
    /// [`exec_lanes`](CostModel::exec_lanes)).
    pub fn with_exec_lanes(mut self, lanes: f64) -> Self {
        self.exec_lanes = lanes;
        self
    }

    /// The sanitized lane factor: non-finite or non-positive values fall
    /// back to serial execution.
    fn lane_factor(&self) -> f64 {
        if self.exec_lanes.is_finite() && self.exec_lanes > 0.0 {
            self.exec_lanes
        } else {
            1.0
        }
    }

    /// Estimates one window's throughput from its recorded metrics.
    ///
    /// The load on the busiest shard is derived from the window's event
    /// count, its dynamic balance (how skewed activity was) and its
    /// dynamic edge-cut (how much work was cross-shard), with the mode's
    /// surcharge applied to the cross-shard share.
    pub fn window_throughput(&self, window: &WindowRecord, k: usize) -> WindowThroughput {
        let events = window.events as f64;
        if events == 0.0 || k == 0 {
            return WindowThroughput {
                bottleneck_load: 0.0,
                sustained_fraction: 1.0,
                speedup: k.max(1) as f64,
            };
        }
        let cross = window.dynamic_edge_cut.clamp(0.0, 1.0);
        let local = 1.0 - cross;
        // per-transaction work surcharge for the cross-shard share
        let cross_work = match self.mode {
            CrossShardMode::Coordinate {
                coordination_factor,
            } => cross * coordination_factor.max(1.0) * 2.0, // both shards pay
            CrossShardMode::Relocate { relocation_cost } => cross * (1.0 + relocation_cost),
        };
        let total_work = events * (local + cross_work);
        // balance ∈ [1, k] scales the busiest shard's share of the work
        let balance = window.dynamic_balance.clamp(1.0, k as f64);
        let bottleneck_load = total_work / k as f64 * balance;
        // each shard executes with `exec_lanes` effective lanes; the
        // single-machine comparison below stays serial
        let sustained = (self.shard_capacity * self.lane_factor() / bottleneck_load).min(1.0);
        // a single machine of the same capacity would sustain capacity/events
        let single = (self.shard_capacity / events).min(1.0);
        let speedup = if single == 0.0 {
            1.0
        } else {
            (sustained * events) / (single * events) // = sustained / single
        };
        WindowThroughput {
            bottleneck_load,
            sustained_fraction: sustained,
            speedup,
        }
    }

    /// Mean sustained fraction and speed-up across a whole run.
    pub fn run_summary(&self, result: &SimulationResult, k: usize) -> WindowThroughput {
        let active: Vec<&WindowRecord> = result.windows.iter().filter(|w| w.events > 0).collect();
        if active.is_empty() {
            return WindowThroughput {
                bottleneck_load: 0.0,
                sustained_fraction: 1.0,
                speedup: k.max(1) as f64,
            };
        }
        let mut acc = WindowThroughput::default();
        for w in &active {
            let t = self.window_throughput(w, k);
            acc.bottleneck_load += t.bottleneck_load;
            acc.sustained_fraction += t.sustained_fraction;
            acc.speedup += t.speedup;
        }
        let n = active.len() as f64;
        WindowThroughput {
            bottleneck_load: acc.bottleneck_load / n,
            sustained_fraction: acc.sustained_fraction / n,
            speedup: acc.speedup / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpart_types::Timestamp;

    fn window(events: usize, cut: f64, balance: f64) -> WindowRecord {
        WindowRecord {
            start: Timestamp::EPOCH,
            events,
            dynamic_edge_cut: cut,
            dynamic_balance: balance,
            ..WindowRecord::default()
        }
    }

    #[test]
    fn perfect_partition_gives_linear_speedup() {
        let model = CostModel {
            shard_capacity: 1_000.0,
            mode: CrossShardMode::Coordinate {
                coordination_factor: 3.0,
            },
            ..CostModel::default()
        };
        // zero cut, perfect balance, load beyond a single machine
        let t = model.window_throughput(&window(4_000, 0.0, 1.0), 4);
        assert!((t.bottleneck_load - 1_000.0).abs() < 1e-9);
        assert!((t.sustained_fraction - 1.0).abs() < 1e-9);
        // a single machine would sustain 1000/4000 = 0.25 -> speedup 4
        assert!((t.speedup - 4.0).abs() < 1e-9);
    }

    #[test]
    fn heavy_cut_erases_the_benefit() {
        let model = CostModel::default();
        let good = model.window_throughput(&window(4_000, 0.0, 1.0), 4);
        let bad = model.window_throughput(&window(4_000, 0.9, 1.0), 4);
        assert!(bad.sustained_fraction < good.sustained_fraction);
        assert!(
            bad.speedup < 1.0,
            "poorly partitioned sharding should lose to one machine: {}",
            bad.speedup
        );
    }

    #[test]
    fn imbalance_shifts_load_to_bottleneck() {
        let model = CostModel::default();
        let balanced = model.window_throughput(&window(2_000, 0.1, 1.0), 2);
        let skewed = model.window_throughput(&window(2_000, 0.1, 2.0), 2);
        assert!(skewed.bottleneck_load > balanced.bottleneck_load * 1.9);
    }

    #[test]
    fn relocate_mode_charges_relocation() {
        let coordinate = CostModel {
            shard_capacity: 1_000.0,
            mode: CrossShardMode::Coordinate {
                coordination_factor: 1.0,
            },
            ..CostModel::default()
        };
        let relocate = CostModel {
            shard_capacity: 1_000.0,
            mode: CrossShardMode::Relocate {
                relocation_cost: 5.0,
            },
            ..CostModel::default()
        };
        let w = window(1_000, 0.5, 1.0);
        let tc = coordinate.window_throughput(&w, 2);
        let tr = relocate.window_throughput(&w, 2);
        assert!(tr.bottleneck_load > tc.bottleneck_load);
    }

    #[test]
    fn exec_lanes_scale_shard_capacity_but_not_the_baseline() {
        let serial = CostModel::default();
        let parallel = CostModel::default().with_exec_lanes(2.0);
        // overloaded window: sustained < 1 under the serial model
        let w = window(8_000, 0.1, 1.2);
        let ts = serial.window_throughput(&w, 4);
        let tp = parallel.window_throughput(&w, 4);
        assert!(ts.sustained_fraction < 1.0);
        assert!((tp.sustained_fraction - (ts.sustained_fraction * 2.0).min(1.0)).abs() < 1e-9);
        assert!(tp.speedup > ts.speedup, "{} vs {}", tp.speedup, ts.speedup);
        // bottleneck demand is a property of the partition, not the engine
        assert_eq!(tp.bottleneck_load, ts.bottleneck_load);
        // the default (and any degenerate factor) reproduces serial numbers
        let degenerate = CostModel::default().with_exec_lanes(f64::NAN);
        assert_eq!(degenerate.window_throughput(&w, 4), ts);
    }

    #[test]
    fn empty_window_is_trivially_sustained() {
        let model = CostModel::default();
        let t = model.window_throughput(&window(0, 0.0, 1.0), 8);
        assert_eq!(t.sustained_fraction, 1.0);
        assert_eq!(t.speedup, 8.0);
    }

    #[test]
    fn run_summary_averages() {
        let model = CostModel::default();
        let result = SimulationResult {
            windows: vec![
                window(1_000, 0.0, 1.0),
                window(1_000, 1.0, 2.0),
                window(0, 0.0, 1.0),
            ],
            ..SimulationResult::default()
        };
        let s = model.run_summary(&result, 2);
        // only the two active windows count
        assert!(s.bottleneck_load > 0.0);
        assert!(s.sustained_fraction <= 1.0);
    }
}
