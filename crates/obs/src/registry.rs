//! The counters/gauges/histograms registry.

use std::collections::BTreeMap;

use blockpart_metrics::LogHistogram;

/// Named counters, gauges and µs-latency histograms.
///
/// Names are flat strings; scope (shard, strategy, pipeline stage) is
/// encoded by `/`-separated prefixes (`"metis/k4/shard-0/commits"`),
/// usually applied via `Trace::set_metric_prefix`. Storage is ordered,
/// so every rendering is deterministic.
///
/// # Examples
///
/// ```
/// use blockpart_obs::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.add("shard-0/commits", 3);
/// m.observe_us("shard-0/commit_latency_us", 1800);
/// assert_eq!(m.counter("shard-0/commits"), 3);
/// assert!(m.render_text().contains("hist    shard-0/commit_latency_us"));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increments a counter. Allocates the key only on first sight, so
    /// steady-state updates in hot loops stay allocation-free.
    pub fn add(&mut self, counter: &str, by: u64) {
        match self.counters.get_mut(counter) {
            Some(v) => *v += by,
            None => {
                self.counters.insert(counter.to_string(), by);
            }
        }
    }

    /// Sets a gauge (last write wins).
    pub fn gauge(&mut self, name: &str, value: f64) {
        match self.gauges.get_mut(name) {
            Some(v) => *v = value,
            None => {
                self.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Records one µs observation into a latency histogram.
    pub fn observe_us(&mut self, histogram: &str, value_us: u64) {
        match self.histograms.get_mut(histogram) {
            Some(h) => h.record(value_us),
            None => {
                let mut h = LogHistogram::default();
                h.record(value_us);
                self.histograms.insert(histogram.to_string(), h);
            }
        }
    }

    /// A counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A latency histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Folds another registry into this one: counters add, gauges take
    /// the other's value, histograms merge bin-wise.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Prepends `prefix` to every recorded metric name.
    pub fn prefix_names(&mut self, prefix: &str) {
        self.counters = std::mem::take(&mut self.counters)
            .into_iter()
            .map(|(k, v)| (format!("{prefix}{k}"), v))
            .collect();
        self.gauges = std::mem::take(&mut self.gauges)
            .into_iter()
            .map(|(k, v)| (format!("{prefix}{k}"), v))
            .collect();
        self.histograms = std::mem::take(&mut self.histograms)
            .into_iter()
            .map(|(k, v)| (format!("{prefix}{k}"), v))
            .collect();
    }

    /// Flat text dump, one metric per line, sorted by kind then name:
    ///
    /// ```text
    /// counter shard-0/commits 41
    /// gauge   shard-0/utilization 0.83
    /// hist    shard-0/commit_latency_us count=41 mean=2170.5 p50=1900 p90=4000 p99=7900 max=8123
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("counter {name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("gauge   {name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "hist    {name} count={} mean={:.1} p50={} p90={} p99={} max={}\n",
                h.count(),
                h.mean(),
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
                h.max(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_missing_reads_zero() {
        let mut m = MetricsRegistry::new();
        m.add("a", 1);
        m.add("a", 2);
        assert_eq!(m.counter("a"), 3);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn merge_combines_all_kinds() {
        let mut a = MetricsRegistry::new();
        a.add("c", 1);
        a.gauge("g", 1.0);
        a.observe_us("h", 10);
        let mut b = MetricsRegistry::new();
        b.add("c", 2);
        b.gauge("g", 2.0);
        b.observe_us("h", 1000);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge_value("g"), Some(2.0));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn render_text_is_sorted_and_stable() {
        let mut m = MetricsRegistry::new();
        m.add("z/late", 1);
        m.add("a/early", 1);
        m.gauge("mid", 0.5);
        let text = m.render_text();
        let a = text.find("a/early").unwrap();
        let z = text.find("z/late").unwrap();
        assert!(a < z);
        assert_eq!(text, m.render_text());
    }
}
