/root/repo/target/debug/deps/blockpart-c191ad044141ca57.d: src/bin/blockpart.rs

/root/repo/target/debug/deps/blockpart-c191ad044141ca57: src/bin/blockpart.rs

src/bin/blockpart.rs:
