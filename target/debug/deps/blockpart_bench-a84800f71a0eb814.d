/root/repo/target/debug/deps/blockpart_bench-a84800f71a0eb814.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/blockpart_bench-a84800f71a0eb814: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
