//! Parallel intra-shard execution: resolve the serial and Block-STM
//! engines from the registry, replay the same hostile workload through
//! both, and show that the parallel engine commits byte-identical
//! outcomes — all that changes is the measured speculation.
//!
//! ```sh
//! cargo run --release --example parallel_execution
//! ```

use blockpart::core::{EngineRegistry, ScenarioRegistry};
use blockpart::ethereum::gen::GeneratorConfig;
use blockpart::ethereum::{ExecutedTx, World};
use blockpart::runtime::{Assignment, RuntimeConfig, RuntimeReport, ShardedRuntime};
use blockpart::types::ShardCount;

/// Replays the workload under the named engine at k = 2, loaded hard
/// enough (20µs arrival gap) that queues build and a parallel engine
/// gets room to speculate ahead.
fn replay(
    engines: &EngineRegistry,
    spec: &str,
    world: &World,
    txs: &[ExecutedTx],
) -> RuntimeReport {
    let engine = engines.resolve(spec).expect("engine resolves");
    let config = RuntimeConfig::new(ShardCount::TWO)
        .with_inter_arrival_us(20)
        .with_exec(engine);
    ShardedRuntime::new(config, Assignment::hashed(ShardCount::TWO)).run(world, txs)
}

/// Strips the additive speculation counters so a parallel report can be
/// compared field-for-field against a serial one.
fn without_exec_counters(mut report: RuntimeReport) -> RuntimeReport {
    report.exec_speculated = 0;
    report.exec_conflicts = 0;
    report.exec_re_executions = 0;
    for shard in &mut report.per_shard {
        shard.exec_speculated = 0;
        shard.exec_conflicts = 0;
        shard.exec_re_executions = 0;
    }
    report
}

fn main() {
    let engines = EngineRegistry::with_builtins();
    println!("registered engines:");
    println!("{}", engines.help_table().render_ascii());

    // A contention-maximizing workload: the ICO-style burst hammers a
    // handful of hot contracts, exactly where optimistic execution must
    // detect conflicts and re-execute.
    let scenarios = ScenarioRegistry::with_builtins();
    let built = scenarios
        .resolve("hub-burst")
        .expect("built-in scenario resolves")
        .build(&GeneratorConfig::test_scale(42).with_scale(0.25));
    let world = built.chain.world().clone();
    let txs: Vec<ExecutedTx> = built.txs.iter().take(300).cloned().collect();
    println!("workload: hub-burst, {} transactions at k = 2\n", txs.len());

    let serial = replay(&engines, "serial", &world, &txs);
    let parallel = replay(&engines, "block-stm[lanes=4]", &world, &txs);

    // The parity guarantee: byte-identical commits in block order, on
    // every lane count — only the exec_* counters may differ.
    assert_eq!(
        without_exec_counters(parallel.clone()),
        without_exec_counters(serial.clone()),
        "parallel execution must be indistinguishable from serial"
    );
    assert_eq!(
        serial.exec_speculated, 0,
        "the serial engine never speculates"
    );
    let rerun = replay(&engines, "parallel[lanes=2]", &world, &txs);
    assert_eq!(
        rerun, parallel,
        "lane count and reruns must not change a single byte"
    );

    println!(
        "serial engine:   {} committed, {} aborted rounds",
        serial.committed, serial.aborted_rounds
    );
    println!(
        "parallel engine: {} committed, {} aborted rounds — identical outcomes",
        parallel.committed, parallel.aborted_rounds
    );
    println!(
        "speculation:     {} speculated, {} conflicts, {} re-executions",
        parallel.exec_speculated, parallel.exec_conflicts, parallel.exec_re_executions
    );
    for shard in &parallel.per_shard {
        println!(
            "  {}: {} speculated, {} conflicts, {} re-executed",
            shard.shard, shard.exec_speculated, shard.exec_conflicts, shard.exec_re_executions
        );
    }

    println!("\nreading the numbers:");
    println!("  * commits land strictly in block order, so reports, traces and");
    println!("    state are byte-identical across engines and lane counts;");
    println!("  * conflicts surface where the burst's hot contracts collide —");
    println!("    each one costs a re-execution, never a divergent result;");
    println!("  * `blockpart runtime --exec \"parallel[lanes=4]\"` (and `live`)");
    println!("    take any spec `list-engines` prints.");
}
