/root/repo/target/debug/deps/serde-498b7e568e3bdd83.d: third_party/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-498b7e568e3bdd83.rmeta: third_party/serde/src/lib.rs Cargo.toml

third_party/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
