/root/repo/target/debug/examples/trace_export-34dffbfbd5910f9c.d: examples/trace_export.rs

/root/repo/target/debug/examples/trace_export-34dffbfbd5910f9c: examples/trace_export.rs

examples/trace_export.rs:
