/root/repo/target/debug/deps/blockpart-7222498c325b6585.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart-7222498c325b6585.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
