/root/repo/target/debug/examples/trace_export-1528f56aa82c56aa.d: examples/trace_export.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_export-1528f56aa82c56aa.rmeta: examples/trace_export.rs Cargo.toml

examples/trace_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
