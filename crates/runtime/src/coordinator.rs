//! Per-transaction two-phase-commit coordinator state.
//!
//! Every cross-shard transaction is coordinated by its home shard. The
//! state machine is: `Prepare` broadcast → collect votes → on unanimous
//! yes, execute on a scratch world assembled from the shipped snapshots →
//! `Commit` broadcast with write-sets → collect acks → committed. Any
//! `no` vote aborts the round; the coordinator backs off and retries up
//! to a configured attempt cap.

use blockpart_ethereum::{AddressState, World};
use blockpart_types::{Address, ShardId};

/// Coordinator-side state of one in-flight cross-shard transaction.
#[derive(Debug)]
pub struct CoordState {
    /// 1-based prepare-round counter.
    pub attempt: u32,
    /// Votes still outstanding in this round.
    pub votes_pending: usize,
    /// Whether any participant voted `no` this round.
    pub any_no: bool,
    /// Participants that voted `yes` and therefore hold locks.
    pub locked: Vec<ShardId>,
    /// State snapshots shipped with the `yes` votes.
    pub shipped: Vec<(Address, AddressState)>,
    /// The scratch world while the transaction executes.
    pub scratch: Option<World>,
    /// Contracts the execution created (installed on the home shard at
    /// commit).
    pub created: Vec<Address>,
    /// Acks still outstanding after the `Commit` broadcast.
    pub acks_pending: usize,
}

impl CoordState {
    /// Opens prepare round `attempt` awaiting `participants` votes.
    pub fn new_round(attempt: u32, participants: usize) -> Self {
        CoordState {
            attempt,
            votes_pending: participants,
            any_no: false,
            locked: Vec::new(),
            shipped: Vec::new(),
            scratch: None,
            created: Vec::new(),
            acks_pending: 0,
        }
    }

    /// Records one vote; returns `true` when the round is complete.
    pub fn record_vote(
        &mut self,
        from: ShardId,
        ok: bool,
        shipped: Vec<(Address, AddressState)>,
    ) -> bool {
        debug_assert!(self.votes_pending > 0, "vote after round completion");
        self.votes_pending -= 1;
        if ok {
            self.locked.push(from);
            self.shipped.extend(shipped);
        } else {
            self.any_no = true;
        }
        self.votes_pending == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_completes_after_all_votes() {
        let mut c = CoordState::new_round(1, 2);
        assert!(!c.record_vote(ShardId::new(0), true, Vec::new()));
        assert!(c.record_vote(ShardId::new(1), false, Vec::new()));
        assert!(c.any_no);
        assert_eq!(c.locked, vec![ShardId::new(0)]);
    }
}
