/root/repo/target/debug/deps/ablation-ca23f3d94e8568d2.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-ca23f3d94e8568d2: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
