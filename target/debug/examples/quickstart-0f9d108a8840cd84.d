/root/repo/target/debug/examples/quickstart-0f9d108a8840cd84.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-0f9d108a8840cd84.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
