//! The partitioning study of Fynn & Pedone (DSN 2018), end to end.
//!
//! This crate wires the substrates together: it takes an interaction log
//! (usually from [`blockpart_ethereum`]'s generator), runs the five
//! partitioning methods across shard-count configurations via the
//! [`blockpart_shard`] simulator, and aggregates the per-window metrics
//! into the tables behind the paper's figures.
//!
//! * [`StrategySpec`] / [`StrategyRegistry`] — the open strategy API:
//!   the five paper strategies ship as built-ins (parameterizable, e.g.
//!   `r-metis[window=7]`), and user strategies register alongside them;
//! * [`Experiment`] — the unified pipeline: workload source → graph
//!   windowing → strategies × shard counts → offline simulation and/or
//!   2PC runtime replay, collected in an [`ExperimentReport`] that
//!   renders as tables or serializes to JSON;
//! * [`experiments`] — one function per paper figure, each returning
//!   renderable tables/series;
//! * [`Method`], [`Study`], [`RuntimeStudy`] — the closed predecessors,
//!   kept as thin shims over the registry and pipeline so existing call
//!   sites keep working and produce identical numbers.
//!
//! # Examples
//!
//! ```
//! use blockpart_core::{Method, Study};
//! use blockpart_ethereum::gen::{ChainGenerator, GeneratorConfig};
//! use blockpart_types::ShardCount;
//!
//! let chain = ChainGenerator::new(GeneratorConfig::test_scale(5)).generate();
//! let result = Study::new(&chain.log)
//!     .methods(vec![Method::Hash, Method::Metis])
//!     .shard_counts(vec![ShardCount::TWO])
//!     .run();
//! let hash = result.get(Method::Hash, ShardCount::TWO).unwrap();
//! assert_eq!(hash.total_moves, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
mod engine;
mod experiment;
pub mod experiments;
mod methods;
mod profile;
mod runtime_study;
mod scenario;
mod strategy;
mod study;

pub use engine::{EngineFactory, EngineRegistry};
pub use experiment::{Experiment, ExperimentReport, ExperimentRun};
pub use methods::Method;
pub use profile::{run_profile, ProfileReport};
pub use runtime_study::{runtime_table, RuntimeRun, RuntimeStudy, RuntimeStudyResult};
pub use scenario::{ComposedScenario, ScenarioFactory, ScenarioRegistry, ScenarioSpec};
pub use strategy::{
    CanonicalStrategy, ResolvedStrategy, StrategyError, StrategyFactory, StrategyParams,
    StrategyRegistry, StrategySpec, StreamingStrategy,
};
pub use study::{MethodRun, Study, StudyResult};

pub use blockpart_types::{Duration, ShardCount, Timestamp};
