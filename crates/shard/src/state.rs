//! Incrementally-maintained sharded graph state.

use std::collections::HashMap;

use blockpart_graph::Csr;
use blockpart_partition::Partition;
use blockpart_types::{AccountKind, Address, ShardCount, ShardId};

/// Eq. 2 balance of an arbitrary per-shard activity vector: the most
/// loaded shard's share of the total, normalised so 1.0 is perfect.
pub(crate) fn activity_balance(activity: &[u64]) -> f64 {
    let total: u64 = activity.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let max = *activity.iter().max().expect("k >= 1");
    max as f64 * activity.len() as f64 / total as f64
}

/// The cumulative blockchain graph together with the current shard
/// assignment, maintained incrementally so that per-window metric queries
/// are O(1) and vertex moves are O(degree).
///
/// Tracks exactly the quantities of the paper's Eqs. 1–2 over the
/// cumulative graph: distinct/cut edge counts (static edge-cut), per-shard
/// vertex counts (static balance), edge weights (dynamic edge-cut) and
/// per-shard activity (dynamic balance).
///
/// # Examples
///
/// ```
/// use blockpart_shard::ShardedState;
/// use blockpart_types::{AccountKind, Address, ShardCount, ShardId};
///
/// let mut st = ShardedState::new(ShardCount::TWO);
/// let (a, b) = (Address::from_index(1), Address::from_index(2));
/// st.insert_vertex(a, AccountKind::ExternallyOwned, ShardId::new(0));
/// st.insert_vertex(b, AccountKind::ExternallyOwned, ShardId::new(1));
/// st.record_edge(a, b, 3);
/// assert_eq!(st.static_edge_cut(), 1.0); // the only edge is cut
/// st.move_vertex(b, ShardId::new(0));
/// assert_eq!(st.static_edge_cut(), 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct ShardedState {
    k: ShardCount,
    assignment: HashMap<Address, ShardId>,
    order: Vec<Address>,
    kinds: HashMap<Address, AccountKind>,
    adj: HashMap<Address, HashMap<Address, u64>>,
    activity: HashMap<Address, u64>,
    shard_counts: Vec<usize>,
    shard_activity: Vec<u64>,
    cut_edges: usize,
    total_edges: usize,
    cut_weight: u64,
    total_weight: u64,
}

impl ShardedState {
    /// Creates empty state for `k` shards.
    pub fn new(k: ShardCount) -> Self {
        ShardedState {
            k,
            assignment: HashMap::new(),
            order: Vec::new(),
            kinds: HashMap::new(),
            adj: HashMap::new(),
            activity: HashMap::new(),
            shard_counts: vec![0; k.as_usize()],
            shard_activity: vec![0; k.as_usize()],
            cut_edges: 0,
            total_edges: 0,
            cut_weight: 0,
            total_weight: 0,
        }
    }

    /// The shard configuration.
    pub fn shard_count(&self) -> ShardCount {
        self.k
    }

    /// Number of vertices seen so far.
    pub fn vertex_count(&self) -> usize {
        self.order.len()
    }

    /// Number of distinct undirected edges seen so far.
    pub fn edge_count(&self) -> usize {
        self.total_edges
    }

    /// The current shard of `address`, if assigned.
    pub fn shard_of(&self, address: Address) -> Option<ShardId> {
        self.assignment.get(&address).copied()
    }

    /// Returns `true` if the vertex is known.
    pub fn contains(&self, address: Address) -> bool {
        self.assignment.contains_key(&address)
    }

    /// The recorded kind of `address`.
    pub fn kind_of(&self, address: Address) -> Option<AccountKind> {
        self.kinds.get(&address).copied()
    }

    /// Cumulative activity weight of `address`.
    pub fn activity_of(&self, address: Address) -> u64 {
        self.activity.get(&address).copied().unwrap_or(0)
    }

    /// Per-shard vertex counts.
    pub fn shard_counts(&self) -> &[usize] {
        &self.shard_counts
    }

    /// Per-shard cumulative activity.
    pub fn shard_activity(&self) -> &[u64] {
        &self.shard_activity
    }

    /// Registers a new vertex on `shard`.
    ///
    /// # Panics
    ///
    /// Panics if the vertex already exists or `shard >= k`.
    pub fn insert_vertex(&mut self, address: Address, kind: AccountKind, shard: ShardId) {
        assert!(self.k.contains(shard), "shard out of range");
        let prev = self.assignment.insert(address, shard);
        assert!(prev.is_none(), "vertex {address} inserted twice");
        self.order.push(address);
        self.kinds.insert(address, kind);
        self.shard_counts[shard.as_usize()] += 1;
    }

    /// Upgrades a vertex to contract kind (creations can arrive after the
    /// address was first seen as a plain transfer target).
    pub fn note_kind(&mut self, address: Address, kind: AccountKind) {
        if kind.is_contract() {
            self.kinds.insert(address, AccountKind::Contract);
        }
    }

    /// Records an interaction edge of weight `w` between two *assigned*
    /// vertices, updating cut bookkeeping. Self-loops only add activity.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is unassigned.
    pub fn record_edge(&mut self, u: Address, v: Address, w: u64) {
        let su = self.assignment[&u];
        self.add_activity(u, w);
        if u == v {
            return;
        }
        let sv = self.assignment[&v];
        self.add_activity(v, w);

        let existing = self.adj.get(&u).and_then(|m| m.get(&v)).copied();
        let cut = su != sv;
        match existing {
            Some(_) => {
                if cut {
                    self.cut_weight += w;
                }
            }
            None => {
                self.total_edges += 1;
                if cut {
                    self.cut_edges += 1;
                    self.cut_weight += w;
                }
            }
        }
        self.total_weight += w;
        *self.adj.entry(u).or_default().entry(v).or_insert(0) += w;
        *self.adj.entry(v).or_default().entry(u).or_insert(0) += w;
    }

    fn add_activity(&mut self, a: Address, w: u64) {
        *self.activity.entry(a).or_insert(0) += w;
        let s = self.assignment[&a];
        self.shard_activity[s.as_usize()] += w;
    }

    /// Moves a vertex to `to`, updating cut bookkeeping in O(degree).
    /// Returns `true` if the shard actually changed.
    ///
    /// # Panics
    ///
    /// Panics if the vertex is unknown or `to >= k`.
    pub fn move_vertex(&mut self, address: Address, to: ShardId) -> bool {
        assert!(self.k.contains(to), "shard out of range");
        let from = *self.assignment.get(&address).expect("vertex must exist");
        if from == to {
            return false;
        }
        if let Some(neigh) = self.adj.get(&address) {
            for (&n, &w) in neigh {
                let sn = self.assignment[&n];
                let was_cut = sn != from;
                let is_cut = sn != to;
                match (was_cut, is_cut) {
                    (false, true) => {
                        self.cut_edges += 1;
                        self.cut_weight += w;
                    }
                    (true, false) => {
                        self.cut_edges -= 1;
                        self.cut_weight -= w;
                    }
                    _ => {}
                }
            }
        }
        self.assignment.insert(address, to);
        self.shard_counts[from.as_usize()] -= 1;
        self.shard_counts[to.as_usize()] += 1;
        let act = self.activity_of(address);
        self.shard_activity[from.as_usize()] -= act;
        self.shard_activity[to.as_usize()] += act;
        true
    }

    /// Eq. 1 over the cumulative unweighted graph.
    pub fn static_edge_cut(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.total_edges as f64
        }
    }

    /// Eq. 1 over the cumulative weighted graph.
    pub fn dynamic_edge_cut(&self) -> f64 {
        if self.total_weight == 0 {
            0.0
        } else {
            self.cut_weight as f64 / self.total_weight as f64
        }
    }

    /// Eq. 2 over vertex counts.
    pub fn static_balance(&self) -> f64 {
        let n: usize = self.shard_counts.iter().sum();
        if n == 0 {
            return 1.0;
        }
        let max = *self.shard_counts.iter().max().expect("k >= 1");
        max as f64 * self.k.as_usize() as f64 / n as f64
    }

    /// Eq. 2 over cumulative activity.
    pub fn dynamic_balance(&self) -> f64 {
        let total: u64 = self.shard_activity.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let max = *self.shard_activity.iter().max().expect("k >= 1");
        max as f64 * self.k.as_usize() as f64 / total as f64
    }

    /// Builds the cumulative graph as a [`Csr`] (vertices in first-seen
    /// order) plus the matching address list, stable ids and the current
    /// assignment as a [`Partition`] — everything a
    /// [`Partitioner`](blockpart_partition::Partitioner) request needs.
    pub fn full_graph(&self) -> (Csr, Vec<Address>, Vec<u64>, Partition) {
        let n = self.order.len();
        let index: HashMap<Address, u32> = self
            .order
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, i as u32))
            .collect();
        let mut xadj = Vec::with_capacity(n + 1);
        let mut adjncy = Vec::new();
        let mut adjwgt = Vec::new();
        let mut vwgt = Vec::with_capacity(n);
        xadj.push(0);
        for &a in &self.order {
            if let Some(neigh) = self.adj.get(&a) {
                let mut row: Vec<(u32, u64)> =
                    neigh.iter().map(|(&t, &w)| (index[&t], w)).collect();
                row.sort_unstable_by_key(|&(t, _)| t);
                for (t, w) in row {
                    adjncy.push(t);
                    adjwgt.push(w);
                }
            }
            xadj.push(adjncy.len());
            vwgt.push(self.activity_of(a).max(1));
        }
        let csr = Csr::from_parts(xadj, adjncy, adjwgt, vwgt);
        let ids: Vec<u64> = self.order.iter().map(|a| a.stable_hash()).collect();
        let assignment: Vec<u16> = self
            .order
            .iter()
            .map(|a| self.assignment[a].as_u16())
            .collect();
        let partition =
            Partition::from_assignment(assignment, self.k).expect("assignment within k");
        (csr, self.order.clone(), ids, partition)
    }

    /// A snapshot of the full vertex→shard assignment — the handoff from
    /// the partitioning simulator to the sharded execution runtime.
    pub fn assignment_map(&self) -> HashMap<Address, ShardId> {
        self.assignment.clone()
    }

    /// The current assignment of `addresses` as a [`Partition`] (vertices
    /// in the given order).
    ///
    /// # Panics
    ///
    /// Panics if any address is unassigned.
    pub fn partition_of(&self, addresses: &[Address]) -> Partition {
        let assignment: Vec<u16> = addresses
            .iter()
            .map(|a| self.assignment[a].as_u16())
            .collect();
        Partition::from_assignment(assignment, self.k).expect("assignment within k")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn two_shard_state() -> ShardedState {
        ShardedState::new(ShardCount::TWO)
    }

    #[test]
    fn insert_and_counts() {
        let mut st = two_shard_state();
        st.insert_vertex(addr(1), AccountKind::ExternallyOwned, ShardId::new(0));
        st.insert_vertex(addr(2), AccountKind::Contract, ShardId::new(1));
        assert_eq!(st.vertex_count(), 2);
        assert_eq!(st.shard_counts(), &[1, 1]);
        assert_eq!(st.kind_of(addr(2)), Some(AccountKind::Contract));
        assert!((st.static_balance() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let mut st = two_shard_state();
        st.insert_vertex(addr(1), AccountKind::ExternallyOwned, ShardId::new(0));
        st.insert_vertex(addr(1), AccountKind::ExternallyOwned, ShardId::new(1));
    }

    #[test]
    fn edge_cut_bookkeeping() {
        let mut st = two_shard_state();
        st.insert_vertex(addr(1), AccountKind::ExternallyOwned, ShardId::new(0));
        st.insert_vertex(addr(2), AccountKind::ExternallyOwned, ShardId::new(0));
        st.insert_vertex(addr(3), AccountKind::ExternallyOwned, ShardId::new(1));
        st.record_edge(addr(1), addr(2), 2); // internal
        st.record_edge(addr(2), addr(3), 3); // cut
        assert_eq!(st.edge_count(), 2);
        assert!((st.static_edge_cut() - 0.5).abs() < 1e-12);
        assert!((st.dynamic_edge_cut() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn repeated_edges_accumulate_weight_not_count() {
        let mut st = two_shard_state();
        st.insert_vertex(addr(1), AccountKind::ExternallyOwned, ShardId::new(0));
        st.insert_vertex(addr(2), AccountKind::ExternallyOwned, ShardId::new(1));
        st.record_edge(addr(1), addr(2), 1);
        st.record_edge(addr(1), addr(2), 4);
        assert_eq!(st.edge_count(), 1);
        assert!((st.dynamic_edge_cut() - 1.0).abs() < 1e-12);
        assert_eq!(st.activity_of(addr(1)), 5);
    }

    #[test]
    fn move_updates_cut_incrementally() {
        let mut st = two_shard_state();
        for i in 1..=4 {
            st.insert_vertex(
                addr(i),
                AccountKind::ExternallyOwned,
                ShardId::new((i % 2) as u16),
            );
        }
        st.record_edge(addr(1), addr(2), 1); // shards 1,0: cut
        st.record_edge(addr(1), addr(3), 1); // shards 1,1: internal
        st.record_edge(addr(2), addr(4), 1); // shards 0,0: internal
        assert_eq!(st.static_edge_cut(), 1.0 / 3.0);
        // move vertex 2 to shard 1: edge (1,2) heals, edge (2,4) cut
        assert!(st.move_vertex(addr(2), ShardId::new(1)));
        assert_eq!(st.static_edge_cut(), 1.0 / 3.0);
        // move vertex 4 too: everything on shard 1 except... 1,2,3,4 -> 1,1,1,1?
        st.move_vertex(addr(4), ShardId::new(1));
        assert_eq!(st.static_edge_cut(), 0.0);
        assert_eq!(st.shard_counts(), &[0, 4]);
    }

    #[test]
    fn move_to_same_shard_is_noop() {
        let mut st = two_shard_state();
        st.insert_vertex(addr(1), AccountKind::ExternallyOwned, ShardId::new(0));
        assert!(!st.move_vertex(addr(1), ShardId::new(0)));
    }

    #[test]
    fn self_loops_add_activity_only() {
        let mut st = two_shard_state();
        st.insert_vertex(addr(1), AccountKind::ExternallyOwned, ShardId::new(0));
        st.record_edge(addr(1), addr(1), 5);
        assert_eq!(st.edge_count(), 0);
        assert_eq!(st.activity_of(addr(1)), 5);
        assert_eq!(st.shard_activity(), &[5, 0]);
    }

    #[test]
    fn dynamic_balance_tracks_activity_moves() {
        let mut st = two_shard_state();
        st.insert_vertex(addr(1), AccountKind::ExternallyOwned, ShardId::new(0));
        st.insert_vertex(addr(2), AccountKind::ExternallyOwned, ShardId::new(0));
        st.record_edge(addr(1), addr(2), 10);
        assert!((st.dynamic_balance() - 2.0).abs() < 1e-12);
        st.move_vertex(addr(2), ShardId::new(1));
        assert!((st.dynamic_balance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_graph_matches_state() {
        let mut st = two_shard_state();
        st.insert_vertex(addr(1), AccountKind::ExternallyOwned, ShardId::new(0));
        st.insert_vertex(addr(2), AccountKind::ExternallyOwned, ShardId::new(1));
        st.insert_vertex(addr(3), AccountKind::ExternallyOwned, ShardId::new(1));
        st.record_edge(addr(1), addr(2), 2);
        st.record_edge(addr(2), addr(3), 1);
        let (csr, order, ids, part) = st.full_graph();
        csr.validate().unwrap();
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.edge_count(), 2);
        assert_eq!(order, vec![addr(1), addr(2), addr(3)]);
        assert_eq!(ids[0], addr(1).stable_hash());
        assert_eq!(part.shard_of(0), ShardId::new(0));
        assert_eq!(part.shard_of(1), ShardId::new(1));
        // metrics agree with the incremental bookkeeping
        let m = blockpart_partition::CutMetrics::compute(&csr, &part);
        assert!((m.static_edge_cut - st.static_edge_cut()).abs() < 1e-12);
        assert!((m.dynamic_edge_cut - st.dynamic_edge_cut()).abs() < 1e-12);
    }

    #[test]
    fn empty_state_metrics() {
        let st = two_shard_state();
        assert_eq!(st.static_edge_cut(), 0.0);
        assert_eq!(st.dynamic_edge_cut(), 0.0);
        assert!((st.static_balance() - 1.0).abs() < 1e-12);
        assert!((st.dynamic_balance() - 1.0).abs() < 1e-12);
    }
}
