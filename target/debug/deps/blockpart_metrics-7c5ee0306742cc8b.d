/root/repo/target/debug/deps/blockpart_metrics-7c5ee0306742cc8b.d: crates/metrics/src/lib.rs crates/metrics/src/calendar.rs crates/metrics/src/concentration.rs crates/metrics/src/histogram.rs crates/metrics/src/report.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart_metrics-7c5ee0306742cc8b.rmeta: crates/metrics/src/lib.rs crates/metrics/src/calendar.rs crates/metrics/src/concentration.rs crates/metrics/src/histogram.rs crates/metrics/src/report.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/calendar.rs:
crates/metrics/src/concentration.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/report.rs:
crates/metrics/src/series.rs:
crates/metrics/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
