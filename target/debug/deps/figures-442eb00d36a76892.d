/root/repo/target/debug/deps/figures-442eb00d36a76892.d: tests/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-442eb00d36a76892.rmeta: tests/figures.rs Cargo.toml

tests/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
