//! The paper's partition-quality metrics (Eqs. 1 and 2).

use std::fmt;

use blockpart_graph::Csr;
use serde::{Deserialize, Serialize};

use crate::partition::Partition;

/// Static and dynamic edge-cut and balance of a partition over a graph.
///
/// *Static* metrics count vertices and edges; *dynamic* metrics weight them
/// by activity (vertex weights) and interaction frequency (edge weights),
/// matching the paper's Eq. 1 and Eq. 2 and their weighted variants:
///
/// * `edge-cut = Σᵢ |C(pᵢ)| / |E|` — the fraction of edges that connect two
///   different shards (each cut edge counted once);
/// * `balance = maxᵢ(|pᵢ|) · k / |V|` — how much the fullest shard exceeds
///   the average (1.0 is perfect).
///
/// # Examples
///
/// ```
/// use blockpart_graph::Csr;
/// use blockpart_partition::{CutMetrics, Partition};
/// use blockpart_types::ShardCount;
///
/// let csr = Csr::from_edges(4, &[(0, 1, 1), (1, 2, 8), (2, 3, 1)]);
/// let p = Partition::from_assignment(vec![0, 0, 1, 1], ShardCount::TWO).unwrap();
/// let m = CutMetrics::compute(&csr, &p);
/// assert_eq!(m.cut_edges, 1);
/// assert!((m.static_edge_cut - 1.0 / 3.0).abs() < 1e-12);
/// assert!((m.dynamic_edge_cut - 0.8).abs() < 1e-12);
/// assert!((m.static_balance - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CutMetrics {
    /// Number of undirected edges crossing shards.
    pub cut_edges: usize,
    /// Total number of undirected edges.
    pub total_edges: usize,
    /// Sum of weights of cut edges.
    pub cut_weight: u64,
    /// Sum of all edge weights.
    pub total_edge_weight: u64,
    /// Eq. 1 on counts: `cut_edges / total_edges` (0 if no edges).
    pub static_edge_cut: f64,
    /// Eq. 1 on weights: `cut_weight / total_edge_weight` (0 if unweighted
    /// total is zero).
    pub dynamic_edge_cut: f64,
    /// Eq. 2 on vertex counts.
    pub static_balance: f64,
    /// Eq. 2 on vertex activity weights.
    pub dynamic_balance: f64,
}

impl CutMetrics {
    /// Computes all metrics of `partition` over `csr`.
    ///
    /// # Panics
    ///
    /// Panics if `partition.len() != csr.node_count()`.
    pub fn compute(csr: &Csr, partition: &Partition) -> CutMetrics {
        assert_eq!(
            partition.len(),
            csr.node_count(),
            "partition covers {} vertices but graph has {}",
            partition.len(),
            csr.node_count()
        );
        let mut cut_edges = 0usize;
        let mut cut_weight = 0u64;
        let mut total_edges = 0usize;
        for (u, v, w) in csr.edges() {
            total_edges += 1;
            if partition.shard_of(u as usize) != partition.shard_of(v as usize) {
                cut_edges += 1;
                cut_weight += w;
            }
        }
        let k = partition.shard_count().as_usize() as f64;
        let n = csr.node_count();

        let sizes = partition.shard_sizes();
        let static_balance = if n == 0 {
            1.0
        } else {
            sizes.iter().copied().max().unwrap_or(0) as f64 * k / n as f64
        };

        let weights = partition.shard_weights(csr.vertex_weights());
        let total_vwgt = csr.total_vertex_weight();
        let dynamic_balance = if total_vwgt == 0 {
            1.0
        } else {
            weights.iter().copied().max().unwrap_or(0) as f64 * k / total_vwgt as f64
        };

        let total_edge_weight = csr.total_edge_weight();
        CutMetrics {
            cut_edges,
            total_edges,
            cut_weight,
            total_edge_weight,
            static_edge_cut: ratio(cut_edges as f64, total_edges as f64),
            dynamic_edge_cut: ratio(cut_weight as f64, total_edge_weight as f64),
            static_balance,
            dynamic_balance,
        }
    }

    /// The paper's Fig. 5 normalization of balance for cross-`k`
    /// comparison: `(balance − 1) / (k − 1)`, clamped at 0. For `k = 1` the
    /// result is 0.
    pub fn normalized_balance(balance: f64, k: usize) -> f64 {
        if k <= 1 {
            0.0
        } else {
            ((balance - 1.0) / (k as f64 - 1.0)).max(0.0)
        }
    }
}

impl fmt::Display for CutMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cut {:.3}/{:.3} (static/dynamic), balance {:.3}/{:.3}",
            self.static_edge_cut, self.dynamic_edge_cut, self.static_balance, self.dynamic_balance
        )
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpart_types::ShardCount;

    fn k2() -> ShardCount {
        ShardCount::TWO
    }

    #[test]
    fn zero_cut_when_all_one_shard() {
        let csr = Csr::from_edges(3, &[(0, 1, 5), (1, 2, 5)]);
        let p = Partition::all_on_first(3, k2());
        let m = CutMetrics::compute(&csr, &p);
        assert_eq!(m.cut_edges, 0);
        assert_eq!(m.static_edge_cut, 0.0);
        assert_eq!(m.dynamic_edge_cut, 0.0);
        // everything on one of two shards: balance = 3 * 2 / 3 = 2
        assert!((m.static_balance - 2.0).abs() < 1e-12);
    }

    #[test]
    fn full_cut() {
        let csr = Csr::from_edges(2, &[(0, 1, 7)]);
        let p = Partition::from_assignment(vec![0, 1], k2()).unwrap();
        let m = CutMetrics::compute(&csr, &p);
        assert_eq!(m.cut_edges, 1);
        assert_eq!(m.static_edge_cut, 1.0);
        assert_eq!(m.dynamic_edge_cut, 1.0);
        assert!((m.static_balance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dynamic_differs_from_static() {
        // heavy edge inside shard, light edge cut
        let csr = Csr::from_edges(4, &[(0, 1, 99), (1, 2, 1)]);
        let p = Partition::from_assignment(vec![0, 0, 1, 1], k2()).unwrap();
        let m = CutMetrics::compute(&csr, &p);
        assert!((m.static_edge_cut - 0.5).abs() < 1e-12);
        assert!((m.dynamic_edge_cut - 0.01).abs() < 1e-12);
    }

    #[test]
    fn dynamic_balance_uses_vertex_weights() {
        use blockpart_graph::GraphBuilder;
        use blockpart_types::Address;
        // vertex 0 and 1 interact heavily; 2 and 3 once.
        let mut b = GraphBuilder::new();
        b.add_interaction(Address::from_index(0), Address::from_index(1), 9);
        b.add_interaction(Address::from_index(2), Address::from_index(3), 1);
        let csr = b.build().to_csr();
        let p = Partition::from_assignment(vec![0, 0, 1, 1], k2()).unwrap();
        let m = CutMetrics::compute(&csr, &p);
        assert!((m.static_balance - 1.0).abs() < 1e-12);
        // weights: shard0 = 18, shard1 = 2, total 20 -> 18*2/20 = 1.8
        assert!((m.dynamic_balance - 1.8).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_perfectly_balanced() {
        let csr = Csr::from_edges(0, &[]);
        let p = Partition::all_on_first(0, k2());
        let m = CutMetrics::compute(&csr, &p);
        assert_eq!(m.static_edge_cut, 0.0);
        assert!((m.static_balance - 1.0).abs() < 1e-12);
        assert!((m.dynamic_balance - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "partition covers")]
    fn size_mismatch_panics() {
        let csr = Csr::from_edges(2, &[(0, 1, 1)]);
        let p = Partition::all_on_first(3, k2());
        let _ = CutMetrics::compute(&csr, &p);
    }

    #[test]
    fn normalized_balance() {
        assert_eq!(CutMetrics::normalized_balance(1.0, 2), 0.0);
        assert!((CutMetrics::normalized_balance(2.0, 2) - 1.0).abs() < 1e-12);
        assert!((CutMetrics::normalized_balance(4.0, 8) - 3.0 / 7.0).abs() < 1e-12);
        assert_eq!(CutMetrics::normalized_balance(0.9, 2), 0.0);
        assert_eq!(CutMetrics::normalized_balance(5.0, 1), 0.0);
    }

    #[test]
    fn display_nonempty() {
        let csr = Csr::from_edges(2, &[(0, 1, 1)]);
        let p = Partition::all_on_first(2, k2());
        assert!(!CutMetrics::compute(&csr, &p).to_string().is_empty());
    }
}
