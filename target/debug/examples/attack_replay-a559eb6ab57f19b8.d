/root/repo/target/debug/examples/attack_replay-a559eb6ab57f19b8.d: examples/attack_replay.rs

/root/repo/target/debug/examples/attack_replay-a559eb6ab57f19b8: examples/attack_replay.rs

examples/attack_replay.rs:
