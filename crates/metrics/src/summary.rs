//! Distribution summaries: five-number statistics and kernel density
//! estimates (the numbers behind the paper's box-and-whisker/violin plots).

use serde::{Deserialize, Serialize};

/// Min, first quartile, median, third quartile, max — the box-and-whisker
/// numbers of the paper's Fig. 4.
///
/// Quartiles use linear interpolation between order statistics (type-7,
/// the numpy default).
///
/// # Examples
///
/// ```
/// use blockpart_metrics::FiveNumber;
///
/// let s = FiveNumber::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.q1, 1.75);
/// assert_eq!(s.median, 2.5);
/// assert_eq!(s.q3, 3.25);
/// assert_eq!(s.max, 4.0);
/// assert!(FiveNumber::of(&[]).is_none());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FiveNumber {
    /// Smallest value (lower whisker).
    pub min: f64,
    /// First quartile (box bottom).
    pub q1: f64,
    /// Median (band inside the box).
    pub median: f64,
    /// Third quartile (box top).
    pub q3: f64,
    /// Largest value (upper whisker).
    pub max: f64,
}

impl FiveNumber {
    /// Computes the five-number summary; `None` for empty input or if any
    /// value is NaN.
    pub fn of(values: &[f64]) -> Option<FiveNumber> {
        if values.is_empty() || values.iter().any(|v| v.is_nan()) {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Some(FiveNumber {
            min: sorted[0],
            q1: percentile_sorted(&sorted, 0.25),
            median: percentile_sorted(&sorted, 0.5),
            q3: percentile_sorted(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
        })
    }

    /// The interquartile range `q3 - q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Interpolated percentile of pre-sorted data (type-7 / numpy default).
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use blockpart_metrics::percentile_sorted;
///
/// let data = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile_sorted(&data, 0.0), 1.0);
/// assert_eq!(percentile_sorted(&data, 1.0), 4.0);
/// assert_eq!(percentile_sorted(&data, 0.5), 2.5);
/// ```
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&p), "percentile fraction out of range");
    let h = p * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// A Gaussian kernel density estimate over a uniform grid — the shape the
/// paper's violin plots draw around each box.
///
/// # Examples
///
/// ```
/// use blockpart_metrics::ViolinDensity;
///
/// let v = ViolinDensity::of(&[0.0, 0.1, 0.9, 1.0], 16).unwrap();
/// assert_eq!(v.grid.len(), 16);
/// // bimodal data: the density dips in the middle
/// let mid = v.density[8];
/// assert!(v.density[0] > mid && v.density[15] > mid);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ViolinDensity {
    /// Evaluation points, spanning `[min, max]` of the data.
    pub grid: Vec<f64>,
    /// Estimated density at each grid point (integrates to ~1).
    pub density: Vec<f64>,
    /// The bandwidth used (Silverman's rule of thumb).
    pub bandwidth: f64,
}

impl ViolinDensity {
    /// Estimates the density on `bins` grid points. Returns `None` for
    /// fewer than 2 samples, NaN input or `bins < 2`.
    pub fn of(values: &[f64], bins: usize) -> Option<ViolinDensity> {
        if values.len() < 2 || bins < 2 || values.iter().any(|v| v.is_nan()) {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt();
        // Silverman's rule; fall back to a small constant for degenerate
        // (all-equal) samples so the KDE stays defined.
        let bandwidth = if std > 0.0 {
            1.06 * std * n.powf(-0.2)
        } else {
            1e-9_f64.max(mean.abs() * 1e-6)
        };

        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(bandwidth);
        let grid: Vec<f64> = (0..bins)
            .map(|i| lo + span * i as f64 / (bins - 1) as f64)
            .collect();
        let norm = 1.0 / (n * bandwidth * (2.0 * std::f64::consts::PI).sqrt());
        let density: Vec<f64> = grid
            .iter()
            .map(|&x| {
                values
                    .iter()
                    .map(|&v| (-0.5 * ((x - v) / bandwidth).powi(2)).exp())
                    .sum::<f64>()
                    * norm
            })
            .collect();
        Some(ViolinDensity {
            grid,
            density,
            bandwidth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_number_single_value() {
        let s = FiveNumber::of(&[7.0]).unwrap();
        assert_eq!(s.min, 7.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.iqr(), 0.0);
    }

    #[test]
    fn five_number_rejects_nan() {
        assert!(FiveNumber::of(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn five_number_odd_length() {
        let s = FiveNumber::of(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [10.0, 20.0, 30.0];
        assert_eq!(percentile_sorted(&data, 0.25), 15.0);
        assert_eq!(percentile_sorted(&data, 0.75), 25.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        let _ = percentile_sorted(&[], 0.5);
    }

    #[test]
    fn kde_integrates_to_one() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let v = ViolinDensity::of(&values, 256).unwrap();
        let dx = v.grid[1] - v.grid[0];
        let integral: f64 = v.density.iter().sum::<f64>() * dx;
        // the grid only spans [min, max], so tails are clipped
        assert!((0.7..=1.05).contains(&integral), "integral {integral}");
    }

    #[test]
    fn kde_handles_constant_data() {
        let v = ViolinDensity::of(&[2.0, 2.0, 2.0], 8).unwrap();
        assert!(v.density.iter().all(|d| d.is_finite()));
        assert!(v.bandwidth > 0.0);
    }

    #[test]
    fn kde_rejects_degenerate_input() {
        assert!(ViolinDensity::of(&[1.0], 8).is_none());
        assert!(ViolinDensity::of(&[1.0, 2.0], 1).is_none());
        assert!(ViolinDensity::of(&[1.0, f64::NAN], 8).is_none());
    }

    #[test]
    fn kde_peak_tracks_mode() {
        let mut values = vec![5.0; 50];
        values.extend(std::iter::repeat_n(1.0, 5));
        let v = ViolinDensity::of(&values, 64).unwrap();
        let peak_idx = v
            .density
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(v.grid[peak_idx] > 4.0, "peak at {}", v.grid[peak_idx]);
    }
}
