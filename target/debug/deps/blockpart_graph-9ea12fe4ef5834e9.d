/root/repo/target/debug/deps/blockpart_graph-9ea12fe4ef5834e9.d: crates/graph/src/lib.rs crates/graph/src/algos.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/event.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/node.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart_graph-9ea12fe4ef5834e9.rmeta: crates/graph/src/lib.rs crates/graph/src/algos.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/event.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/node.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/algos.rs:
crates/graph/src/builder.rs:
crates/graph/src/csr.rs:
crates/graph/src/event.rs:
crates/graph/src/graph.rs:
crates/graph/src/io.rs:
crates/graph/src/node.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
