/root/repo/target/debug/deps/blockpart_runtime-3853482890621ca8.d: crates/runtime/src/lib.rs crates/runtime/src/clock.rs crates/runtime/src/coordinator.rs crates/runtime/src/event.rs crates/runtime/src/locks.rs crates/runtime/src/net.rs crates/runtime/src/report.rs crates/runtime/src/shard_worker.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart_runtime-3853482890621ca8.rmeta: crates/runtime/src/lib.rs crates/runtime/src/clock.rs crates/runtime/src/coordinator.rs crates/runtime/src/event.rs crates/runtime/src/locks.rs crates/runtime/src/net.rs crates/runtime/src/report.rs crates/runtime/src/shard_worker.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/clock.rs:
crates/runtime/src/coordinator.rs:
crates/runtime/src/event.rs:
crates/runtime/src/locks.rs:
crates/runtime/src/net.rs:
crates/runtime/src/report.rs:
crates/runtime/src/shard_worker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
