/root/repo/target/debug/deps/blockpart_ethereum-f2c06296c2de4042.d: crates/ethereum/src/lib.rs crates/ethereum/src/block.rs crates/ethereum/src/chain.rs crates/ethereum/src/evm/mod.rs crates/ethereum/src/evm/gas.rs crates/ethereum/src/evm/opcode.rs crates/ethereum/src/evm/vm.rs crates/ethereum/src/gen/mod.rs crates/ethereum/src/gen/era.rs crates/ethereum/src/gen/generator.rs crates/ethereum/src/gen/workload.rs crates/ethereum/src/pool.rs crates/ethereum/src/program.rs crates/ethereum/src/state.rs crates/ethereum/src/transaction.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart_ethereum-f2c06296c2de4042.rmeta: crates/ethereum/src/lib.rs crates/ethereum/src/block.rs crates/ethereum/src/chain.rs crates/ethereum/src/evm/mod.rs crates/ethereum/src/evm/gas.rs crates/ethereum/src/evm/opcode.rs crates/ethereum/src/evm/vm.rs crates/ethereum/src/gen/mod.rs crates/ethereum/src/gen/era.rs crates/ethereum/src/gen/generator.rs crates/ethereum/src/gen/workload.rs crates/ethereum/src/pool.rs crates/ethereum/src/program.rs crates/ethereum/src/state.rs crates/ethereum/src/transaction.rs Cargo.toml

crates/ethereum/src/lib.rs:
crates/ethereum/src/block.rs:
crates/ethereum/src/chain.rs:
crates/ethereum/src/evm/mod.rs:
crates/ethereum/src/evm/gas.rs:
crates/ethereum/src/evm/opcode.rs:
crates/ethereum/src/evm/vm.rs:
crates/ethereum/src/gen/mod.rs:
crates/ethereum/src/gen/era.rs:
crates/ethereum/src/gen/generator.rs:
crates/ethereum/src/gen/workload.rs:
crates/ethereum/src/pool.rs:
crates/ethereum/src/program.rs:
crates/ethereum/src/state.rs:
crates/ethereum/src/transaction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
