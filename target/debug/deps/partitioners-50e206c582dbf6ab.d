/root/repo/target/debug/deps/partitioners-50e206c582dbf6ab.d: crates/bench/benches/partitioners.rs Cargo.toml

/root/repo/target/debug/deps/libpartitioners-50e206c582dbf6ab.rmeta: crates/bench/benches/partitioners.rs Cargo.toml

crates/bench/benches/partitioners.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
