/root/repo/target/debug/deps/proptest-0bcdde7fa431b565.d: third_party/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0bcdde7fa431b565.rmeta: third_party/proptest/src/lib.rs

third_party/proptest/src/lib.rs:
