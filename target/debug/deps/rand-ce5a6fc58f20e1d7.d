/root/repo/target/debug/deps/rand-ce5a6fc58f20e1d7.d: third_party/rand/src/lib.rs

/root/repo/target/debug/deps/librand-ce5a6fc58f20e1d7.rmeta: third_party/rand/src/lib.rs

third_party/rand/src/lib.rs:
