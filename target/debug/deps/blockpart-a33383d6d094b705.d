/root/repo/target/debug/deps/blockpart-a33383d6d094b705.d: src/lib.rs

/root/repo/target/debug/deps/libblockpart-a33383d6d094b705.rmeta: src/lib.rs

src/lib.rs:
