//! Regenerates **Fig. 1**: the growth of the Ethereum blockchain graph in
//! vertices and edges per month, with the fork/attack markers.
//!
//! The paper's shape to look for: roughly exponential growth until the
//! marked attack (an order-of-magnitude vertex jump in Sep–Oct 2016),
//! then steady super-linear growth through 2017.

use blockpart_bench::generate_history;
use blockpart_core::experiments::{fig1_growth, fig1_table};
use blockpart_ethereum::gen::EraTimeline;

fn main() {
    let chain = generate_history();
    let growth = fig1_growth(&chain.log);
    let markers = EraTimeline::fig1_markers();
    println!("## Fig. 1 — graph evolution (vertices & edges per month)\n");
    println!("{}", fig1_table(&growth, &markers).render_ascii());

    // the paper's two headline ratios
    if let (Some(pre), Some(post)) = (
        growth.iter().find(|p| p.label == "09.16"),
        growth.iter().find(|p| p.label == "11.16"),
    ) {
        println!(
            "attack vertex inflation (09.16 -> 11.16): {:.1}x",
            post.nodes as f64 / pre.nodes.max(1) as f64
        );
    }
    if let (Some(first), Some(last)) = (growth.first(), growth.last()) {
        println!(
            "total growth: {} -> {} vertices, {} -> {} edges",
            first.nodes, last.nodes, first.edges, last.edges
        );
    }
}
