/root/repo/target/debug/deps/blockpart_bench-55ed5e34b4c0c414.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libblockpart_bench-55ed5e34b4c0c414.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libblockpart_bench-55ed5e34b4c0c414.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
