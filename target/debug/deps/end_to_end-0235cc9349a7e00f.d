/root/repo/target/debug/deps/end_to_end-0235cc9349a7e00f.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-0235cc9349a7e00f.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
