/root/repo/target/debug/deps/blockpart_types-4eac5c492b2021fb.d: crates/types/src/lib.rs crates/types/src/address.rs crates/types/src/quantity.rs crates/types/src/shard.rs crates/types/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart_types-4eac5c492b2021fb.rmeta: crates/types/src/lib.rs crates/types/src/address.rs crates/types/src/quantity.rs crates/types/src/shard.rs crates/types/src/time.rs Cargo.toml

crates/types/src/lib.rs:
crates/types/src/address.rs:
crates/types/src/quantity.rs:
crates/types/src/shard.rs:
crates/types/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
