/root/repo/target/debug/deps/extensions-c4b284c1c1deee50.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-c4b284c1c1deee50.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
