/root/repo/target/release/deps/blockpart_metrics-de64deef9c5d1841.d: crates/metrics/src/lib.rs crates/metrics/src/calendar.rs crates/metrics/src/concentration.rs crates/metrics/src/histogram.rs crates/metrics/src/report.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs

/root/repo/target/release/deps/libblockpart_metrics-de64deef9c5d1841.rlib: crates/metrics/src/lib.rs crates/metrics/src/calendar.rs crates/metrics/src/concentration.rs crates/metrics/src/histogram.rs crates/metrics/src/report.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs

/root/repo/target/release/deps/libblockpart_metrics-de64deef9c5d1841.rmeta: crates/metrics/src/lib.rs crates/metrics/src/calendar.rs crates/metrics/src/concentration.rs crates/metrics/src/histogram.rs crates/metrics/src/report.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs

crates/metrics/src/lib.rs:
crates/metrics/src/calendar.rs:
crates/metrics/src/concentration.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/report.rs:
crates/metrics/src/series.rs:
crates/metrics/src/summary.rs:
