//! Integration tests for the instrumentation layer: the pipeline's
//! traces must carry the 2PC lifecycle, stay deterministic on the
//! virtual clock, export valid Chrome/Perfetto JSON, and the
//! self-profile must account for essentially all of the wall time.

use blockpart::core::{run_profile, Experiment, ExperimentReport, StrategyRegistry};
use blockpart::ethereum::gen::{ChainGenerator, GeneratorConfig};
use blockpart::ethereum::SyntheticChain;
use blockpart::obs::perfetto;
use blockpart::types::{Duration, ShardCount};

fn history() -> &'static SyntheticChain {
    static H: std::sync::OnceLock<SyntheticChain> = std::sync::OnceLock::new();
    H.get_or_init(|| ChainGenerator::new(GeneratorConfig::test_scale(9)).generate())
}

fn traced_experiment() -> ExperimentReport {
    let registry = StrategyRegistry::with_builtins();
    Experiment::over_chain(history())
        .named_strategies(&registry, "hash,metis")
        .expect("built-ins resolve")
        .shard_counts(vec![ShardCount::TWO])
        .replay(true)
        .trace(true)
        .seed(7)
        .run()
}

#[test]
fn experiment_trace_carries_stages_and_2pc_lifecycle() {
    // from_generator (rather than over_chain) so the pipeline also owns —
    // and traces — the chain-gen stage
    let registry = StrategyRegistry::with_builtins();
    let report = Experiment::from_generator(GeneratorConfig::test_scale(9))
        .named_strategies(&registry, "hash,metis")
        .expect("built-ins resolve")
        .shard_counts(vec![ShardCount::TWO])
        .replay(true)
        .trace(true)
        .seed(7)
        .run();
    let trace = report.trace.as_ref().expect("tracing enabled");

    // the pipeline stages are spans on the wall clock
    let stage_names: Vec<&str> = trace
        .records()
        .iter()
        .filter(|r| r.cat == "stage")
        .map(|r| r.name.as_str())
        .collect();
    for stage in ["chain-gen", "simulate", "replay"] {
        assert!(stage_names.contains(&stage), "missing {stage} stage span");
    }

    // the replay's discrete-event engine emits the full 2PC lifecycle
    let lifecycle: Vec<&str> = trace
        .records()
        .iter()
        .filter(|r| r.cat == "2pc")
        .map(|r| r.name.as_str())
        .collect();
    for event in ["2pc.prepare", "2pc.lock", "2pc.vote", "2pc.commit"] {
        assert!(lifecycle.contains(&event), "missing {event} in trace");
    }
    // workers record execution spans with durations
    assert!(
        trace
            .records()
            .iter()
            .any(|r| r.cat == "exec" && r.dur_us.is_some()),
        "no exec spans in trace"
    );
}

#[test]
fn abort_causes_partition_the_aborted_rounds() {
    let report = traced_experiment();
    for (strategy, k) in [("HASH", ShardCount::TWO), ("METIS", ShardCount::TWO)] {
        let run = report.runtime(strategy, k).expect("replay ran");
        let by_cause: u64 = run.abort_causes.values().sum();
        assert_eq!(
            by_cause, run.aborted_rounds,
            "{strategy}: causes {by_cause} != aborted {}",
            run.aborted_rounds
        );
    }
}

#[test]
fn experiment_exports_validate_and_replay_slice_is_deterministic() {
    let report = traced_experiment();
    let doc = report.trace_perfetto().expect("tracing enabled");
    let events = perfetto::validate(&doc).expect("well-formed trace_event JSON");
    assert!(events > 100, "suspiciously small trace: {events} events");

    let metrics = report.metrics_text().expect("tracing enabled");
    assert!(
        metrics.contains("HASH/k2/shard-0/commits"),
        "metrics not scoped per strategy/k/shard:\n{metrics}"
    );

    // same seed + config: the virtual-clock slice repeats byte-for-byte
    // even though wall-clock spans differ between runs
    let again = traced_experiment();
    let a = perfetto::to_perfetto(&report.trace.expect("tracing enabled").virtual_only()).render();
    let b = perfetto::to_perfetto(&again.trace.expect("tracing enabled").virtual_only()).render();
    assert_eq!(a, b, "virtual-clock trace must be deterministic");
}

#[test]
fn profile_accounts_for_the_wall_time() {
    let registry = StrategyRegistry::with_builtins();
    let report = run_profile(
        &registry,
        "hash,metis",
        &[ShardCount::TWO],
        GeneratorConfig::test_scale(9),
        Duration::hours(6),
        7,
        true,
        true,
    )
    .expect("built-ins resolve");

    assert!(
        report.coverage() >= 0.95,
        "stage spans cover only {:.1}% of {} µs wall",
        report.coverage() * 100.0,
        report.wall_us()
    );
    let table = report.table().render_ascii();
    for row in [
        "chain-gen",
        "partition",
        "simulate",
        "replay",
        "total (wall)",
    ] {
        assert!(table.contains(row), "missing {row} in:\n{table}");
    }
    // the profile trace itself exports as valid Perfetto JSON
    perfetto::validate(&perfetto::to_perfetto(report.trace())).expect("profile trace validates");
}
