/root/repo/target/debug/deps/blockpart_runtime-7b93cd1a0f5c4f22.d: crates/runtime/src/lib.rs crates/runtime/src/clock.rs crates/runtime/src/coordinator.rs crates/runtime/src/event.rs crates/runtime/src/locks.rs crates/runtime/src/net.rs crates/runtime/src/report.rs crates/runtime/src/shard_worker.rs

/root/repo/target/debug/deps/blockpart_runtime-7b93cd1a0f5c4f22: crates/runtime/src/lib.rs crates/runtime/src/clock.rs crates/runtime/src/coordinator.rs crates/runtime/src/event.rs crates/runtime/src/locks.rs crates/runtime/src/net.rs crates/runtime/src/report.rs crates/runtime/src/shard_worker.rs

crates/runtime/src/lib.rs:
crates/runtime/src/clock.rs:
crates/runtime/src/coordinator.rs:
crates/runtime/src/event.rs:
crates/runtime/src/locks.rs:
crates/runtime/src/net.rs:
crates/runtime/src/report.rs:
crates/runtime/src/shard_worker.rs:
