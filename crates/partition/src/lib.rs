//! Graph partitioning algorithms for the blockchain sharding study.
//!
//! Implements the five methods evaluated by Fynn & Pedone (DSN 2018):
//!
//! * [`HashPartitioner`] — `hash(vertex id) mod k`;
//! * [`kl`] — the classic Kernighan–Lin bisection heuristic and the paper's
//!   *distributed* KL variant ([`DistributedKl`]) in which shards propose
//!   gain-positive vertices and an oracle computes a k×k move-probability
//!   matrix that keeps shards balanced;
//! * [`MultilevelPartitioner`] — a from-scratch METIS-style multilevel
//!   k-way partitioner (heavy-edge matching coarsening, greedy-graph-growing
//!   recursive bisection, Fiduccia–Mattheyses boundary refinement). The
//!   METIS, R-METIS and TR-METIS methods of the paper all use this
//!   partitioner on different input graphs.
//!
//! All algorithms consume the symmetric [`Csr`] view from
//! [`blockpart_graph`] and produce a [`Partition`], from which the paper's
//! metrics (Eqs. 1–2: static/dynamic edge-cut and balance) are computed via
//! [`CutMetrics`].
//!
//! # Examples
//!
//! ```
//! use blockpart_graph::Csr;
//! use blockpart_partition::{
//!     CutMetrics, MultilevelConfig, MultilevelPartitioner, PartitionRequest, Partitioner,
//! };
//! use blockpart_types::ShardCount;
//!
//! // Two triangles joined by a single light edge: the obvious bisection
//! // cuts only the bridge.
//! let csr = Csr::from_edges(
//!     6,
//!     &[
//!         (0, 1, 10), (1, 2, 10), (0, 2, 10),
//!         (3, 4, 10), (4, 5, 10), (3, 5, 10),
//!         (2, 3, 1), // bridge
//!     ],
//! );
//! let mut ml = MultilevelPartitioner::new(MultilevelConfig::default());
//! let part = ml.partition(&PartitionRequest::new(&csr, ShardCount::TWO));
//! let m = CutMetrics::compute(&csr, &part);
//! assert_eq!(m.cut_edges, 1);
//! assert!(m.static_balance <= 1.0 + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hashing;
pub mod kl;
mod metrics;
pub mod multilevel;
mod partition;
pub mod streaming;
mod traits;

pub use hashing::HashPartitioner;
pub use kl::DistributedKl;
pub use metrics::CutMetrics;
pub use multilevel::{kway, kway_traced, MultilevelConfig, MultilevelPartitioner, VertexWeighting};
pub use partition::Partition;
pub use streaming::{Fennel, LinearGreedy, RowResult};
pub use traits::{PartitionRequest, Partitioner};

pub use blockpart_graph::Csr;
pub use blockpart_types::{ShardCount, ShardId};
