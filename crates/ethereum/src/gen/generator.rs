//! The chain generator: drives era-shaped transaction batches through the
//! EVM and collects the interaction log.

use std::convert::Infallible;

use blockpart_graph::{Interaction, InteractionLog};
use blockpart_types::{Duration, Gas, Timestamp, Wei};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::block::BlockSummary;
use crate::chain::{Chain, SyntheticChain};
use crate::gen::era::EraTimeline;
use crate::gen::inject::{InjectCtx, TrafficInjector};
use crate::gen::workload::Population;
use crate::program::ContractTemplate;
use crate::state::World;
use crate::transaction::{ExecutedTx, Transaction, TxPayload};

/// Receives the generator's output one block at a time.
///
/// [`ChainGenerator::generate_into`] hands each executed block to the
/// sink as it is produced — the block's summary, its interaction events
/// (time-ordered) and its executed transactions — and drops them before
/// the next block is built. A sink that writes to disk (e.g. the segment
/// store in `blockpart-storage`) therefore bounds generation memory at
/// `O(block)` plus the world state, instead of `O(chain)`.
pub trait BlockSink {
    /// The sink's failure type (`Infallible` for in-memory collectors).
    type Error;

    /// Consumes one executed block.
    fn block(
        &mut self,
        summary: &BlockSummary,
        events: &[Interaction],
        txs: &[ExecutedTx],
    ) -> Result<(), Self::Error>;
}

/// The collecting sink behind [`ChainGenerator::generate`]: accumulates
/// every block back into the resident `SyntheticChain` shape.
struct CollectSink {
    log: InteractionLog,
    txs: Vec<ExecutedTx>,
}

impl BlockSink for CollectSink {
    type Error = Infallible;

    fn block(
        &mut self,
        _summary: &BlockSummary,
        events: &[Interaction],
        txs: &[ExecutedTx],
    ) -> Result<(), Infallible> {
        for &e in events {
            self.log.push(e);
        }
        self.txs.extend(txs.iter().cloned());
        Ok(())
    }
}

/// Configuration for [`ChainGenerator`].
///
/// `scale` multiplies the timeline's full-scale transaction rates: `1.0`
/// reproduces tens of millions of events (hours of CPU, gigabytes of log);
/// the canned constructors pick sensible sizes for tests, demos and
/// benchmarks.
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::gen::GeneratorConfig;
///
/// let cfg = GeneratorConfig::test_scale(1);
/// assert!(cfg.scale > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// RNG seed: the same seed always produces the same chain.
    pub seed: u64,
    /// Fraction of the full-scale transaction rate to generate.
    pub scale: f64,
    /// The era timeline to replay.
    pub timeline: EraTimeline,
    /// Simulated time per generated block. The default of 4 hours matches
    /// the paper's measurement windows.
    pub block_interval: Duration,
    /// Initial balance handed to each new user.
    pub endowment: Wei,
}

impl GeneratorConfig {
    /// Full 30-month history at a scale suitable for interactive demos
    /// (roughly 10⁵ transactions, a couple of seconds of CPU).
    pub fn demo_scale(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            scale: 1.2e-3,
            timeline: EraTimeline::ethereum_history(),
            block_interval: Duration::hours(4),
            endowment: Wei::new(1_000_000_000),
        }
    }

    /// Full 30-month history at benchmark scale (roughly 10⁶
    /// transactions).
    pub fn bench_scale(seed: u64) -> Self {
        GeneratorConfig {
            scale: 1.0e-2,
            ..GeneratorConfig::demo_scale(seed)
        }
    }

    /// A 14-day two-era toy history for unit tests (a few thousand
    /// transactions, milliseconds).
    pub fn test_scale(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            scale: 0.02,
            timeline: EraTimeline::short_test(),
            block_interval: Duration::hours(4),
            endowment: Wei::new(1_000_000_000),
        }
    }

    /// Overrides the scale.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Overrides the timeline.
    pub fn with_timeline(mut self, timeline: EraTimeline) -> Self {
        self.timeline = timeline;
        self
    }
}

/// Generates a [`SyntheticChain`] by sampling era-appropriate transactions
/// and executing them block by block.
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::gen::{ChainGenerator, GeneratorConfig};
///
/// let s1 = ChainGenerator::new(GeneratorConfig::test_scale(3)).generate();
/// let s2 = ChainGenerator::new(GeneratorConfig::test_scale(3)).generate();
/// assert_eq!(s1.log.len(), s2.log.len()); // fully deterministic
/// ```
#[derive(Debug)]
pub struct ChainGenerator {
    config: GeneratorConfig,
    rng: SmallRng,
    population: Population,
    injectors: Vec<Box<dyn TrafficInjector>>,
}

/// Deferred bookkeeping for transactions whose effects are only known
/// after execution.
enum Post {
    None,
    /// Register contracts created by this transaction; for crowdsales,
    /// wire slot 0/1 to a real beneficiary and token.
    Deploy {
        beneficiary: blockpart_types::Address,
        token: Option<blockpart_types::Address>,
    },
}

impl ChainGenerator {
    /// Creates a generator.
    pub fn new(config: GeneratorConfig) -> Self {
        let rng = SmallRng::seed_from_u64(config.seed);
        ChainGenerator {
            config,
            rng,
            population: Population::new(),
            injectors: Vec::new(),
        }
    }

    /// Adds an adversarial traffic injector; its transactions are
    /// appended to each block after the organic workload (injectors run
    /// in registration order, so the output stays deterministic).
    pub fn with_injector(mut self, injector: Box<dyn TrafficInjector>) -> Self {
        self.injectors.push(injector);
        self
    }

    /// Runs the whole timeline and returns the chain plus its log.
    ///
    /// Memory contract: `O(chain)` — the log and transaction list are
    /// collected resident. At large `--scale`, stream through
    /// [`generate_into`](Self::generate_into) instead.
    pub fn generate(self) -> SyntheticChain {
        let mut sink = CollectSink {
            log: InteractionLog::new(),
            txs: Vec::new(),
        };
        let chain = match self.generate_into(&mut sink) {
            Ok(chain) => chain,
            Err(infallible) => match infallible {},
        };
        SyntheticChain {
            chain,
            log: sink.log,
            txs: sink.txs,
        }
    }

    /// Runs the whole timeline, handing each executed block to `sink` as
    /// it is produced, and returns the final [`Chain`] (world state plus
    /// block summaries).
    ///
    /// Memory contract: `O(block)` transient state per block plus the
    /// world and population — the whole-chain log and transaction vectors
    /// are never materialized here. [`generate`](Self::generate) is this
    /// method run into a collecting sink, so for any given config the
    /// block/event/transaction sequence a sink observes is byte-identical
    /// to the resident `SyntheticChain` fields.
    pub fn generate_into<S: BlockSink>(mut self, sink: &mut S) -> Result<Chain, S::Error> {
        let mut chain = Chain::new(self.config.seed ^ 0xb10c);

        self.genesis(chain.world_mut());

        let end = self.config.timeline.end();
        let step = self.config.block_interval;
        assert!(!step.is_zero(), "block interval must be non-zero");

        let mut t = Timestamp::EPOCH;
        let mut carry = 0.0f64;
        let mut blocks_since_compact = 0usize;
        let mut eip150_applied = false;
        let mut block_txs: Vec<ExecutedTx> = Vec::new();
        while t < end {
            if !eip150_applied && t >= EraTimeline::eip150_activation() {
                chain.set_gas_schedule(crate::evm::GasSchedule::eip150());
                eip150_applied = true;
            }
            let rate = self.config.timeline.rate_at(t) * self.config.scale;
            let expected = rate * step.as_secs() as f64 / 86_400.0 + carry;
            let n = expected.floor() as usize;
            carry = expected - n as f64;

            let mut txs = Vec::with_capacity(n);
            let mut posts = Vec::with_capacity(n);
            for _ in 0..n {
                let (tx, post) = self.build_tx(chain.world_mut(), t);
                txs.push(tx);
                posts.push(post);
            }
            for injector in &mut self.injectors {
                let mut ctx = InjectCtx {
                    world: chain.world_mut(),
                    population: &self.population,
                    now: t,
                    organic: n,
                };
                for tx in injector.inject(&mut ctx) {
                    txs.push(tx);
                    posts.push(Post::None);
                }
            }
            let submitted = txs.clone();
            // A fresh per-block log: `push` order within the block is the
            // same as appending to a whole-chain log, so collecting sinks
            // reconstruct the resident log exactly.
            let mut block_log = InteractionLog::new();
            block_txs.clear();
            let (summary, outcomes) = chain.apply_block_with_outcomes(t, txs, &mut block_log);
            for ((outcome, post), tx) in outcomes.into_iter().zip(&posts).zip(&submitted) {
                self.register_created(chain.world_mut(), &outcome.receipt, post);
                block_txs.push(ExecutedTx::with_access(
                    t,
                    *tx,
                    &outcome.receipt,
                    outcome.reads,
                    outcome.writes,
                ));
            }
            sink.block(&summary, block_log.events(), &block_txs)?;

            blocks_since_compact += 1;
            if blocks_since_compact >= 128 {
                self.population.compact(2_000_000);
                blocks_since_compact = 0;
            }
            t += step;
        }
        Ok(chain)
    }

    /// Seeds the world with an initial population and one contract of each
    /// template so every category is serviceable from block one.
    fn genesis(&mut self, world: &mut World) {
        let initial_users = 8 + (400.0 * self.config.scale.sqrt()) as usize;
        for _ in 0..initial_users {
            let u = world.new_user(self.config.endowment);
            self.population.add_user(u);
        }
        let owner = self
            .population
            .sample_user_uniform(&mut self.rng)
            .expect("genesis users exist");
        let token = world.create_contract(ContractTemplate::Token, owner, owner.index());
        self.population.add_contract(ContractTemplate::Token, token);
        for template in [
            ContractTemplate::Wallet,
            ContractTemplate::Game,
            ContractTemplate::Registry,
        ] {
            let c = world.create_contract(template, owner, owner.index());
            self.population.add_contract(template, c);
        }
        let factory = world.create_contract(
            ContractTemplate::Factory,
            owner,
            ContractTemplate::Token.id(),
        );
        self.population
            .add_contract(ContractTemplate::Factory, factory);
        let sale = world.create_contract(ContractTemplate::Crowdsale, owner, owner.index());
        world.storage_store(sale, 0, owner.index());
        world.storage_store(sale, 1, token.index());
        self.population
            .add_contract(ContractTemplate::Crowdsale, sale);
    }

    /// Samples one transaction according to the era mix at `t`.
    fn build_tx(&mut self, world: &mut World, t: Timestamp) -> (Transaction, Post) {
        let mix = self.config.timeline.era_at(t).mix;
        let roll = self.rng.gen::<f64>() * mix.total();
        let gas = Gas::new(400_000);

        let mut acc = mix.attack;
        if roll < acc {
            return (self.attack_tx(world, gas), Post::None);
        }
        acc += mix.transfer;
        if roll < acc {
            return (self.transfer_tx(world, gas), Post::None);
        }
        acc += mix.token;
        if roll < acc {
            if let Some(tx) = self.contract_call_tx(ContractTemplate::Token, world, gas) {
                return (tx, Post::None);
            }
        }
        acc += mix.ico;
        if roll < acc {
            if let Some(tx) = self.ico_tx(world, gas) {
                return (tx, Post::None);
            }
        }
        acc += mix.game;
        if roll < acc {
            if let Some(tx) = self.contract_call_tx(ContractTemplate::Game, world, gas) {
                return (tx, Post::None);
            }
        }
        acc += mix.wallet;
        if roll < acc {
            if let Some(tx) = self.contract_call_tx(ContractTemplate::Wallet, world, gas) {
                return (tx, Post::None);
            }
        }
        acc += mix.factory;
        if roll < acc {
            if let Some(tx) = self.contract_call_tx(ContractTemplate::Factory, world, gas) {
                return (tx, Post::None);
            }
        }
        acc += mix.registry;
        if roll < acc {
            if let Some(tx) = self.contract_call_tx(ContractTemplate::Registry, world, gas) {
                return (tx, Post::None);
            }
        }
        // deploy (also the fallback when a sampled category has no
        // contract yet)
        self.deploy_tx(world, gas)
    }

    fn transfer_tx(&mut self, world: &mut World, gas: Gas) -> Transaction {
        let from = self.sample_or_new_user(world, 0.05);
        let to = self.sample_or_new_user(world, 0.15);
        self.population.note_user_activity(from);
        self.population.note_user_activity(to);
        Transaction {
            from,
            to,
            value: Wei::new(self.rng.gen_range(1..1_000)),
            gas_limit: gas,
            payload: TxPayload::Transfer,
        }
    }

    /// One unit of the 2016 spam: a fresh, never-reused account touches
    /// either another fresh account or one of a handful of sink addresses.
    fn attack_tx(&mut self, world: &mut World, gas: Gas) -> Transaction {
        let from = world.new_user(Wei::new(1_000));
        let to = if self.rng.gen_bool(0.5) {
            world.new_user(Wei::ZERO)
        } else {
            // a sink: sample a real user so the spam also attaches noise
            // edges to the organic graph, as EXTCODESIZE spam did
            self.sample_or_new_user(world, 0.0)
        };
        // deliberately NOT registered in the population: used once, dead
        // forever — the METIS balance anomaly of the paper.
        Transaction {
            from,
            to,
            value: Wei::new(1),
            gas_limit: gas,
            payload: TxPayload::Transfer,
        }
    }

    fn contract_call_tx(
        &mut self,
        template: ContractTemplate,
        world: &mut World,
        gas: Gas,
    ) -> Option<Transaction> {
        let contract = self.population.sample_contract(template, &mut self.rng)?;
        let from = self.sample_or_new_user(world, 0.05);
        self.population.note_user_activity(from);
        self.population.note_contract_activity(template, contract);
        let arg = match template {
            // token transfer recipient / wallet destination: a real user
            ContractTemplate::Token | ContractTemplate::Wallet => {
                let dest = self.sample_or_new_user(world, 0.10);
                self.population.note_user_activity(dest);
                dest.index()
            }
            ContractTemplate::Registry => self.rng.gen::<u64>() | 0x8000_0000_0000_0000,
            _ => 0,
        };
        let value = match template {
            ContractTemplate::Game => self.rng.gen_range(10..500),
            ContractTemplate::Wallet => self.rng.gen_range(100..5_000),
            _ => 0,
        };
        Some(Transaction {
            from,
            to: contract,
            value: Wei::new(value),
            gas_limit: gas,
            payload: TxPayload::Call { arg },
        })
    }

    fn ico_tx(&mut self, world: &mut World, gas: Gas) -> Option<Transaction> {
        let sale = self
            .population
            .sample_contract_recent_biased(ContractTemplate::Crowdsale, &mut self.rng)?;
        let from = self.sample_or_new_user(world, 0.20);
        self.population.note_user_activity(from);
        self.population
            .note_contract_activity(ContractTemplate::Crowdsale, sale);
        Some(Transaction {
            from,
            to: sale,
            value: Wei::new(self.rng.gen_range(100..50_000)),
            gas_limit: gas,
            payload: TxPayload::Call { arg: 0 },
        })
    }

    fn deploy_tx(&mut self, world: &mut World, gas: Gas) -> (Transaction, Post) {
        let from = self.sample_or_new_user(world, 0.05);
        self.population.note_user_activity(from);
        let template = *pick_weighted(
            &mut self.rng,
            &[
                (ContractTemplate::Token, 30),
                (ContractTemplate::Crowdsale, 22),
                (ContractTemplate::Wallet, 20),
                (ContractTemplate::Game, 12),
                (ContractTemplate::Registry, 10),
                (ContractTemplate::Factory, 6),
            ],
        );
        let beneficiary = self.sample_or_new_user(world, 0.0);
        let token = self
            .population
            .sample_contract(ContractTemplate::Token, &mut self.rng);
        let arg = match template {
            ContractTemplate::Factory => pick_weighted(
                &mut self.rng,
                &[
                    (ContractTemplate::Token, 40),
                    (ContractTemplate::Registry, 30),
                    (ContractTemplate::Game, 30),
                ],
            )
            .id(),
            _ => beneficiary.index(),
        };
        (
            Transaction {
                from,
                to: blockpart_types::Address::ZERO,
                value: Wei::new(self.rng.gen_range(0..100)),
                gas_limit: gas,
                payload: TxPayload::Create {
                    template: template.id(),
                    arg,
                },
            },
            Post::Deploy { beneficiary, token },
        )
    }

    /// Registers contracts created during execution (deploy transactions
    /// and factory children) and wires fresh crowdsales.
    fn register_created(&mut self, world: &mut World, receipt: &crate::Receipt, post: &Post) {
        for &created in &receipt.created {
            let Some(state) = world.contract(created) else {
                continue;
            };
            let template = state.template;
            self.population.add_contract(template, created);
            if let (ContractTemplate::Crowdsale, Post::Deploy { beneficiary, token }) =
                (template, post)
            {
                world.storage_store(created, 0, beneficiary.index());
                if let Some(token) = token {
                    world.storage_store(created, 1, token.index());
                }
            }
        }
    }

    /// Samples an existing user by activity, or mints a new one with
    /// probability `p_new` (organic population growth).
    fn sample_or_new_user(&mut self, world: &mut World, p_new: f64) -> blockpart_types::Address {
        if !self.rng.gen_bool(p_new.clamp(0.0, 1.0).min(0.999_999)) {
            if let Some(u) = self.population.sample_user(&mut self.rng) {
                return u;
            }
        }
        let u = world.new_user(self.config.endowment);
        self.population.add_user(u);
        u
    }
}

fn pick_weighted<'a, T>(rng: &mut SmallRng, options: &'a [(T, u32)]) -> &'a T {
    let total: u32 = options.iter().map(|&(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for (item, w) in options {
        if roll < *w {
            return item;
        }
        roll -= w;
    }
    &options.last().expect("non-empty options").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpart_types::AccountKind;
    use std::collections::HashSet;

    fn small() -> SyntheticChain {
        ChainGenerator::new(GeneratorConfig::test_scale(7)).generate()
    }

    #[test]
    fn generates_nontrivial_chain() {
        let s = small();
        assert!(
            s.chain.block_count() > 50,
            "blocks: {}",
            s.chain.block_count()
        );
        assert!(s.log.len() > 2_000, "events: {}", s.log.len());
        assert!(s.chain.world().contract_count() > 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ChainGenerator::new(GeneratorConfig::test_scale(9)).generate();
        let b = ChainGenerator::new(GeneratorConfig::test_scale(9)).generate();
        assert_eq!(a.log.events(), b.log.events());
        assert_eq!(a.chain.tx_count(), b.chain.tx_count());
    }

    #[test]
    fn streamed_blocks_match_collected_chain() {
        struct Probe {
            events: Vec<Interaction>,
            txs: usize,
            blocks: Vec<blockpart_types::BlockNumber>,
        }
        impl BlockSink for Probe {
            type Error = Infallible;
            fn block(
                &mut self,
                summary: &BlockSummary,
                events: &[Interaction],
                txs: &[ExecutedTx],
            ) -> Result<(), Infallible> {
                self.events.extend_from_slice(events);
                self.txs += txs.len();
                self.blocks.push(summary.number);
                Ok(())
            }
        }
        let collected = ChainGenerator::new(GeneratorConfig::test_scale(9)).generate();
        let mut probe = Probe {
            events: Vec::new(),
            txs: 0,
            blocks: Vec::new(),
        };
        let chain = ChainGenerator::new(GeneratorConfig::test_scale(9))
            .generate_into(&mut probe)
            .unwrap();
        assert_eq!(probe.events, collected.log.events());
        assert_eq!(probe.txs, collected.txs.len());
        assert_eq!(chain.tx_count(), collected.chain.tx_count());
        assert_eq!(probe.blocks.len(), collected.chain.block_count());
        assert!(probe.blocks.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChainGenerator::new(GeneratorConfig::test_scale(1)).generate();
        let b = ChainGenerator::new(GeneratorConfig::test_scale(2)).generate();
        assert_ne!(a.log.events(), b.log.events());
    }

    #[test]
    fn log_is_time_ordered_and_bounded() {
        let s = small();
        let end = GeneratorConfig::test_scale(7).timeline.end();
        let mut last = Timestamp::EPOCH;
        for e in s.log.events() {
            assert!(e.time >= last);
            assert!(e.time < end);
            last = e.time;
        }
    }

    #[test]
    fn graph_is_heavy_tailed() {
        let s = small();
        let g = s
            .log
            .graph_until(GeneratorConfig::test_scale(7).timeline.end());
        let csr = g.to_csr();
        let stats = blockpart_graph::algos::DegreeStats::of(&csr);
        // hubs exist: max degree far above the mean
        assert!(
            stats.max as f64 > stats.mean * 20.0,
            "max {} mean {}",
            stats.max,
            stats.mean
        );
    }

    #[test]
    fn contracts_appear_in_log() {
        let s = small();
        let has_contract_edge = s
            .log
            .events()
            .iter()
            .any(|e| e.to_kind == AccountKind::Contract);
        let has_internal_edge = s
            .log
            .events()
            .iter()
            .any(|e| e.from_kind == AccountKind::Contract);
        assert!(has_contract_edge, "no user->contract edges");
        assert!(has_internal_edge, "no contract-originated edges");
    }

    #[test]
    fn scale_controls_volume() {
        let small =
            ChainGenerator::new(GeneratorConfig::test_scale(5).with_scale(0.005)).generate();
        let large = ChainGenerator::new(GeneratorConfig::test_scale(5).with_scale(0.02)).generate();
        assert!(large.log.len() > 2 * small.log.len());
    }

    #[test]
    fn attack_era_inflates_vertex_count() {
        // a custom timeline: organic era then attack era, same rates
        use crate::gen::era::{Era, TxMix};
        let tl = EraTimeline::new(vec![
            Era {
                name: "organic",
                start: Timestamp::EPOCH,
                end: Timestamp::from_secs(5 * 86_400),
                rate_start: 20_000.0,
                rate_end: 20_000.0,
                mix: TxMix::homestead(),
            },
            Era {
                name: "attack",
                start: Timestamp::from_secs(5 * 86_400),
                end: Timestamp::from_secs(10 * 86_400),
                rate_start: 20_000.0,
                rate_end: 20_000.0,
                mix: TxMix::attack(),
            },
        ]);
        let cfg = GeneratorConfig {
            seed: 11,
            scale: 0.02,
            timeline: tl,
            block_interval: Duration::hours(4),
            endowment: Wei::new(1_000_000),
        };
        let s = ChainGenerator::new(cfg).generate();
        let mid = Timestamp::from_secs(5 * 86_400);
        let organic: HashSet<_> = s
            .log
            .window(Timestamp::EPOCH, mid)
            .iter()
            .flat_map(|e| [e.from, e.to])
            .collect();
        let attack: HashSet<_> = s
            .log
            .window(mid, Timestamp::from_secs(10 * 86_400))
            .iter()
            .flat_map(|e| [e.from, e.to])
            .collect();
        // same tx volume, but the attack mints far more distinct vertices
        assert!(
            attack.len() as f64 > organic.len() as f64 * 2.0,
            "organic {} attack {}",
            organic.len(),
            attack.len()
        );
    }
}
