/root/repo/target/debug/deps/simulator-a23a3c4859c6b742.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-a23a3c4859c6b742.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
