/root/repo/target/debug/deps/end_to_end-ec7f8abf88d8f448.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ec7f8abf88d8f448: tests/end_to_end.rs

tests/end_to_end.rs:
