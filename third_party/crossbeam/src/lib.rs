//! Offline shim for the `crossbeam` API subset the workspace uses:
//! `crossbeam::thread::scope` (delegating to `std::thread::scope`,
//! available since Rust 1.63) and `crossbeam::deque` work-stealing
//! queues (mutex-backed — correct and API-compatible, not lock-free).

#![forbid(unsafe_code)]

pub mod deque {
    //! Work-stealing queues with crossbeam's calling convention.
    //!
    //! [`Worker`] is an owner-facing queue handle; [`Stealer`] handles
    //! (cloneable, `Send`) let other threads take tasks from it. The shim
    //! backs both with one `Mutex<VecDeque>` per queue: contention-free
    //! enough for coarse task granularity (the workspace schedules whole
    //! experiment runs, not microtasks), and never returns the lock-free
    //! implementation's transient [`Steal::Retry`].

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// The result of a steal attempt.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and may be retried (never produced by
        /// this shim; kept so callers written against crossbeam compile).
        Retry,
    }

    impl<T> Steal<T> {
        /// Returns the stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// A FIFO work queue owned by one worker thread.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates an empty FIFO queue.
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the queue.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("deque poisoned").push_back(task);
        }

        /// Pops the next task in FIFO order.
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().expect("deque poisoned").pop_front()
        }

        /// Returns `true` if the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("deque poisoned").is_empty()
        }

        /// Creates a stealer handle for other threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Default for Worker<T> {
        fn default() -> Self {
            Worker::new_fifo()
        }
    }

    /// A cloneable handle that steals tasks from a [`Worker`]'s queue.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Attempts to steal one task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("deque poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A shared FIFO injector queue (crossbeam's global queue).
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Attempts to steal one task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Returns `true` if the injector is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's calling convention.

    use std::any::Any;

    /// A scope handle whose `spawn` closures receive the scope again, as
    /// crossbeam's do.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives a scope handle it
        /// may use for nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; joins them all before returning.
    ///
    /// Unlike crossbeam (which collects panics into the `Err` variant),
    /// `std::thread::scope` propagates child panics, so the `Err` case is
    /// never produced — callers' `.expect(...)` is a no-op.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Steal, Worker};

    #[test]
    fn deque_fifo_and_steal() {
        let w: Worker<u32> = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(s.steal(), Steal::Success(2));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Empty);
        assert!(w.is_empty());
    }

    #[test]
    fn stealers_share_across_threads() {
        let w: Worker<u64> = Worker::new_fifo();
        for i in 0..100 {
            w.push(i);
        }
        let stealers: Vec<_> = (0..4).map(|_| w.stealer()).collect();
        let total = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|scope| {
            for s in &stealers {
                let total = &total;
                scope.spawn(move |_| {
                    while let Steal::Success(v) = s.steal() {
                        total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), (0..100).sum::<u64>());
    }

    #[test]
    fn injector_roundtrip() {
        let inj: super::deque::Injector<u8> = super::deque::Injector::new();
        assert!(inj.is_empty());
        inj.push(9);
        assert_eq!(inj.steal(), Steal::Success(9));
        assert_eq!(inj.steal(), Steal::Empty);
    }

    #[test]
    fn scope_joins_and_collects() {
        let data = vec![1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        super::thread::scope(|scope| {
            for (slot, &v) in out.iter_mut().zip(&data) {
                scope.spawn(move |_| {
                    *slot = v * 10;
                });
            }
        })
        .unwrap();
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let mut a = 0u32;
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| ()).join().unwrap();
            });
            a = 1;
        })
        .unwrap();
        assert_eq!(a, 1);
    }
}
