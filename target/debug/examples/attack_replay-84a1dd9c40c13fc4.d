/root/repo/target/debug/examples/attack_replay-84a1dd9c40c13fc4.d: examples/attack_replay.rs Cargo.toml

/root/repo/target/debug/examples/libattack_replay-84a1dd9c40c13fc4.rmeta: examples/attack_replay.rs Cargo.toml

examples/attack_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
