//! A transaction pool (mempool) with gas-price priority ordering.
//!
//! Miners include transactions by expected fee per gas (§II-A of the
//! paper: "Miners include transactions in a block based on their estimates
//! of the transaction cost and the amount the user is willing to pay").
//! The pool models that selection: submissions carry a gas price, and
//! blocks are drafted highest-price-first under a block gas limit.

use std::collections::BinaryHeap;

use blockpart_types::{Gas, Wei};
use serde::{Deserialize, Serialize};

use crate::transaction::Transaction;

/// A pending transaction with its bid.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct Pending {
    /// Fee per gas unit offered.
    gas_price: Wei,
    /// Submission sequence number — ties break FIFO so ordering is total
    /// and deterministic.
    seq: u64,
    tx: Transaction,
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // max-heap on price, then *earlier* submission first
        self.gas_price
            .cmp(&other.gas_price)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A gas-price-ordered mempool.
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::{Transaction, TxPayload, TxPool};
/// use blockpart_types::{Address, Gas, Wei};
///
/// let tx = |price: u64| {
///     (Transaction {
///         from: Address::from_index(1),
///         to: Address::from_index(2),
///         value: Wei::new(1),
///         gas_limit: Gas::new(21_000),
///         payload: TxPayload::Transfer,
///     }, Wei::new(price))
/// };
/// let mut pool = TxPool::new();
/// for (t, p) in [tx(5), tx(50), tx(20)] {
///     pool.submit(t, p);
/// }
/// let block = pool.draft_block(Gas::new(42_000)); // room for two
/// assert_eq!(block.len(), 2); // the 50 and the 20
/// assert_eq!(pool.len(), 1);  // the 5 stays pending
/// ```
#[derive(Clone, Debug, Default)]
pub struct TxPool {
    heap: BinaryHeap<Pending>,
    next_seq: u64,
}

impl TxPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        TxPool::default()
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Submits a transaction with a fee bid.
    pub fn submit(&mut self, tx: Transaction, gas_price: Wei) {
        self.heap.push(Pending {
            gas_price,
            seq: self.next_seq,
            tx,
        });
        self.next_seq += 1;
    }

    /// The highest bid currently pending, if any.
    pub fn best_price(&self) -> Option<Wei> {
        self.heap.peek().map(|p| p.gas_price)
    }

    /// Drafts a block: pops transactions highest-price-first while their
    /// `gas_limit`s fit under `block_gas_limit` (the greedy knapsack
    /// miners actually run). Transactions that do not fit stay pending.
    pub fn draft_block(&mut self, block_gas_limit: Gas) -> Vec<Transaction> {
        let mut block = Vec::new();
        let mut used = Gas::ZERO;
        let mut skipped: Vec<Pending> = Vec::new();
        while let Some(p) = self.heap.pop() {
            if used + p.tx.gas_limit <= block_gas_limit {
                used += p.tx.gas_limit;
                block.push(p.tx);
            } else {
                skipped.push(p);
                // keep scanning: a cheaper-but-smaller tx may still fit
                if skipped.len() > 64 {
                    break;
                }
            }
        }
        for p in skipped {
            self.heap.push(p);
        }
        block
    }

    /// Discards every pending transaction whose bid is below
    /// `floor` (fee-market spam eviction). Returns how many were dropped.
    pub fn evict_below(&mut self, floor: Wei) -> usize {
        let before = self.heap.len();
        let kept: Vec<Pending> = self.heap.drain().filter(|p| p.gas_price >= floor).collect();
        self.heap = kept.into();
        before - self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::TxPayload;
    use blockpart_types::Address;

    fn tx(gas: u64) -> Transaction {
        Transaction {
            from: Address::from_index(1),
            to: Address::from_index(2),
            value: Wei::new(1),
            gas_limit: Gas::new(gas),
            payload: TxPayload::Transfer,
        }
    }

    #[test]
    fn orders_by_price_then_fifo() {
        let mut pool = TxPool::new();
        pool.submit(tx(21_000), Wei::new(10)); // seq 0
        pool.submit(tx(21_000), Wei::new(30));
        pool.submit(tx(21_000), Wei::new(10)); // seq 2, same price as seq 0
        let block = pool.draft_block(Gas::new(63_000));
        assert_eq!(block.len(), 3);
        // verify drain order via repeated single-slot drafts
        let mut pool = TxPool::new();
        pool.submit(tx(21_000), Wei::new(10));
        pool.submit(tx(21_000), Wei::new(30));
        assert_eq!(pool.best_price(), Some(Wei::new(30)));
        let first = pool.draft_block(Gas::new(21_000));
        assert_eq!(first.len(), 1);
        assert_eq!(pool.best_price(), Some(Wei::new(10)));
    }

    #[test]
    fn smaller_tx_fills_leftover_gas() {
        let mut pool = TxPool::new();
        pool.submit(tx(100_000), Wei::new(100)); // best bid, too big
        pool.submit(tx(21_000), Wei::new(1)); // cheap but fits
        let block = pool.draft_block(Gas::new(50_000));
        assert_eq!(block.len(), 1);
        assert_eq!(block[0].gas_limit, Gas::new(21_000));
        assert_eq!(pool.len(), 1); // the big one stays
    }

    #[test]
    fn eviction_drops_cheap_bids() {
        let mut pool = TxPool::new();
        for price in [1u64, 5, 10, 50] {
            pool.submit(tx(21_000), Wei::new(price));
        }
        let dropped = pool.evict_below(Wei::new(10));
        assert_eq!(dropped, 2);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.best_price(), Some(Wei::new(50)));
    }

    #[test]
    fn empty_pool_behaviour() {
        let mut pool = TxPool::new();
        assert!(pool.is_empty());
        assert_eq!(pool.best_price(), None);
        assert!(pool.draft_block(Gas::new(1_000_000)).is_empty());
        assert_eq!(pool.evict_below(Wei::new(1)), 0);
    }

    #[test]
    fn draft_is_deterministic() {
        let build = || {
            let mut pool = TxPool::new();
            for (i, price) in [3u64, 9, 9, 1, 7].iter().enumerate() {
                pool.submit(tx(21_000 + i as u64), Wei::new(*price));
            }
            pool.draft_block(Gas::new(80_000))
        };
        assert_eq!(build(), build());
    }
}
