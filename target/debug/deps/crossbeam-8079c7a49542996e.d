/root/repo/target/debug/deps/crossbeam-8079c7a49542996e.d: third_party/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-8079c7a49542996e.rlib: third_party/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-8079c7a49542996e.rmeta: third_party/crossbeam/src/lib.rs

third_party/crossbeam/src/lib.rs:
