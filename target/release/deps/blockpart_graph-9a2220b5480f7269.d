/root/repo/target/release/deps/blockpart_graph-9a2220b5480f7269.d: crates/graph/src/lib.rs crates/graph/src/algos.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/event.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/node.rs

/root/repo/target/release/deps/libblockpart_graph-9a2220b5480f7269.rlib: crates/graph/src/lib.rs crates/graph/src/algos.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/event.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/node.rs

/root/repo/target/release/deps/libblockpart_graph-9a2220b5480f7269.rmeta: crates/graph/src/lib.rs crates/graph/src/algos.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/event.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/node.rs

crates/graph/src/lib.rs:
crates/graph/src/algos.rs:
crates/graph/src/builder.rs:
crates/graph/src/csr.rs:
crates/graph/src/event.rs:
crates/graph/src/graph.rs:
crates/graph/src/io.rs:
crates/graph/src/node.rs:
