//! Worker-count resolution shared by the parallel hot paths.
//!
//! Every parallel API in the workspace takes a `workers: usize` argument
//! where `0` means "decide for me". The decision is made here so the
//! whole workspace honours the same override knob:
//!
//! 1. a positive explicit request wins;
//! 2. otherwise the `BLOCKPART_THREADS` environment variable, if set to a
//!    positive integer;
//! 3. otherwise [`std::thread::available_parallelism`].
//!
//! All parallel algorithms in the workspace are *deterministic in their
//! worker count*: any value returned here produces byte-identical output,
//! so the knob trades only wall-clock time, never results.

/// Resolves a requested worker count (`0` = automatic) to a concrete
/// positive count.
///
/// # Examples
///
/// ```
/// use blockpart_types::resolve_workers;
///
/// assert_eq!(resolve_workers(3), 3);
/// assert!(resolve_workers(0) >= 1);
/// ```
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Some(n) = std::env::var("BLOCKPART_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `n` items into at most `workers` contiguous ranges of
/// near-equal length (the canonical row-ownership scheme of the parallel
/// passes). Returns no empty ranges; fewer than `workers` ranges when
/// `n < workers`.
///
/// # Examples
///
/// ```
/// use blockpart_types::split_ranges;
///
/// assert_eq!(split_ranges(5, 2), vec![0..3, 3..5]);
/// assert_eq!(split_ranges(2, 8).len(), 2);
/// assert!(split_ranges(0, 4).is_empty());
/// ```
pub fn split_ranges(n: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    let workers = workers.max(1).min(n);
    if n == 0 {
        return Vec::new();
    }
    let base = n / workers;
    let extra = n % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for i in 0..workers {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_request_wins() {
        assert_eq!(resolve_workers(7), 7);
    }

    #[test]
    fn auto_is_positive() {
        assert!(resolve_workers(0) >= 1);
    }

    #[test]
    fn ranges_cover_exactly() {
        for n in [0usize, 1, 2, 5, 16, 97] {
            for w in [1usize, 2, 3, 8] {
                let ranges = split_ranges(n, w);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, n);
                assert!(ranges.len() <= w);
            }
        }
    }

    #[test]
    fn ranges_are_balanced() {
        let ranges = split_ranges(10, 3);
        let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![4, 3, 3]);
    }
}
