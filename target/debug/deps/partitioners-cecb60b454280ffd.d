/root/repo/target/debug/deps/partitioners-cecb60b454280ffd.d: crates/bench/benches/partitioners.rs Cargo.toml

/root/repo/target/debug/deps/libpartitioners-cecb60b454280ffd.rmeta: crates/bench/benches/partitioners.rs Cargo.toml

crates/bench/benches/partitioners.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
