//! Shard identifiers and shard-count configuration.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies one shard (partition) of the system.
///
/// # Examples
///
/// ```
/// use blockpart_types::ShardId;
///
/// let s = ShardId::new(3);
/// assert_eq!(s.as_u16(), 3);
/// assert_eq!(s.as_usize(), 3);
/// assert_eq!(s.to_string(), "shard-3");
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ShardId(u16);

impl ShardId {
    /// Creates a shard id from its index.
    pub const fn new(index: u16) -> Self {
        ShardId(index)
    }

    /// The shard index as `u16`.
    pub const fn as_u16(self) -> u16 {
        self.0
    }

    /// The shard index as `usize`, convenient for indexing vectors.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard-{}", self.0)
    }
}

impl From<u16> for ShardId {
    fn from(index: u16) -> Self {
        ShardId(index)
    }
}

/// The number of shards in a configuration (the paper's `k`).
///
/// Guaranteed non-zero by construction, which lets downstream code divide
/// by `k` without checking.
///
/// # Examples
///
/// ```
/// use blockpart_types::{ShardCount, ShardId};
///
/// let k = ShardCount::new(4).unwrap();
/// assert_eq!(k.get(), 4);
/// let shards: Vec<ShardId> = k.iter().collect();
/// assert_eq!(shards.len(), 4);
/// assert!(ShardCount::new(0).is_none());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ShardCount(u16);

impl ShardCount {
    /// Two shards, the smallest sharded configuration.
    pub const TWO: ShardCount = ShardCount(2);

    /// Creates a shard count; returns `None` for zero.
    pub const fn new(k: u16) -> Option<Self> {
        if k == 0 {
            None
        } else {
            Some(ShardCount(k))
        }
    }

    /// The raw count.
    pub const fn get(self) -> u16 {
        self.0
    }

    /// The count as `usize`.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all shard ids `0..k`.
    pub fn iter(self) -> impl Iterator<Item = ShardId> + Clone {
        (0..self.0).map(ShardId::new)
    }

    /// Returns `true` if `shard` is a valid id under this count.
    pub const fn contains(self, shard: ShardId) -> bool {
        shard.as_u16() < self.0
    }
}

impl fmt::Display for ShardCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} shards", self.0)
    }
}

impl Default for ShardCount {
    fn default() -> Self {
        ShardCount::TWO
    }
}

impl TryFrom<u16> for ShardCount {
    type Error = ZeroShardCountError;

    fn try_from(k: u16) -> Result<Self, Self::Error> {
        ShardCount::new(k).ok_or(ZeroShardCountError)
    }
}

/// Error returned when constructing a [`ShardCount`] from zero.
///
/// # Examples
///
/// ```
/// use blockpart_types::ShardCount;
///
/// let err = ShardCount::try_from(0u16).unwrap_err();
/// assert_eq!(err.to_string(), "shard count must be non-zero");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZeroShardCountError;

impl fmt::Display for ZeroShardCountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("shard count must be non-zero")
    }
}

impl std::error::Error for ZeroShardCountError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_rejects_zero() {
        assert!(ShardCount::new(0).is_none());
        assert_eq!(ShardCount::try_from(0).unwrap_err(), ZeroShardCountError);
    }

    #[test]
    fn shard_count_iter() {
        let k = ShardCount::new(3).unwrap();
        let ids: Vec<u16> = k.iter().map(ShardId::as_u16).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn contains_checks_bound() {
        let k = ShardCount::new(2).unwrap();
        assert!(k.contains(ShardId::new(1)));
        assert!(!k.contains(ShardId::new(2)));
    }

    #[test]
    fn display() {
        assert_eq!(ShardId::new(7).to_string(), "shard-7");
        assert_eq!(ShardCount::new(8).unwrap().to_string(), "8 shards");
    }

    #[test]
    fn default_is_two() {
        assert_eq!(ShardCount::default(), ShardCount::TWO);
    }
}
