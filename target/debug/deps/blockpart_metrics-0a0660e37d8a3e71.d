/root/repo/target/debug/deps/blockpart_metrics-0a0660e37d8a3e71.d: crates/metrics/src/lib.rs crates/metrics/src/calendar.rs crates/metrics/src/concentration.rs crates/metrics/src/histogram.rs crates/metrics/src/report.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs

/root/repo/target/debug/deps/blockpart_metrics-0a0660e37d8a3e71: crates/metrics/src/lib.rs crates/metrics/src/calendar.rs crates/metrics/src/concentration.rs crates/metrics/src/histogram.rs crates/metrics/src/report.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs

crates/metrics/src/lib.rs:
crates/metrics/src/calendar.rs:
crates/metrics/src/concentration.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/report.rs:
crates/metrics/src/series.rs:
crates/metrics/src/summary.rs:
