//! The frozen directed graph.

use std::collections::HashMap;
use std::fmt;

use blockpart_types::{AccountKind, Address};
use serde::{Deserialize, Serialize};

use crate::csr::Csr;
use crate::node::NodeId;

/// An immutable, weighted, directed blockchain graph.
///
/// Vertices carry an *activity weight* (how often the account participated
/// in interactions, optionally inflated by gas) and an [`AccountKind`].
/// Edges carry the interaction frequency. Built by
/// [`GraphBuilder`](crate::GraphBuilder); the partitioners consume the
/// symmetric [`Csr`] view produced by [`Graph::to_csr`].
///
/// # Examples
///
/// ```
/// use blockpart_graph::GraphBuilder;
/// use blockpart_types::Address;
///
/// let mut b = GraphBuilder::new();
/// b.add_interaction(Address::from_index(0), Address::from_index(1), 2);
/// let g = b.build();
/// let csr = g.to_csr();
/// assert_eq!(csr.node_count(), 2);
/// assert_eq!(csr.degree(0), 1);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Graph {
    addresses: Vec<Address>,
    kinds: Vec<AccountKind>,
    node_weights: Vec<u64>,
    /// CSR offsets into `targets`/`edge_weights`; length `n + 1`.
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    edge_weights: Vec<u64>,
    total_edge_weight: u64,
    #[serde(skip)]
    index: HashMap<Address, NodeId>,
}

/// A borrowed view of one vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeRef {
    /// The vertex id.
    pub id: NodeId,
    /// The vertex's stable address.
    pub address: Address,
    /// Account or contract.
    pub kind: AccountKind,
    /// Accumulated activity weight.
    pub weight: u64,
}

/// A borrowed view of one directed edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeRef {
    /// Source vertex.
    pub source: NodeId,
    /// Target vertex.
    pub target: NodeId,
    /// Accumulated interaction count.
    pub weight: u64,
}

impl Graph {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        addresses: Vec<Address>,
        kinds: Vec<AccountKind>,
        node_weights: Vec<u64>,
        offsets: Vec<usize>,
        targets: Vec<NodeId>,
        edge_weights: Vec<u64>,
        total_edge_weight: u64,
        index: HashMap<Address, NodeId>,
    ) -> Self {
        debug_assert_eq!(offsets.len(), addresses.len() + 1);
        debug_assert_eq!(targets.len(), edge_weights.len());
        Graph {
            addresses,
            kinds,
            node_weights,
            offsets,
            targets,
            edge_weights,
            total_edge_weight,
            index,
        }
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.addresses.len()
    }

    /// Number of distinct directed edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Sum of all edge weights (total interactions).
    pub fn total_edge_weight(&self) -> u64 {
        self.total_edge_weight
    }

    /// Sum of all vertex activity weights.
    pub fn total_node_weight(&self) -> u64 {
        self.node_weights.iter().sum()
    }

    /// Returns `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.addresses.is_empty()
    }

    /// The stable address of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn address(&self, node: NodeId) -> Address {
        self.addresses[node.index()]
    }

    /// The account kind of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn kind(&self, node: NodeId) -> AccountKind {
        self.kinds[node.index()]
    }

    /// The activity weight of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn node_weight(&self, node: NodeId) -> u64 {
        self.node_weights[node.index()]
    }

    /// Looks up the node id for `address`, if present.
    pub fn node_of(&self, address: Address) -> Option<NodeId> {
        self.index.get(&address).copied()
    }

    /// Iterates over all vertices.
    pub fn nodes(&self) -> impl Iterator<Item = NodeRef> + '_ {
        (0..self.addresses.len()).map(move |i| NodeRef {
            id: NodeId::new(i as u32),
            address: self.addresses[i],
            kind: self.kinds[i],
            weight: self.node_weights[i],
        })
    }

    /// Iterates over the out-edges of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        let lo = self.offsets[node.index()];
        let hi = self.offsets[node.index() + 1];
        (lo..hi).map(move |e| EdgeRef {
            source: node,
            target: self.targets[e],
            weight: self.edge_weights[e],
        })
    }

    /// Out-degree of `node` (distinct targets).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.offsets[node.index() + 1] - self.offsets[node.index()]
    }

    /// Iterates over all directed edges.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        (0..self.addresses.len())
            .map(NodeId::new_usize)
            .flat_map(move |u| self.out_edges(u))
    }

    /// Builds the symmetric CSR view used by the partitioners.
    ///
    /// Each directed edge `(u, v, w)` contributes `w` to the undirected
    /// weight of `{u, v}`; an edge pair `(u→v, v→u)` merges into a single
    /// undirected edge whose weight is the sum. Vertex weights carry over.
    /// Vertices with zero activity get weight 1 so balance constraints stay
    /// well-defined (METIS does the same with unit weights).
    ///
    /// Large graphs symmetrize on the parallel CSR pass (equivalent to
    /// [`to_csr_workers`](Self::to_csr_workers) with automatic worker
    /// selection); the output is identical either way.
    pub fn to_csr(&self) -> Csr {
        self.to_csr_workers(0)
    }

    /// Builds the symmetric CSR view on `workers` threads (`0` =
    /// automatic). Byte-identical output for every worker count.
    pub fn to_csr_workers(&self, workers: usize) -> Csr {
        let n = self.node_count();
        // Explicit worker requests bypass the small-graph threshold so the
        // parallel path can be pinned down in tests.
        let auto = workers == 0;
        let workers = blockpart_types::resolve_workers(workers);
        let vwgt: Vec<u64> = self.node_weights.iter().map(|&w| w.max(1)).collect();
        if workers == 1 || (auto && self.edge_count() < 8_192) {
            // Accumulate undirected neighbour weights.
            let mut sym: Vec<HashMap<u32, u64>> = vec![HashMap::new(); n];
            for e in self.edges() {
                let (u, v) = (e.source.index(), e.target.index());
                *sym[u].entry(v as u32).or_insert(0) += e.weight;
                *sym[v].entry(u as u32).or_insert(0) += e.weight;
            }
            let mut xadj = Vec::with_capacity(n + 1);
            let mut adjncy = Vec::new();
            let mut adjwgt = Vec::new();
            xadj.push(0usize);
            for row in &sym {
                let mut sorted: Vec<(u32, u64)> = row.iter().map(|(&t, &w)| (t, w)).collect();
                sorted.sort_unstable_by_key(|&(t, _)| t);
                for (t, w) in sorted {
                    adjncy.push(t);
                    adjwgt.push(w);
                }
                xadj.push(adjncy.len());
            }
            return Csr::from_parts(xadj, adjncy, adjwgt, vwgt);
        }

        // Each worker scans a contiguous source range, emitting both
        // directions of every directed edge into a private sorted shard;
        // the parallel row merge then sums the direction pairs. The shard
        // multiset is independent of the range split, so the result is
        // byte-identical for every worker count.
        let ranges = blockpart_types::split_ranges(n, workers);
        let mut shards: Vec<Option<Vec<(u64, u64)>>> = Vec::new();
        shards.resize_with(ranges.len(), || None);
        crossbeam::thread::scope(|scope| {
            for (slot, range) in shards.iter_mut().zip(&ranges) {
                let range = range.clone();
                scope.spawn(move |_| {
                    let mut acc: HashMap<u64, u64> = HashMap::new();
                    for u in range {
                        for e in self.out_edges(NodeId::new(u as u32)) {
                            let v = e.target.as_u32();
                            *acc.entry(crate::csr::edge_key(u as u32, v)).or_insert(0) += e.weight;
                            *acc.entry(crate::csr::edge_key(v, u as u32)).or_insert(0) += e.weight;
                        }
                    }
                    let mut sorted: Vec<(u64, u64)> = acc.into_iter().collect();
                    sorted.sort_unstable_by_key(|&(k, _)| k);
                    *slot = Some(sorted);
                });
            }
        })
        .expect("csr symmetrize worker panicked");
        let shards: Vec<Vec<(u64, u64)>> = shards
            .into_iter()
            .map(|s| s.expect("range symmetrized"))
            .collect();
        let (xadj, adjncy, adjwgt) = crate::csr::merge_sorted_shards(n, &shards, workers);
        Csr::from_parts(xadj, adjncy, adjwgt, vwgt)
    }

    /// Builds the symmetric CSR view under the given
    /// [`StorageBackend`](blockpart_types::StorageBackend).
    ///
    /// `InMemory` is exactly [`to_csr_workers`](Self::to_csr_workers).
    /// The spill backend symmetrizes through the external-memory path in
    /// [`crate::ooc`], which ignores `workers` (the external merge is a
    /// streaming schedule) **without changing the output**: wherever both
    /// backends fit, the results are byte-identical.
    ///
    /// Memory contract (spill): resident state is the vertex-weight array
    /// and the final CSR — the `O(E)` symmetrized accumulation is bounded
    /// by the backend's budget. To avoid materializing the CSR entirely,
    /// use [`crate::ooc::OocCsr::build`] and stream
    /// [`rows`](crate::ooc::OocCsr::rows) instead.
    pub fn to_csr_backend(
        &self,
        backend: &blockpart_types::StorageBackend,
        workers: usize,
    ) -> std::io::Result<Csr> {
        match backend {
            blockpart_types::StorageBackend::InMemory => Ok(self.to_csr_workers(workers)),
            blockpart_types::StorageBackend::Spill {
                dir,
                mem_budget_bytes,
            } => crate::ooc::OocCsr::build(self, dir, *mem_budget_bytes)?.into_csr(),
        }
    }

    /// Rebuilds the address → node index after deserialization.
    ///
    /// [`Graph`] serialization skips the lookup index; call this after
    /// deserializing if [`Graph::node_of`] will be used.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .addresses
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, NodeId::new(i as u32)))
            .collect();
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph({} nodes, {} edges, total edge weight {})",
            self.node_count(),
            self.edge_count(),
            self.total_edge_weight
        )
    }
}

impl NodeId {
    pub(crate) fn new_usize(i: usize) -> NodeId {
        NodeId::new(i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_interaction(addr(0), addr(1), 1);
        b.add_interaction(addr(1), addr(2), 2);
        b.add_interaction(addr(2), addr(0), 3);
        b.build()
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.total_edge_weight(), 6);
        // each interaction adds weight to both endpoints: 1+3, 1+2, 2+3
        assert_eq!(g.total_node_weight(), 12);
    }

    #[test]
    fn node_lookup() {
        let g = triangle();
        let n = g.node_of(addr(1)).unwrap();
        assert_eq!(g.address(n), addr(1));
        assert_eq!(g.node_of(addr(99)), None);
    }

    #[test]
    fn csr_symmetrizes_and_merges_directions() {
        let mut b = GraphBuilder::new();
        b.add_interaction(addr(0), addr(1), 2);
        b.add_interaction(addr(1), addr(0), 3);
        let csr = b.build().to_csr();
        assert_eq!(csr.degree(0), 1);
        assert_eq!(csr.degree(1), 1);
        let (t, w) = csr.neighbors(0).next().unwrap();
        assert_eq!(t, 1);
        assert_eq!(w, 5);
        // total undirected edge weight counts each edge once
        assert_eq!(csr.total_edge_weight(), 5);
    }

    #[test]
    fn csr_zero_weight_vertices_get_unit_weight() {
        let mut b = GraphBuilder::new();
        b.touch(addr(0), AccountKind::ExternallyOwned);
        let csr = b.build().to_csr();
        assert_eq!(csr.vertex_weight(0), 1);
    }

    #[test]
    fn edges_iterator_covers_all() {
        let g = triangle();
        assert_eq!(g.edges().count(), 3);
        let total: u64 = g.edges().map(|e| e.weight).sum();
        assert_eq!(total, g.total_edge_weight());
    }

    #[test]
    fn serde_roundtrip_and_index_rebuild() {
        let g = triangle();
        let json = serde_json_like(&g);
        // serde_json isn't a dependency: use bincode-like manual check via
        // serde round-trip through the `serde_test`-free path: clone fields.
        // Instead we verify rebuild_index directly.
        let mut g2 = g.clone();
        g2.rebuild_index();
        assert_eq!(g2.node_of(addr(2)), g.node_of(addr(2)));
        assert!(!json.is_empty());
    }

    fn serde_json_like(g: &Graph) -> String {
        // A cheap serialization smoke test without extra deps.
        format!("{g}")
    }

    #[test]
    fn display_nonempty() {
        assert!(!triangle().to_string().is_empty());
    }
}
