//! Offline shim for the `crossbeam::thread::scope` API, delegating to
//! `std::thread::scope` (available since Rust 1.63).

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads with crossbeam's calling convention.

    use std::any::Any;

    /// A scope handle whose `spawn` closures receive the scope again, as
    /// crossbeam's do.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives a scope handle it
        /// may use for nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; joins them all before returning.
    ///
    /// Unlike crossbeam (which collects panics into the `Err` variant),
    /// `std::thread::scope` propagates child panics, so the `Err` case is
    /// never produced — callers' `.expect(...)` is a no-op.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let data = vec![1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        super::thread::scope(|scope| {
            for (slot, &v) in out.iter_mut().zip(&data) {
                scope.spawn(move |_| {
                    *slot = v * 10;
                });
            }
        })
        .unwrap();
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let mut a = 0u32;
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| ()).join().unwrap();
            });
            a = 1;
        })
        .unwrap();
        assert_eq!(a, 1);
    }
}
