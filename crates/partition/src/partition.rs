//! The partition assignment type.

use std::fmt;

use blockpart_types::{ShardCount, ShardId};
use serde::{Deserialize, Serialize};

/// An assignment of every vertex of a graph to one of `k` shards.
///
/// Vertices are identified by their dense index in the graph that was
/// partitioned. The partition is total: every vertex has exactly one shard
/// (the paper's `⋃ pᵢ = V`, `⋂ pᵢ = ∅`).
///
/// # Examples
///
/// ```
/// use blockpart_partition::Partition;
/// use blockpart_types::{ShardCount, ShardId};
///
/// let k = ShardCount::new(2).unwrap();
/// let p = Partition::from_assignment(vec![0, 1, 0, 1], k).unwrap();
/// assert_eq!(p.shard_of(2), ShardId::new(0));
/// assert_eq!(p.shard_sizes(), vec![2, 2]);
/// assert_eq!(p.moves_from(&p), 0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    assignment: Vec<u16>,
    k: ShardCount,
}

impl Partition {
    /// Creates a partition placing all `n` vertices on shard 0.
    pub fn all_on_first(n: usize, k: ShardCount) -> Self {
        Partition {
            assignment: vec![0; n],
            k,
        }
    }

    /// Creates a partition from a raw assignment vector.
    ///
    /// Returns `None` if any entry is `>= k`.
    pub fn from_assignment(assignment: Vec<u16>, k: ShardCount) -> Option<Self> {
        if assignment.iter().any(|&s| s >= k.get()) {
            return None;
        }
        Some(Partition { assignment, k })
    }

    /// The number of shards this partition targets.
    pub fn shard_count(&self) -> ShardCount {
        self.k
    }

    /// The number of vertices assigned.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Returns `true` if no vertices are assigned.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// The shard of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn shard_of(&self, v: usize) -> ShardId {
        ShardId::new(self.assignment[v])
    }

    /// Reassigns vertex `v` to `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds or `shard` is not valid for this
    /// partition's shard count.
    pub fn assign(&mut self, v: usize, shard: ShardId) {
        assert!(self.k.contains(shard), "shard {shard} out of range");
        self.assignment[v] = shard.as_u16();
    }

    /// The raw assignment slice (`assignment[v]` is the shard of `v`).
    pub fn as_slice(&self) -> &[u16] {
        &self.assignment
    }

    /// Number of vertices in each shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k.as_usize()];
        for &s in &self.assignment {
            sizes[s as usize] += 1;
        }
        sizes
    }

    /// Sum of `weights[v]` per shard.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.len()`.
    pub fn shard_weights(&self, weights: &[u64]) -> Vec<u64> {
        assert_eq!(weights.len(), self.assignment.len(), "weight slice length");
        let mut out = vec![0u64; self.k.as_usize()];
        for (&s, &w) in self.assignment.iter().zip(weights) {
            out[s as usize] += w;
        }
        out
    }

    /// Number of vertices whose shard differs from `previous`.
    ///
    /// This is the paper's **moves** metric: each such vertex would have its
    /// entire state relocated when the new partition is installed. Vertices
    /// present only in `self` (newly created since `previous`) do not count
    /// as moves.
    pub fn moves_from(&self, previous: &Partition) -> usize {
        self.assignment
            .iter()
            .zip(previous.assignment.iter())
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Extends the partition to cover `n` vertices, assigning new vertices
    /// via `place` (called with the new vertex index).
    pub fn grow_to(&mut self, n: usize, mut place: impl FnMut(usize) -> ShardId) {
        while self.assignment.len() < n {
            let v = self.assignment.len();
            let s = place(v);
            assert!(self.k.contains(s), "placement returned invalid shard");
            self.assignment.push(s.as_u16());
        }
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "partition({} vertices over {}, sizes {:?})",
            self.len(),
            self.k,
            self.shard_sizes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(n: u16) -> ShardCount {
        ShardCount::new(n).unwrap()
    }

    #[test]
    fn from_assignment_validates() {
        assert!(Partition::from_assignment(vec![0, 1], k(2)).is_some());
        assert!(Partition::from_assignment(vec![0, 2], k(2)).is_none());
    }

    #[test]
    fn sizes_and_weights() {
        let p = Partition::from_assignment(vec![0, 1, 1, 0, 1], k(2)).unwrap();
        assert_eq!(p.shard_sizes(), vec![2, 3]);
        assert_eq!(p.shard_weights(&[10, 1, 1, 10, 1]), vec![20, 3]);
    }

    #[test]
    #[should_panic(expected = "weight slice length")]
    fn shard_weights_length_mismatch_panics() {
        let p = Partition::all_on_first(3, k(2));
        let _ = p.shard_weights(&[1, 2]);
    }

    #[test]
    fn moves_counts_differences() {
        let a = Partition::from_assignment(vec![0, 0, 1, 1], k(2)).unwrap();
        let b = Partition::from_assignment(vec![0, 1, 1, 0], k(2)).unwrap();
        assert_eq!(b.moves_from(&a), 2);
    }

    #[test]
    fn moves_ignores_new_vertices() {
        let old = Partition::from_assignment(vec![0, 1], k(2)).unwrap();
        let new = Partition::from_assignment(vec![0, 1, 1, 1], k(2)).unwrap();
        assert_eq!(new.moves_from(&old), 0);
    }

    #[test]
    fn grow_to_places_new_vertices() {
        let mut p = Partition::all_on_first(2, k(2));
        p.grow_to(5, |v| ShardId::new((v % 2) as u16));
        assert_eq!(p.len(), 5);
        assert_eq!(p.shard_of(4), ShardId::new(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn assign_invalid_shard_panics() {
        let mut p = Partition::all_on_first(1, k(2));
        p.assign(0, ShardId::new(5));
    }

    #[test]
    fn display_nonempty() {
        assert!(!Partition::all_on_first(1, k(2)).to_string().is_empty());
    }
}
