/root/repo/target/debug/deps/simulator-29f5e0c0a2043f4c.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-29f5e0c0a2043f4c.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
