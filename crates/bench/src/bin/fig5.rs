//! Regenerates **Fig. 5**: dynamic edge-cut, normalized dynamic balance
//! ((balance − 1)/(k − 1)) and total moves for every method at k ∈
//! {2, 4, 8}, over the whole history.
//!
//! The paper's shapes to look for: edge-cut grows with k for every
//! method; METIS-family beats hashing and KL on edge-cut; hashing and KL
//! win on balance; METIS moves the most vertices, P/R-METIS and TR-METIS
//! far fewer.

use blockpart_bench::{generate_history, seed_from_env};
use blockpart_core::experiments::{fig5_rows, fig5_table};
use blockpart_core::{Method, Study};
use blockpart_types::ShardCount;

fn main() {
    let chain = generate_history();
    let ks: Vec<ShardCount> = [2u16, 4, 8]
        .iter()
        .map(|&k| ShardCount::new(k).expect("non-zero"))
        .collect();
    let result = Study::new(&chain.log)
        .methods(Method::ALL.to_vec())
        .shard_counts(ks)
        .seed(seed_from_env())
        .run();

    println!("\n## Fig. 5 — methods vs shard count (full history)\n");
    let rows = fig5_rows(&result);
    println!("{}", fig5_table(&rows).render_ascii());

    // headline cross-checks (printed, not asserted: scales vary)
    let cut = |m, k: u16| {
        rows.iter()
            .find(|r| r.method == m && r.k.get() == k)
            .map(|r| r.dynamic_edge_cut)
            .unwrap_or(f64::NAN)
    };
    println!(
        "hash cut growth with k : {:.2} -> {:.2} -> {:.2}",
        cut(Method::Hash, 2),
        cut(Method::Hash, 4),
        cut(Method::Hash, 8)
    );
    println!(
        "metis advantage at k=2 : {:.2} vs hash {:.2}",
        cut(Method::Metis, 2),
        cut(Method::Hash, 2)
    );
}
