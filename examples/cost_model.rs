//! Would sharding have helped? Convert the study's abstract metrics into
//! throughput estimates under the two cross-shard execution regimes the
//! paper names: coordinated execution (Spanner / S-SMR style) and state
//! relocation (dynamic SMR style).
//!
//! ```sh
//! cargo run --release --example cost_model
//! ```

use blockpart::core::{Method, Study};
use blockpart::ethereum::gen::{ChainGenerator, GeneratorConfig};
use blockpart::metrics::Table;
use blockpart::shard::{CostModel, CrossShardMode};
use blockpart::types::ShardCount;

fn main() {
    let chain = ChainGenerator::new(GeneratorConfig::test_scale(77)).generate();
    println!("{} interactions\n", chain.log.len());

    let k = ShardCount::new(4).expect("4 > 0");
    let result = Study::new(&chain.log)
        .methods(Method::ALL.to_vec())
        .shard_counts(vec![k])
        .run();

    // capacity chosen so an unsharded machine is saturated: speedup > 1
    // means sharding paid off
    let mean_events = {
        let r = result.get(Method::Hash, k).expect("ran");
        let active: Vec<_> = r.windows.iter().filter(|w| w.events > 0).collect();
        active.iter().map(|w| w.events).sum::<usize>() as f64 / active.len().max(1) as f64
    };
    let coordinate = CostModel {
        shard_capacity: mean_events / 2.0,
        mode: CrossShardMode::Coordinate {
            coordination_factor: 3.0,
        },
        ..CostModel::default()
    };
    let relocate = CostModel {
        shard_capacity: mean_events / 2.0,
        mode: CrossShardMode::Relocate {
            relocation_cost: 4.0,
        },
        ..CostModel::default()
    };

    let mut table = Table::new(vec![
        "method",
        "dyn-cut",
        "speedup (coordinate)",
        "speedup (relocate)",
    ]);
    for run in &result.runs {
        let tc = coordinate.run_summary(&run.result, k.as_usize());
        let tr = relocate.run_summary(&run.result, k.as_usize());
        let cut = run
            .result
            .windows
            .last()
            .map(|w| w.cumulative_dynamic_edge_cut)
            .unwrap_or(0.0);
        table.row(vec![
            run.method.label().to_string(),
            format!("{cut:.3}"),
            format!("{:.2}x", tc.speedup),
            format!("{:.2}x", tr.speedup),
        ]);
    }
    println!("{}", table.render_ascii());
    println!("speedup > 1.0 means {k} beat one unsharded machine of the same capacity;");
    println!("the paper's pitfall: a poorly partitioned system lands *below* 1.0.");
}
