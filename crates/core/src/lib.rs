//! The partitioning study of Fynn & Pedone (DSN 2018), end to end.
//!
//! This crate wires the substrates together: it takes an interaction log
//! (usually from [`blockpart_ethereum`]'s generator), runs the five
//! partitioning methods across shard-count configurations via the
//! [`blockpart_shard`] simulator, and aggregates the per-window metrics
//! into the tables behind the paper's figures.
//!
//! * [`Method`] — the five methods (HASH, KL, METIS, R-METIS, TR-METIS)
//!   and their canonical simulator configurations;
//! * [`Study`] — a builder that runs methods × shard counts (in parallel)
//!   over one log and collects [`StudyResult`];
//! * [`experiments`] — one function per paper figure, each returning
//!   renderable tables/series;
//! * [`RuntimeStudy`] — the execution-level comparison: replay the chain
//!   on each method's assignment through the sharded 2PC runtime.
//!
//! # Examples
//!
//! ```
//! use blockpart_core::{Method, Study};
//! use blockpart_ethereum::gen::{ChainGenerator, GeneratorConfig};
//! use blockpart_types::ShardCount;
//!
//! let chain = ChainGenerator::new(GeneratorConfig::test_scale(5)).generate();
//! let result = Study::new(&chain.log)
//!     .methods(vec![Method::Hash, Method::Metis])
//!     .shard_counts(vec![ShardCount::TWO])
//!     .run();
//! let hash = result.get(Method::Hash, ShardCount::TWO).unwrap();
//! assert_eq!(hash.total_moves, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod experiments;
mod methods;
mod runtime_study;
mod study;

pub use methods::Method;
pub use runtime_study::{runtime_table, RuntimeRun, RuntimeStudy, RuntimeStudyResult};
pub use study::{MethodRun, Study, StudyResult};

pub use blockpart_types::{Duration, ShardCount, Timestamp};
