//! Property tests for `Json` parse/render round-trips.
//!
//! Trace export (blockpart-obs) serialises arbitrary span names — user
//! strategy labels, addresses, abort causes — through `Json::Str`, so the
//! builder/parser pair must survive any `String` content: quotes,
//! backslashes, control characters, astral-plane unicode, and any mix of
//! raw and `\uXXXX`-escaped source forms.
//!
//! The offline proptest shim has no string strategy, so strings are built
//! from generated integers mapped through a palette of hostile characters
//! plus the full scalar-value space.

use blockpart_metrics::Json;
use proptest::collection::vec;
use proptest::prelude::*;

/// Maps a generated integer to a character, biased towards the cases that
/// break naive escapers: quotes, backslashes, C0 controls, DEL, BMP
/// boundary points next to the surrogate range, and astral-plane chars.
fn char_of(raw: u64) -> char {
    const PALETTE: &[char] = &[
        '"',
        '\\',
        '/',
        '\n',
        '\r',
        '\t',
        '\u{0}',
        '\u{1}',
        '\u{8}',
        '\u{b}',
        '\u{c}',
        '\u{1f}',
        '\u{7f}',
        ' ',
        'a',
        'é',
        'ß',
        '\u{d7ff}',
        '\u{e000}',
        '\u{fffd}',
        '\u{ffff}',
        '\u{1f600}',
        '\u{10000}',
        '\u{10ffff}',
    ];
    if raw.is_multiple_of(2) {
        PALETTE[(raw / 2) as usize % PALETTE.len()]
    } else {
        // Any scalar value: fold into [0, 0x110000) and skip surrogates.
        let code = ((raw / 2) % 0x11_0000) as u32;
        char::from_u32(code).unwrap_or('\u{fffd}')
    }
}

fn string_of(raws: &[u64]) -> String {
    raws.iter().map(|&r| char_of(r)).collect()
}

/// Deterministically folds a flat integer stream into a `Json` tree so the
/// shim (which has no recursive/boxed strategies) can still exercise
/// nested documents.
fn json_of(raws: &[u64], depth: usize) -> Json {
    let pick = raws.first().copied().unwrap_or(0);
    let rest = raws.get(1..).unwrap_or(&[]);
    let variant = if depth == 0 { pick % 6 } else { pick % 8 };
    match variant {
        0 => Json::Null,
        1 => Json::Bool(pick % 3 == 0),
        2 => Json::UInt(pick),
        3 => Json::Int(pick as i64),
        4 => {
            // Round-trippable floats: f64 render/parse is exact for any
            // finite value, so derive one from the raw bits when finite.
            let f = f64::from_bits(pick);
            Json::Num(if f.is_finite() { f } else { pick as f64 / 7.0 })
        }
        5 => Json::Str(string_of(&rest[..rest.len().min(8)])),
        6 => Json::arr(
            rest.chunks(3)
                .take(4)
                .map(|c| json_of(c, depth - 1))
                .collect::<Vec<_>>(),
        ),
        _ => Json::obj(
            rest.chunks(4)
                .take(4)
                .map(|c| {
                    (
                        string_of(&c[..c.len().min(2)]),
                        json_of(&c[2.min(c.len())..], depth - 1),
                    )
                })
                .collect::<Vec<_>>(),
        ),
    }
}

/// Renders `s` as a JSON string literal using a randomly chosen source
/// form per character: raw, `\uXXXX` escapes (surrogate pairs for astral
/// chars, mixed hex case), or the short escapes where one exists.
fn adversarial_literal(s: &str, choices: &[u64]) -> String {
    let mut out = String::from('"');
    for (i, c) in s.chars().enumerate() {
        let choice = choices.get(i % choices.len().max(1)).copied().unwrap_or(0);
        let code = c as u32;
        let must_escape = matches!(c, '"' | '\\') || code < 0x20;
        match choice % 3 {
            0 if !must_escape => out.push(c),
            1 => {
                // Short escapes where JSON defines one.
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '/' => out.push_str("\\/"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    '\u{8}' => out.push_str("\\b"),
                    '\u{c}' => out.push_str("\\f"),
                    _ => push_u_escape(&mut out, code, choice),
                }
            }
            _ => push_u_escape(&mut out, code, choice),
        }
    }
    out.push('"');
    out
}

fn push_u_escape(out: &mut String, code: u32, choice: u64) {
    let hex = |out: &mut String, unit: u32| {
        if choice.is_multiple_of(2) {
            out.push_str(&format!("\\u{unit:04x}"));
        } else {
            out.push_str(&format!("\\u{unit:04X}"));
        }
    };
    if code >= 0x10000 {
        let v = code - 0x10000;
        hex(out, 0xD800 + (v >> 10));
        hex(out, 0xDC00 + (v & 0x3FF));
    } else {
        hex(out, code);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn string_value_roundtrips(raws in vec(any::<u64>(), 0..24)) {
        let doc = Json::Str(string_of(&raws));
        for rendered in [doc.render(), doc.render_pretty()] {
            let reparsed = Json::parse(&rendered)
                .unwrap_or_else(|e| panic!("parse failed on {rendered:?}: {e}"));
            prop_assert_eq!(&reparsed, &doc, "via {:?}", rendered);
        }
    }

    #[test]
    fn escaped_source_forms_parse_and_reserialize(raws in vec(any::<u64>(), 1..16),
                                                  choices in vec(any::<u64>(), 1..16)) {
        let s = string_of(&raws);
        let literal = adversarial_literal(&s, &choices);
        let parsed = Json::parse(&literal)
            .unwrap_or_else(|e| panic!("parse failed on {literal:?}: {e}"));
        prop_assert_eq!(parsed.as_str(), Some(s.as_str()), "via {:?}", literal);
        // Parse → reserialize → parse must be a fixed point.
        let rendered = parsed.render();
        let again = Json::parse(&rendered)
            .unwrap_or_else(|e| panic!("reparse failed on {rendered:?}: {e}"));
        prop_assert_eq!(again, parsed, "via {:?}", rendered);
    }

    #[test]
    fn document_roundtrips(raws in vec(any::<u64>(), 0..48)) {
        let doc = json_of(&raws, 2);
        for rendered in [doc.render(), doc.render_pretty()] {
            let reparsed = Json::parse(&rendered)
                .unwrap_or_else(|e| panic!("parse failed on {rendered:?}: {e}"));
            prop_assert_eq!(&reparsed, &doc, "via {:?}", rendered);
            // Reserialization is a fixed point (stable for diffing).
            prop_assert_eq!(reparsed.render(), doc.render());
        }
    }
}

/// The regression the fuzzing originally surfaced, pinned as plain tests.
#[test]
fn negative_zero_integer_normalizes() {
    // `-0` must not flip variants across a parse → render → parse cycle.
    let first = Json::parse("-0").unwrap();
    let second = Json::parse(&first.render()).unwrap();
    assert_eq!(first, second);
}

#[test]
fn plus_prefixed_u_escape_is_rejected() {
    // `u32::from_str_radix` accepts a leading `+`; the JSON grammar does
    // not ("\u+041" is not four hex digits).
    assert!(Json::parse(r#""\u+041""#).is_err());
    assert!(Json::parse(r#""\ud83d\u+e00""#).is_err());
}
