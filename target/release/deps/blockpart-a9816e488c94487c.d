/root/repo/target/release/deps/blockpart-a9816e488c94487c.d: src/bin/blockpart.rs

/root/repo/target/release/deps/blockpart-a9816e488c94487c: src/bin/blockpart.rs

src/bin/blockpart.rs:
