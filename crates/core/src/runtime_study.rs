//! The execution-level method comparison: run each partitioning method's
//! assignment through the sharded execution runtime and measure what the
//! partition costs at run time — cross-shard coordination, 2PC aborts,
//! commit latency, delivered throughput.
//!
//! This is the dynamic counterpart of [`Study`](crate::Study): the study
//! scores a partition statically (edge-cut/balance/moves), the runtime
//! study replays the chain's transactions on the final assignment through
//! two-phase commit over partitioned EVM state.

//! [`RuntimeStudy`] predates the unified [`Experiment`](crate::Experiment)
//! pipeline and is now a thin shim over it, kept so [`Method`]-based call
//! sites migrate incrementally.

use std::sync::Arc;

use blockpart_ethereum::SyntheticChain;
use blockpart_metrics::Table;
use blockpart_runtime::{RuntimeConfig, RuntimeReport};
use blockpart_types::ShardCount;

use crate::experiment::Experiment;
use crate::methods::Method;
use crate::strategy::{CanonicalStrategy, StrategySpec};

/// One completed runtime replay: a method's assignment at a shard count.
#[derive(Clone, Debug)]
pub struct RuntimeRun {
    /// The partitioning method whose assignment was executed.
    pub method: Method,
    /// The shard count.
    pub k: ShardCount,
    /// The execution-level measurements.
    pub report: RuntimeReport,
}

/// Results of a [`RuntimeStudy`], indexable by method and shard count.
#[derive(Clone, Debug, Default)]
pub struct RuntimeStudyResult {
    /// All runs, methods-major.
    pub runs: Vec<RuntimeRun>,
}

impl RuntimeStudyResult {
    /// The report for `method` at `k`, if it was part of the study.
    pub fn get(&self, method: Method, k: ShardCount) -> Option<&RuntimeReport> {
        self.runs
            .iter()
            .find(|r| r.method == method && r.k == k)
            .map(|r| &r.report)
    }
}

/// Configures and runs the execution-level comparison over one synthetic
/// chain.
///
/// For every method × shard count, the partitioning simulator streams
/// the chain's interaction log to produce the method's final assignment,
/// which the runtime then executes the recorded transactions on.
///
/// # Examples
///
/// ```
/// use blockpart_core::{Method, RuntimeStudy};
/// use blockpart_ethereum::gen::{ChainGenerator, GeneratorConfig};
/// use blockpart_types::ShardCount;
///
/// let chain = ChainGenerator::new(GeneratorConfig::test_scale(3)).generate();
/// let result = RuntimeStudy::new(&chain)
///     .methods(vec![Method::Hash])
///     .shard_counts(vec![ShardCount::new(1).unwrap()])
///     .run();
/// let report = result.get(Method::Hash, ShardCount::new(1).unwrap()).unwrap();
/// // one shard: no coordination, everything commits
/// assert_eq!(report.prepare_rounds, 0);
/// assert_eq!(report.committed as usize, chain.txs.len());
/// ```
#[derive(Debug)]
pub struct RuntimeStudy<'a> {
    chain: &'a SyntheticChain,
    methods: Vec<Method>,
    shard_counts: Vec<ShardCount>,
    seed: u64,
    net_latency_us: u64,
    inter_arrival_us: u64,
}

impl<'a> RuntimeStudy<'a> {
    /// Creates a runtime study with the defaults: HASH and METIS at
    /// k ∈ {1, 2, 4}.
    pub fn new(chain: &'a SyntheticChain) -> Self {
        RuntimeStudy {
            chain,
            methods: vec![Method::Hash, Method::Metis],
            shard_counts: [1u16, 2, 4]
                .iter()
                .map(|&k| ShardCount::new(k).expect("non-zero"))
                .collect(),
            seed: 0x52_55_4e, // "RUN"
            net_latency_us: RuntimeConfig::new(ShardCount::TWO).net_latency_us,
            inter_arrival_us: RuntimeConfig::new(ShardCount::TWO).inter_arrival_us,
        }
    }

    /// Restricts the methods to compare.
    pub fn methods(mut self, methods: Vec<Method>) -> Self {
        self.methods = methods;
        self
    }

    /// Restricts the shard counts.
    pub fn shard_counts(mut self, shard_counts: Vec<ShardCount>) -> Self {
        self.shard_counts = shard_counts;
        self
    }

    /// Overrides the partitioner/runtime seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the one-way inter-shard network latency (µs).
    pub fn net_latency_us(mut self, latency: u64) -> Self {
        self.net_latency_us = latency;
        self
    }

    /// Overrides the offered-load arrival gap (µs).
    pub fn inter_arrival_us(mut self, gap: u64) -> Self {
        self.inter_arrival_us = gap;
        self
    }

    /// Runs every method × shard-count pair.
    ///
    /// Delegates to the unified [`Experiment`] pipeline (simulate the
    /// log, replay the chain on the final assignment); the numbers are
    /// identical to the historical direct implementation.
    pub fn run(self) -> RuntimeStudyResult {
        let specs: Vec<Arc<dyn StrategySpec>> = self
            .methods
            .iter()
            .map(|&m| Arc::new(CanonicalStrategy::new(m)) as Arc<dyn StrategySpec>)
            .collect();
        let report = Experiment::over_chain(self.chain)
            .strategies(specs)
            .shard_counts(self.shard_counts.clone())
            .seed(self.seed)
            .offline(false)
            .replay(true)
            .net_latency_us(self.net_latency_us)
            .inter_arrival_us(self.inter_arrival_us)
            .run();

        let mut results = report.runs.into_iter();
        let mut runs = Vec::new();
        for &method in &self.methods {
            for &k in &self.shard_counts {
                let run = results.next().expect("one run per pair");
                assert_eq!(run.k, k, "experiment pair order changed");
                assert_eq!(
                    run.strategy,
                    method.label(),
                    "experiment pair order changed"
                );
                runs.push(RuntimeRun {
                    method,
                    k,
                    report: run.runtime.expect("replay stage enabled"),
                });
            }
        }
        RuntimeStudyResult { runs }
    }
}

/// Renders runtime runs as the comparison table the `runtime` CLI
/// subcommand and the fig6 binary print.
pub fn runtime_table(runs: &[RuntimeRun]) -> Table {
    let mut t = Table::new(vec![
        "method",
        "k",
        "committed",
        "failed",
        "cross-%",
        "abort-%",
        "p50-ms",
        "p99-ms",
        "tx/s",
    ]);
    for r in runs {
        t.row(vec![
            r.method.label().to_string(),
            r.k.get().to_string(),
            r.report.committed.to_string(),
            r.report.failed.to_string(),
            format!("{:.1}", r.report.cross_shard_ratio * 100.0),
            format!("{:.1}", r.report.abort_rate * 100.0),
            format!("{:.2}", r.report.p50_commit_latency_us as f64 / 1e3),
            format!("{:.2}", r.report.p99_commit_latency_us as f64 / 1e3),
            format!("{:.0}", r.report.throughput_tps),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpart_ethereum::gen::{ChainGenerator, GeneratorConfig};

    #[test]
    fn table_has_one_row_per_run() {
        let chain = ChainGenerator::new(GeneratorConfig::test_scale(2)).generate();
        let result = RuntimeStudy::new(&chain)
            .methods(vec![Method::Hash])
            .shard_counts(vec![ShardCount::TWO])
            .run();
        assert_eq!(result.runs.len(), 1);
        let table = runtime_table(&result.runs);
        assert_eq!(table.len(), 1);
        assert!(result.get(Method::Hash, ShardCount::TWO).is_some());
        assert!(result.get(Method::Metis, ShardCount::TWO).is_none());
    }
}
