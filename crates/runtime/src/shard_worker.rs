//! One shard of the execution runtime: a slice of world state, an
//! exclusive-lock table, a run queue feeding a serial execution unit, and
//! the coordinator state of the cross-shard transactions homed here.
//!
//! Workers only mutate their own state; all inter-shard effects travel as
//! [`Message`]s returned from [`ShardWorker::handle_batch`], which the
//! engine schedules through the shared event clock. That isolation is
//! what lets the engine run one thread per shard and stay deterministic.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use blockpart_ethereum::evm::{ExecContext, GasSchedule};
use blockpart_ethereum::exec::{ExecRequest, Resource, Speculation};
use blockpart_ethereum::{Receipt, Transaction, World};
use blockpart_obs::{Collector, Record, Trace};
use blockpart_types::{Address, ShardId, Timestamp};

use crate::clock::Micros;
use crate::coordinator::CoordState;
use crate::event::{Event, TxId};
use crate::locks::LockTable;
use crate::net::{Message, NetworkModel, Payload};
use crate::RuntimeConfig;

/// What a [`TxRecord`] represents: a payload transaction from the
/// workload, or a state-migration batch injected by a live
/// repartitioning session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TxKind {
    /// An ordinary transaction executed through the VM.
    Payload,
    /// A migration batch: the coordinator is the *destination* shard,
    /// the single participant is the source. Prepare locks + ships the
    /// moving state; commit removes it from the source while the
    /// coordinator installs it. No VM involved — the "execution" step
    /// models the install cost, sized by the bytes shipped.
    Migration,
}

/// One transaction prepared for replay: arrival time, footprint split by
/// shard, and the deterministic entropy its re-execution uses.
pub(crate) struct TxRecord {
    /// Arrival instant at the home shard's mempool.
    pub arrival_us: Micros,
    /// Canonical block time (fed to the VM context for fidelity).
    pub block_time: Timestamp,
    /// The transaction to execute.
    pub tx: Transaction,
    /// Home shard (the sender's shard; always a participant).
    pub home: ShardId,
    /// Footprint addresses grouped by owning shard, ascending shard id.
    pub parts: Vec<(ShardId, Vec<Address>)>,
    /// Per-transaction entropy for the VM's `RAND` opcode.
    pub entropy: u64,
    /// Payload transaction or migration batch.
    pub kind: TxKind,
}

impl TxRecord {
    /// Whether the record needs 2PC coordination: a footprint spanning
    /// more than one shard, or any migration batch (whose source is by
    /// construction a different shard than its coordinator).
    pub fn is_cross(&self) -> bool {
        self.parts.len() > 1 || self.kind == TxKind::Migration
    }

    /// The footprint addresses owned by `shard` (empty if not a
    /// participant).
    pub fn addrs_on(&self, shard: ShardId) -> &[Address] {
        self.parts
            .iter()
            .find(|(s, _)| *s == shard)
            .map(|(_, a)| a.as_slice())
            .unwrap_or(&[])
    }
}

/// Read-only context shared by every worker during a batch.
pub(crate) struct Ctx<'a> {
    pub cfg: &'a RuntimeConfig,
    pub txs: &'a [TxRecord],
    pub net: NetworkModel,
}

/// An event a worker wants scheduled.
pub(crate) struct Emit {
    /// Absolute virtual time of delivery.
    pub at: Micros,
    /// Destination shard.
    pub shard: ShardId,
    /// The event.
    pub event: Event,
}

/// What occupies the serial execution unit.
#[derive(Clone, Copy, Debug)]
enum Work {
    /// A single-shard transaction executing directly on this slice.
    Local(TxId),
    /// The cross-shard execution step of a transaction homed here.
    CrossExec(TxId),
}

/// Counters and samples one worker accumulates; merged into the
/// [`RuntimeReport`](crate::RuntimeReport) after the run.
#[derive(Debug, Default)]
pub(crate) struct WorkerStats {
    pub committed: u64,
    pub cross_committed: u64,
    pub failed: u64,
    pub busy_us: u64,
    pub prepare_rounds: u64,
    pub aborted_rounds: u64,
    pub local_conflicts: u64,
    pub stray_touches: u64,
    /// Speculative executions run ahead of the commit point.
    pub exec_speculated: u64,
    /// Cached speculations invalidated by an intervening write.
    pub exec_conflicts: u64,
    /// Commit-point re-executions after a wasted speculation.
    pub exec_re_executions: u64,
    /// `aborted_rounds` split by cause; values sum to `aborted_rounds`.
    pub abort_causes: BTreeMap<&'static str, u64>,
    pub latencies_us: Vec<u64>,
    pub last_commit_us: Micros,
    /// Migration batches this shard coordinated to completion.
    pub migration_batches: u64,
    /// Accounts whose owning shard changed via completed batches.
    pub migrated_accounts: u64,
    /// State bytes shipped into this shard by completed batches.
    pub migrated_bytes: u64,
    /// Completion instant of the last migration batch coordinated here.
    pub migration_last_us: Micros,
}

pub(crate) struct ShardWorker {
    pub id: ShardId,
    pub world: World,
    /// Crate-visible so a live session can install migration guard
    /// locks at an epoch barrier, before the segment's events flow.
    pub locks: LockTable,
    queue: VecDeque<Work>,
    running: Option<Work>,
    coords: HashMap<TxId, CoordState>,
    pub stats: WorkerStats,
    /// Virtual-clock trace buffer owned by this worker (disabled unless
    /// the engine runs traced). Worker-owned buffers merged in shard
    /// order keep traced runs deterministic across thread schedules.
    pub obs: Trace,
    /// End of the last execution, for idle-gap spans.
    idle_from: Micros,
    /// Optional on-disk state spool: when present, every prepare's
    /// exported state round-trips through this [`AccountStateStore`]
    /// before it ships, so migration batches serialize from disk instead
    /// of a resident `World`. The encoding is lossless — behaviour is
    /// byte-identical either way.
    pub(crate) spool: Option<blockpart_storage::AccountStateStore>,
    /// Speculative executions of queued local transactions, keyed by tx.
    /// Populated only when the configured engine speculates
    /// (`speculation_window() > 0`); the serial engine never touches it.
    spec_cache: HashMap<TxId, CachedSpec>,
    /// Transactions whose speculation was flushed wholesale by a world
    /// mutation outside the local execution path (2PC commit installs,
    /// migration installs). Reaching one counts as a re-execution.
    stale_specs: HashSet<TxId>,
    /// Last write's clock value per resource, since the last flush.
    write_versions: HashMap<Resource, u64>,
    /// Monotonic counter stamping every local world write.
    write_clock: u64,
}

/// One speculative execution and the write-clock instant it observed.
struct CachedSpec {
    spec: Speculation,
    /// [`ShardWorker::write_clock`] when the speculation ran: the cache
    /// entry is valid iff no dependency has a newer write version.
    snapshot: u64,
}

impl ShardWorker {
    pub fn new(id: ShardId, world: World) -> Self {
        ShardWorker {
            id,
            world,
            locks: LockTable::new(),
            queue: VecDeque::new(),
            running: None,
            coords: HashMap::new(),
            stats: WorkerStats::default(),
            obs: Trace::disabled(),
            idle_from: 0,
            spool: None,
            spec_cache: HashMap::new(),
            stale_specs: HashSet::new(),
            write_versions: HashMap::new(),
            write_clock: 0,
        }
    }

    /// Whether the worker has no in-flight work: idle execution unit,
    /// empty run queue, no open coordinations. Holds at every epoch
    /// barrier (the event queue only drains once all 2PC rounds finish).
    pub fn is_quiescent(&self) -> bool {
        self.running.is_none() && self.queue.is_empty() && self.coords.is_empty()
    }

    /// Processes this shard's slice of one same-instant event batch and
    /// returns the events to schedule in response.
    pub fn handle_batch(&mut self, now: Micros, events: Vec<Event>, ctx: &Ctx<'_>) -> Vec<Emit> {
        let mut out = Vec::new();
        for event in events {
            match event {
                Event::Arrival(tx) => self.on_arrival(tx, now, ctx, &mut out),
                Event::Net(msg) => self.on_message(msg, now, ctx, &mut out),
                Event::ExecDone(tx) => self.on_exec_done(tx, now, ctx, &mut out),
                Event::Retry(tx) => self.start_prepare_round(tx, now, ctx, &mut out),
            }
        }
        self.pump(now, ctx, &mut out);
        out
    }

    fn on_arrival(&mut self, tx: TxId, now: Micros, ctx: &Ctx<'_>, out: &mut Vec<Emit>) {
        if ctx.txs[tx.as_usize()].is_cross() {
            self.coords.insert(tx, CoordState::new_round(1, 0));
            self.start_prepare_round(tx, now, ctx, out);
        } else {
            self.queue.push_back(Work::Local(tx));
        }
    }

    /// Broadcasts `Prepare` for the coordinator's current attempt.
    fn start_prepare_round(&mut self, tx: TxId, now: Micros, ctx: &Ctx<'_>, out: &mut Vec<Emit>) {
        let rec = &ctx.txs[tx.as_usize()];
        let coord = self.coords.get_mut(&tx).expect("coordinator state exists");
        let attempt = coord.attempt;
        *coord = CoordState::new_round(attempt, rec.parts.len());
        if rec.kind == TxKind::Migration {
            // migration rounds are accounted separately so they never
            // distort the foreground abort rate
            if self.obs.events() {
                self.obs.record(
                    Record::instant(now, "migration", "migration.prepare")
                        .with_arg("tx", tx.0)
                        .with_arg("accounts", rec.addrs_on(rec.parts[0].0).len()),
                );
            }
        } else {
            self.stats.prepare_rounds += 1;
            if self.obs.events() {
                self.obs.record(
                    Record::instant(now, "2pc", "2pc.prepare")
                        .with_arg("tx", tx.0)
                        .with_arg("attempt", attempt)
                        .with_arg("shards", rec.parts.len()),
                );
            }
            self.obs.add("prepare_rounds", 1);
        }
        for &(shard, _) in &rec.parts {
            out.push(Emit {
                at: now + ctx.net.delay(self.id, shard),
                shard,
                event: Event::Net(Message {
                    from: self.id,
                    payload: Payload::Prepare { tx, attempt },
                }),
            });
        }
    }

    fn on_message(&mut self, msg: Message, now: Micros, ctx: &Ctx<'_>, out: &mut Vec<Emit>) {
        match msg.payload {
            Payload::Prepare { tx, .. } => self.on_prepare(tx, msg.from, now, ctx, out),
            Payload::Vote { tx, ok, shipped } => {
                self.on_vote(tx, msg.from, ok, shipped, now, ctx, out)
            }
            Payload::Commit { tx, writes } => self.on_commit(tx, writes, now, ctx, out),
            Payload::Abort { tx } => self.locks.release(tx),
            Payload::Ack { tx } => self.on_ack(tx, now, ctx),
        }
    }

    /// Participant side: lock the footprint, ship snapshots on success.
    fn on_prepare(
        &mut self,
        tx: TxId,
        coordinator: ShardId,
        now: Micros,
        ctx: &Ctx<'_>,
        out: &mut Vec<Emit>,
    ) {
        let addrs = ctx.txs[tx.as_usize()].addrs_on(self.id);
        let ok = self.locks.try_lock_all(tx, addrs);
        if self.obs.events() {
            self.obs.record(
                Record::instant(now, "2pc", "2pc.lock")
                    .with_arg("tx", tx.0)
                    .with_arg("addresses", addrs.len())
                    .with_arg("ok", ok),
            );
        }
        let shipped = if ok {
            let world = &self.world;
            let spool = &mut self.spool;
            addrs
                .iter()
                .filter_map(|&a| world.export_state(a).map(|s| (a, s)))
                .map(|(a, s)| match spool {
                    // serialize from disk: encode into the spool, ship the
                    // decoded re-read (lossless, so votes are identical)
                    Some(store) => (a, store.roundtrip(a, &s).expect("state spool I/O")),
                    None => (a, s),
                })
                .collect()
        } else {
            Vec::new()
        };
        out.push(Emit {
            at: now + ctx.cfg.prepare_cpu_us + ctx.net.delay(self.id, coordinator),
            shard: coordinator,
            event: Event::Net(Message {
                from: self.id,
                payload: Payload::Vote { tx, ok, shipped },
            }),
        });
    }

    /// Coordinator side: collect votes; on unanimity queue the execution
    /// step, otherwise abort the round and back off.
    #[allow(clippy::too_many_arguments)]
    fn on_vote(
        &mut self,
        tx: TxId,
        from: ShardId,
        ok: bool,
        shipped: Vec<(Address, blockpart_ethereum::AddressState)>,
        now: Micros,
        ctx: &Ctx<'_>,
        out: &mut Vec<Emit>,
    ) {
        if self.obs.events() {
            self.obs.record(
                Record::instant(now, "2pc", "2pc.vote")
                    .with_arg("tx", tx.0)
                    .with_arg("from", from)
                    .with_arg("ok", ok),
            );
        }
        let coord = self.coords.get_mut(&tx).expect("vote for unknown tx");
        if !coord.record_vote(from, ok, shipped) {
            return;
        }
        if !coord.any_no {
            // the execution step holds locks on remote shards: give it
            // priority over local work so lock hold times stay short
            self.queue.push_front(Work::CrossExec(tx));
            return;
        }
        // abort the round: release the locks the yes-voters hold
        debug_assert!(
            ctx.txs[tx.as_usize()].kind != TxKind::Migration,
            "migration prepares cannot conflict: routing swaps before the \
             segment, so no foreground footprint references moving state \
             on the source shard"
        );
        self.stats.aborted_rounds += 1;
        let locked = std::mem::take(&mut coord.locked);
        let attempt = coord.attempt;
        // a round that lost the lock race retries; the terminal attempt
        // drops the transaction instead
        let cause = if attempt >= ctx.cfg.max_attempts {
            "retry-exhausted"
        } else {
            "lock-conflict"
        };
        *self.stats.abort_causes.entry(cause).or_insert(0) += 1;
        if self.obs.events() {
            self.obs.record(
                Record::instant(now, "2pc", "2pc.abort")
                    .with_arg("tx", tx.0)
                    .with_arg("attempt", attempt)
                    .with_arg("shards", ctx.txs[tx.as_usize()].parts.len())
                    .with_arg("cause", cause),
            );
        }
        if self.obs.enabled() {
            // the two cause names are fixed, so the format! amortizes to
            // a registry hit after the first abort of each cause
            self.obs.add(&format!("aborts/{cause}"), 1);
        }
        for shard in locked {
            out.push(Emit {
                at: now + ctx.net.delay(self.id, shard),
                shard,
                event: Event::Net(Message {
                    from: self.id,
                    payload: Payload::Abort { tx },
                }),
            });
        }
        if attempt >= ctx.cfg.max_attempts {
            self.coords.remove(&tx);
            self.stats.failed += 1;
            return;
        }
        let coord = self.coords.get_mut(&tx).expect("still coordinating");
        coord.attempt = attempt + 1;
        out.push(Emit {
            at: now + backoff_us(ctx.cfg, tx, attempt),
            shard: self.id,
            event: Event::Retry(tx),
        });
    }

    /// Participant side: apply the write-set, release, acknowledge.
    fn on_commit(
        &mut self,
        tx: TxId,
        writes: Vec<(Address, blockpart_ethereum::AddressState)>,
        now: Micros,
        ctx: &Ctx<'_>,
        out: &mut Vec<Emit>,
    ) {
        let rec = &ctx.txs[tx.as_usize()];
        if rec.kind == TxKind::Migration {
            // migration commit at the source: the destination installed
            // the shipped copies, so the originals are discarded here
            for &a in rec.addrs_on(self.id) {
                self.world.take_state(a);
            }
        } else {
            for (a, state) in writes {
                self.world.install_state(a, state);
            }
        }
        // the slice changed outside the local execution path
        self.flush_speculations();
        self.locks.release(tx);
        let coordinator = ctx.txs[tx.as_usize()].home;
        out.push(Emit {
            at: now + ctx.net.delay(self.id, coordinator),
            shard: coordinator,
            event: Event::Net(Message {
                from: self.id,
                payload: Payload::Ack { tx },
            }),
        });
    }

    /// Coordinator side: the transaction commits once every participant
    /// has applied its write-set.
    fn on_ack(&mut self, tx: TxId, now: Micros, ctx: &Ctx<'_>) {
        let coord = self.coords.get_mut(&tx).expect("ack for unknown tx");
        debug_assert!(coord.acks_pending > 0, "unexpected ack");
        coord.acks_pending -= 1;
        if coord.acks_pending > 0 {
            return;
        }
        let attempts = coord.attempt;
        self.coords.remove(&tx);
        let rec = &ctx.txs[tx.as_usize()];
        if rec.kind == TxKind::Migration {
            let accounts: u64 = rec.parts.iter().map(|(_, a)| a.len() as u64).sum();
            self.stats.migration_batches += 1;
            self.stats.migrated_accounts += accounts;
            self.stats.migration_last_us = self.stats.migration_last_us.max(now);
            if self.obs.events() {
                self.obs.record(
                    Record::instant(now, "migration", "migration.commit")
                        .with_arg("tx", tx.0)
                        .with_arg("accounts", accounts),
                );
            }
            self.obs.add("migration/batches", 1);
            self.obs.add("migration/accounts", accounts);
            return;
        }
        self.record_commit(tx, now, ctx);
        self.stats.cross_committed += 1;
        if self.obs.events() {
            self.obs.record(
                Record::instant(now, "2pc", "2pc.commit")
                    .with_arg("tx", tx.0)
                    .with_arg("attempts", attempts)
                    .with_arg("shards", ctx.txs[tx.as_usize()].parts.len()),
            );
        }
        self.obs.add("cross_commits", 1);
    }

    fn record_commit(&mut self, tx: TxId, now: Micros, ctx: &Ctx<'_>) {
        self.stats.committed += 1;
        let latency = now - ctx.txs[tx.as_usize()].arrival_us;
        self.stats.latencies_us.push(latency);
        self.stats.last_commit_us = self.stats.last_commit_us.max(now);
        self.obs.add("commits", 1);
        self.obs.observe_us("commit_latency_us", latency);
    }

    /// Starts the next runnable work item if the execution unit is idle.
    ///
    /// Single-shard transactions need their footprint locks (they may
    /// conflict with an in-flight 2PC); unlockable items rotate to the
    /// back of the queue and are retried on the next pump — which is
    /// guaranteed to happen, because the blocking locks are released by
    /// events on this shard.
    fn pump(&mut self, now: Micros, ctx: &Ctx<'_>, out: &mut Vec<Emit>) {
        if self.running.is_some() {
            return;
        }
        for _ in 0..self.queue.len() {
            let work = self.queue.pop_front().expect("len-checked");
            match work {
                Work::Local(tx) => {
                    let addrs = ctx.txs[tx.as_usize()].addrs_on(self.id);
                    if self.locks.try_lock_all(tx, addrs) {
                        self.start_exec(work, now, ctx, out);
                        return;
                    }
                    self.stats.local_conflicts += 1;
                    self.queue.push_back(work);
                }
                Work::CrossExec(_) => {
                    self.start_exec(work, now, ctx, out);
                    return;
                }
            }
        }
    }

    /// Runs the transaction through the EVM and occupies the execution
    /// unit for a duration derived from the gas actually consumed.
    fn start_exec(&mut self, work: Work, now: Micros, ctx: &Ctx<'_>, out: &mut Vec<Emit>) {
        let tx = match work {
            Work::Local(tx) | Work::CrossExec(tx) => tx,
        };
        let rec = &ctx.txs[tx.as_usize()];
        if rec.kind == TxKind::Migration {
            self.start_migration_install(tx, now, ctx, out);
            return;
        }
        let vm_ctx = ExecContext::new(rec.block_time, rec.entropy, rec.tx.gas_limit)
            .with_schedule(GasSchedule::eip150());
        let receipt = match work {
            Work::Local(_) => self.exec_local(tx, rec, &vm_ctx, ctx),
            Work::CrossExec(_) => {
                let coord = self.coords.get_mut(&tx).expect("executing without state");
                let mut scratch = World::new();
                scratch.raise_address_floor(self.world.address_floor());
                for (a, state) in coord.shipped.drain(..) {
                    scratch.install_state(a, state);
                }
                let receipt = ctx
                    .cfg
                    .exec
                    .execute_one(&mut scratch, &ExecRequest::new(rec.tx, vm_ctx));
                coord.scratch = Some(scratch);
                coord.created = receipt.created.clone();
                receipt
            }
        };
        self.note_strays(rec, &receipt);
        let exec_us = (receipt.gas_used.get() / ctx.cfg.gas_per_us).max(ctx.cfg.min_exec_us);
        self.stats.busy_us += exec_us;
        if self.obs.events() {
            // the execution unit sat idle since the previous ExecDone
            if now > self.idle_from {
                self.obs
                    .span_at(self.idle_from, now - self.idle_from, "worker", "idle");
            }
            // the span's full extent is known upfront: the discrete-event
            // engine charges exec_us to the unit in one step
            let kind = match work {
                Work::Local(_) => "local",
                Work::CrossExec(_) => "cross",
            };
            self.obs.record(
                Record::span(now, exec_us, "exec", "exec")
                    .with_arg("tx", tx.0)
                    .with_arg("kind", kind)
                    .with_arg("gas", receipt.gas_used.get()),
            );
        }
        self.obs.observe_us("exec_us", exec_us);
        self.idle_from = now + exec_us;
        self.running = Some(work);
        out.push(Emit {
            at: now + exec_us,
            shard: self.id,
            event: Event::ExecDone(tx),
        });
    }

    /// Executes a single-shard transaction on this shard's slice, using
    /// the configured engine's speculation when it offers any.
    ///
    /// With a speculating engine, queued local transactions are
    /// pre-executed in parallel host threads against the current slice
    /// ([`refill_speculations`](Self::refill_speculations)); at the
    /// commit point the cached result is applied iff none of its
    /// read/write dependencies saw a newer write, otherwise the
    /// transaction re-executes directly. The cached receipt is the exact
    /// receipt direct execution would produce (proptest-gated), so
    /// virtual-time behaviour — receipts, gas, busy time, traces — is
    /// byte-identical to the serial engine; only the additive `exec_*`
    /// counters (and wall-clock time) differ.
    fn exec_local(
        &mut self,
        tx: TxId,
        rec: &TxRecord,
        vm_ctx: &ExecContext,
        ctx: &Ctx<'_>,
    ) -> Receipt {
        let engine = &ctx.cfg.exec;
        let window = engine.speculation_window();
        if window == 0 {
            return engine.execute_one(&mut self.world, &ExecRequest::new(rec.tx, *vm_ctx));
        }
        let cached = self.spec_cache.remove(&tx);
        let receipt = match cached {
            Some(c)
                if c.spec
                    .deps()
                    .all(|d| self.write_versions.get(d).copied().unwrap_or(0) <= c.snapshot) =>
            {
                c.spec.apply(&mut self.world);
                self.note_spec_writes(&c.spec);
                c.spec.receipt().clone()
            }
            invalid => {
                if invalid.is_some() {
                    self.stats.exec_conflicts += 1;
                    self.stats.exec_re_executions += 1;
                } else if self.stale_specs.remove(&tx) {
                    self.stats.exec_re_executions += 1;
                }
                let receipt =
                    engine.execute_one(&mut self.world, &ExecRequest::new(rec.tx, *vm_ctx));
                self.note_receipt_writes(rec, &receipt);
                receipt
            }
        };
        self.refill_speculations(window, ctx);
        receipt
    }

    /// Tops the speculation cache up to `window` entries by speculatively
    /// executing queued local payload transactions (in parallel host
    /// threads, via the engine) against the current slice. Amortized one
    /// speculation per transaction: entries already cached are skipped.
    fn refill_speculations(&mut self, window: usize, ctx: &Ctx<'_>) {
        let mut pending: Vec<TxId> = Vec::new();
        for work in &self.queue {
            if self.spec_cache.len() + pending.len() >= window {
                break;
            }
            if let Work::Local(tx) = *work {
                if !self.spec_cache.contains_key(&tx)
                    && ctx.txs[tx.as_usize()].kind == TxKind::Payload
                {
                    pending.push(tx);
                }
            }
        }
        if pending.is_empty() {
            return;
        }
        let reqs: Vec<ExecRequest> = pending
            .iter()
            .map(|&tx| {
                let rec = &ctx.txs[tx.as_usize()];
                let vm_ctx = ExecContext::new(rec.block_time, rec.entropy, rec.tx.gas_limit)
                    .with_schedule(GasSchedule::eip150());
                ExecRequest::new(rec.tx, vm_ctx)
            })
            .collect();
        let specs = ctx.cfg.exec.speculate(&self.world, &reqs);
        debug_assert_eq!(specs.len(), reqs.len(), "engine dropped speculations");
        self.stats.exec_speculated += specs.len() as u64;
        let snapshot = self.write_clock;
        for (tx, spec) in pending.into_iter().zip(specs) {
            // a fresh speculation supersedes an earlier flushed one
            self.stale_specs.remove(&tx);
            self.spec_cache.insert(tx, CachedSpec { spec, snapshot });
        }
    }

    /// Stamps a committed speculation's declared writes with a new write
    /// version, invalidating cached speculations that depend on them.
    fn note_spec_writes(&mut self, spec: &Speculation) {
        self.write_clock += 1;
        let v = self.write_clock;
        for &r in spec.writes() {
            self.write_versions.insert(r, v);
        }
    }

    /// Stamps a conservative superset of a directly-executed
    /// transaction's writes: the sender, every call endpoint, created
    /// contracts, and the address allocator when anything was created.
    fn note_receipt_writes(&mut self, rec: &TxRecord, receipt: &Receipt) {
        self.write_clock += 1;
        let v = self.write_clock;
        let addrs = [rec.tx.from, rec.tx.to]
            .into_iter()
            .chain(receipt.calls.iter().flat_map(|c| [c.from, c.to]))
            .chain(receipt.created.iter().copied());
        for a in addrs {
            if a != Address::ZERO {
                self.write_versions.insert(Resource::Addr(a), v);
            }
        }
        if !receipt.created.is_empty() {
            self.write_versions.insert(Resource::Allocator, v);
        }
    }

    /// Drops every cached speculation. Called on world mutations outside
    /// the local execution path (2PC commit installs, migration state
    /// movement), which are rare enough that wholesale invalidation
    /// beats tracking their footprints. A no-op under the serial engine
    /// (the maps stay empty).
    fn flush_speculations(&mut self) {
        self.stale_specs
            .extend(self.spec_cache.drain().map(|(tx, _)| tx));
        // with the cache empty, accumulated versions can never be
        // consulted again: future speculations snapshot a later clock
        self.write_versions.clear();
    }

    /// Occupies the execution unit with a migration batch's install
    /// step: no VM, the duration models copying the shipped bytes in.
    /// The unit is busy for real, which is exactly how migrations
    /// degrade foreground throughput.
    fn start_migration_install(
        &mut self,
        tx: TxId,
        now: Micros,
        ctx: &Ctx<'_>,
        out: &mut Vec<Emit>,
    ) {
        let coord = self.coords.get_mut(&tx).expect("migration without state");
        let bytes: u64 = coord.shipped.iter().map(|(_, s)| s.approx_bytes()).sum();
        let exec_us = (bytes / ctx.cfg.gas_per_us.max(1)).max(ctx.cfg.min_exec_us);
        self.stats.busy_us += exec_us;
        self.stats.migrated_bytes += bytes;
        if self.obs.events() {
            if now > self.idle_from {
                self.obs
                    .span_at(self.idle_from, now - self.idle_from, "worker", "idle");
            }
            self.obs.record(
                Record::span(now, exec_us, "migration", "migration.install")
                    .with_arg("tx", tx.0)
                    .with_arg("bytes", bytes),
            );
        }
        self.obs.add("migration/bytes", bytes);
        self.obs.observe_us("exec_us", exec_us);
        self.idle_from = now + exec_us;
        self.running = Some(Work::CrossExec(tx));
        out.push(Emit {
            at: now + exec_us,
            shard: self.id,
            event: Event::ExecDone(tx),
        });
    }

    /// Counts executed touches outside the declared footprint — the
    /// divergence between the canonical access list and what the sharded
    /// re-execution actually did.
    fn note_strays(&mut self, rec: &TxRecord, receipt: &Receipt) {
        let declared: Vec<Address> = rec
            .parts
            .iter()
            .flat_map(|(_, a)| a.iter().copied())
            .collect();
        for call in &receipt.calls {
            for a in [call.from, call.to] {
                if a != Address::ZERO && !declared.contains(&a) {
                    self.stats.stray_touches += 1;
                }
            }
        }
    }

    fn on_exec_done(&mut self, tx: TxId, now: Micros, ctx: &Ctx<'_>, out: &mut Vec<Emit>) {
        let work = self.running.take().expect("exec-done while idle");
        if ctx.txs[tx.as_usize()].kind == TxKind::Migration {
            self.on_migration_installed(tx, now, ctx, out);
            return;
        }
        match work {
            Work::Local(_) => {
                self.locks.release(tx);
                self.record_commit(tx, now, ctx);
            }
            Work::CrossExec(_) => {
                let rec = &ctx.txs[tx.as_usize()];
                let coord = self.coords.get_mut(&tx).expect("exec without state");
                let scratch = coord.scratch.take().expect("scratch world");
                coord.acks_pending = rec.parts.len();
                // created contracts live on in the home shard's lane
                self.world.raise_address_floor(scratch.address_floor());
                for c in std::mem::take(&mut coord.created) {
                    if let Some(state) = scratch.export_state(c) {
                        self.world.install_state(c, state);
                    }
                }
                self.flush_speculations();
                for &(shard, ref addrs) in &rec.parts {
                    let writes: Vec<_> = addrs
                        .iter()
                        .filter_map(|&a| scratch.export_state(a).map(|s| (a, s)))
                        .collect();
                    out.push(Emit {
                        at: now + ctx.net.delay(self.id, shard),
                        shard,
                        event: Event::Net(Message {
                            from: self.id,
                            payload: Payload::Commit { tx, writes },
                        }),
                    });
                }
            }
        }
    }
}

impl ShardWorker {
    /// Destination side of a migration batch, after the install step:
    /// the shipped state goes live on this shard, the guard locks that
    /// kept foreground transactions off the moving addresses drop, and
    /// the source is told to discard its copies.
    fn on_migration_installed(
        &mut self,
        tx: TxId,
        now: Micros,
        ctx: &Ctx<'_>,
        out: &mut Vec<Emit>,
    ) {
        let rec = &ctx.txs[tx.as_usize()];
        let coord = self.coords.get_mut(&tx).expect("install without state");
        coord.acks_pending = rec.parts.len();
        for (a, state) in std::mem::take(&mut coord.shipped) {
            self.world.install_state(a, state);
        }
        self.flush_speculations();
        self.locks.release(tx);
        for &(shard, _) in &rec.parts {
            out.push(Emit {
                at: now + ctx.net.delay(self.id, shard),
                shard,
                event: Event::Net(Message {
                    from: self.id,
                    payload: Payload::Commit {
                        tx,
                        writes: Vec::new(),
                    },
                }),
            });
        }
    }
}

/// Deterministic backoff with per-transaction jitter, so two repeatedly
/// colliding transactions de-synchronize instead of livelocking. Grows
/// linearly with the attempt up to a 16× cap (hot-spot queues drain at a
/// bounded pace instead of pushing stragglers out indefinitely).
fn backoff_us(cfg: &RuntimeConfig, tx: TxId, attempt: u32) -> u64 {
    let base = cfg.retry_backoff_us.max(1);
    base * u64::from(attempt.min(16)) + mix64(u64::from(tx.0) ^ (u64::from(attempt) << 32)) % base
}

/// splitmix64 finalizer.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
