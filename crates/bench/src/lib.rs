//! Shared scaffolding for the figure-regeneration binaries, the [`perf`]
//! measurement harness and the criterion benchmarks.
//!
//! Each `fig*` binary regenerates one figure of the paper from a synthetic
//! chain. All binaries honour two environment variables:
//!
//! * `BLOCKPART_SCALE` — fraction of the full-scale transaction rate
//!   (default `0.0012`, the demo scale; the paper-shaped results are
//!   stable from about `0.001` up);
//! * `BLOCKPART_SEED` — generator/partitioner seed (default `42`).
//!
//! ```sh
//! cargo run -p blockpart-bench --release --bin fig5
//! BLOCKPART_SCALE=0.005 cargo run -p blockpart-bench --release --bin fig4
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;
pub mod scenario_matrix;

use blockpart_ethereum::gen::{ChainGenerator, GeneratorConfig};
use blockpart_ethereum::SyntheticChain;

/// Reads `BLOCKPART_SCALE` (default `0.0012`).
pub fn scale_from_env() -> f64 {
    std::env::var("BLOCKPART_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(0.0012)
}

/// Reads `BLOCKPART_SEED` (default `42`).
pub fn seed_from_env() -> u64 {
    std::env::var("BLOCKPART_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Generates the full 30-month synthetic history at the environment's
/// scale and seed, printing a short provenance header.
pub fn generate_history() -> SyntheticChain {
    let scale = scale_from_env();
    let seed = seed_from_env();
    eprintln!("# generating 30-month history: scale={scale} seed={seed}");
    let config = GeneratorConfig::demo_scale(seed).with_scale(scale);
    let chain = ChainGenerator::new(config).generate();
    eprintln!(
        "# {} blocks, {} txs, {} interactions, {} accounts, {} contracts",
        chain.chain.block_count(),
        chain.chain.tx_count(),
        chain.log.len(),
        chain.chain.world().account_count(),
        chain.chain.world().contract_count(),
    );
    chain
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        // do not set the vars: defaults apply
        assert!(scale_from_env() > 0.0);
        let _ = seed_from_env();
    }
}
