//! Criterion benchmarks of the three partitioner families on synthetic
//! power-law graphs (the degree shape of blockchain graphs).

use blockpart_graph::Csr;
use blockpart_partition::{
    DistributedKl, HashPartitioner, MultilevelConfig, MultilevelPartitioner, PartitionRequest,
    Partitioner,
};
use blockpart_types::ShardCount;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A preferential-attachment-flavoured random graph of `n` vertices.
fn power_law_graph(n: u32, seed: u64) -> Csr {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n as usize * 2);
    for v in 1..n {
        // attach to earlier vertices, biased toward small indices (hubs)
        for _ in 0..1 + (v % 2) {
            let t = rng.gen_range(0..v);
            let t = t / 2;
            if t != v {
                edges.push((v, t, 1 + rng.gen_range(0..8u64)));
            }
        }
    }
    Csr::from_edges(n as usize, &edges)
}

fn bench_partitioners(c: &mut Criterion) {
    let k = ShardCount::new(8).expect("non-zero");
    let mut group = c.benchmark_group("partitioners");
    group.sample_size(10);
    for &n in &[1_000u32, 10_000] {
        let csr = power_law_graph(n, 7);
        let ids: Vec<u64> = (0..n as u64).collect();
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("hash", n), &csr, |b, csr| {
            let mut p = HashPartitioner::new();
            b.iter(|| p.partition(&PartitionRequest::new(csr, k).with_stable_ids(&ids)));
        });
        group.bench_with_input(BenchmarkId::new("kl-distributed", n), &csr, |b, csr| {
            b.iter(|| {
                DistributedKl::with_seed(3)
                    .partition(&PartitionRequest::new(csr, k).with_stable_ids(&ids))
            });
        });
        group.bench_with_input(BenchmarkId::new("multilevel", n), &csr, |b, csr| {
            b.iter(|| {
                MultilevelPartitioner::new(MultilevelConfig::default())
                    .partition(&PartitionRequest::new(csr, k).with_stable_ids(&ids))
            });
        });
    }
    group.finish();
}

fn bench_shard_counts(c: &mut Criterion) {
    let csr = power_law_graph(10_000, 9);
    let mut group = c.benchmark_group("multilevel-by-k");
    group.sample_size(10);
    for &kk in &[2u16, 4, 8] {
        let k = ShardCount::new(kk).expect("non-zero");
        group.bench_with_input(BenchmarkId::from_parameter(kk), &k, |b, &k| {
            b.iter(|| {
                MultilevelPartitioner::new(MultilevelConfig::default())
                    .partition(&PartitionRequest::new(&csr, k))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners, bench_shard_counts);
criterion_main!(benches);
