/root/repo/target/debug/deps/blockpart-8d4f424c090eeed0.d: src/bin/blockpart.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart-8d4f424c090eeed0.rmeta: src/bin/blockpart.rs Cargo.toml

src/bin/blockpart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
