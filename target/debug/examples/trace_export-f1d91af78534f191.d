/root/repo/target/debug/examples/trace_export-f1d91af78534f191.d: examples/trace_export.rs

/root/repo/target/debug/examples/trace_export-f1d91af78534f191: examples/trace_export.rs

examples/trace_export.rs:
