//! A synthetic Ethereum substrate: accounts, contracts, an EVM-lite virtual
//! machine, blocks, and an era-driven workload generator.
//!
//! The paper builds its graph from the real Ethereum trace (Aug 2015 –
//! Jan 2018). That trace is external data, so this crate *reproduces the
//! chain* instead: transactions are executed by a small stack VM
//! ([`evm`]) whose `CALL`/`TRANSFER`/`CREATE` opcodes emit exactly the
//! caller→callee edges the paper extracts, and a generator ([`gen`])
//! replays the chain's documented history — exponential growth, the
//! 2016 dummy-account attack, the 2017 ICO boom — with heavy-tailed
//! account and contract popularity.
//!
//! The output is a [`blockpart_graph::InteractionLog`] that the sharding
//! simulator and every figure benchmark consume.
//!
//! # Examples
//!
//! ```
//! use blockpart_ethereum::gen::{ChainGenerator, GeneratorConfig};
//!
//! let cfg = GeneratorConfig::demo_scale(42);
//! let synthetic = ChainGenerator::new(cfg).generate();
//! assert!(synthetic.log.len() > 1_000);
//! assert!(synthetic.chain.block_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod chain;
pub mod evm;
pub mod exec;
pub mod gen;
mod pool;
mod program;
mod state;
mod transaction;

pub use block::{Block, BlockSummary};
pub use chain::{Chain, SyntheticChain, TxOutcome};
pub use exec::{ExecHandle, ExecutionEngine, ParallelEngine, SerialEngine};
pub use pool::TxPool;
pub use program::{ContractTemplate, Program};
pub use state::{AccountState, AddressState, ContractState, World};
pub use transaction::{
    CallKind, CallRecord, ExecutedTx, Receipt, Transaction, TxPayload, TxStatus,
};

pub use blockpart_types::{AccountKind, Address, BlockNumber, Gas, Timestamp, Wei};
