//! The EVM-lite instruction set.

use blockpart_types::Gas;
use serde::{Deserialize, Serialize};

/// One EVM-lite instruction.
///
/// Stack effects are written `(inputs) -> (outputs)`, top of stack last.
/// Addresses travel on the stack as their dense `u64` index (see
/// [`Address::from_index`](blockpart_types::Address::from_index)).
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::evm::Op;
///
/// let add = Op::Add;
/// assert!(add.gas_cost().get() > 0);
/// assert_eq!(format!("{add:?}"), "Add");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Halt successfully. `() -> ()`
    Stop,
    /// Push an immediate. `() -> (x)`
    Push(u64),
    /// Discard the top of stack. `(x) -> ()`
    Pop,
    /// Wrapping addition. `(a, b) -> (a + b)`
    Add,
    /// Saturating subtraction. `(a, b) -> (a - b)`
    Sub,
    /// Wrapping multiplication. `(a, b) -> (a · b)`
    Mul,
    /// Division; `x / 0 = 0` like the real EVM. `(a, b) -> (a / b)`
    Div,
    /// Modulo; `x % 0 = 0`. `(a, b) -> (a % b)`
    Mod,
    /// Duplicate the n-th item from the top (0 = top). `(…) -> (…, x)`
    Dup(u8),
    /// Swap top with the n-th item below it (1-based). `(…)-> (…)`
    Swap(u8),
    /// Push the caller's address index. `() -> (caller)`
    Caller,
    /// Push the value sent with the call. `() -> (value)`
    CallValue,
    /// Push the executing contract's address index. `() -> (self)`
    SelfAddr,
    /// Push the block timestamp in seconds. `() -> (time)`
    BlockTime,
    /// Push the balance of an address. `(addr) -> (balance)`
    Balance,
    /// Push a deterministic pseudo-random word drawn from the transaction
    /// entropy. `() -> (r)`
    Rand,
    /// Load from contract storage. `(key) -> (value)`
    SLoad,
    /// Store to contract storage. `(key, value) -> ()`
    SStore,
    /// Transfer ether without code execution. `(to, value) -> ()`
    Transfer,
    /// Call another account or contract, transferring `value` and passing
    /// one argument word. `(to, value, arg) -> (ret)`
    Call,
    /// Create a contract from a template with an endowment; pushes the new
    /// contract's address index. `(template, endow) -> (addr)`
    Create,
    /// Unconditional jump to an instruction index. `() -> ()`
    Jump(u32),
    /// Jump if the popped condition is non-zero. `(cond) -> ()`
    JumpI(u32),
    /// Emit a log entry (no graph effect; costs gas). `(x) -> ()`
    Log,
    /// Revert the transaction. `() -> ()`
    Revert,
}

impl Op {
    /// The gas charged for executing this instruction, loosely following
    /// the yellow paper's relative magnitudes (storage ≫ call ≫ arithmetic).
    pub fn gas_cost(&self) -> Gas {
        let units = match self {
            Op::Stop => 0,
            Op::Push(_) | Op::Pop | Op::Dup(_) | Op::Swap(_) => 3,
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod => 5,
            Op::Caller | Op::CallValue | Op::SelfAddr | Op::BlockTime | Op::Rand => 2,
            Op::Balance => 400,
            Op::SLoad => 200,
            Op::SStore => 5_000,
            Op::Transfer => 9_000,
            Op::Call => 700,
            Op::Create => 32_000,
            Op::Jump(_) => 8,
            Op::JumpI(_) => 10,
            Op::Log => 375,
            Op::Revert => 0,
        };
        Gas::new(units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_dwarfs_arithmetic() {
        assert!(Op::SStore.gas_cost() > Op::Add.gas_cost());
        assert!(Op::Create.gas_cost() > Op::Call.gas_cost());
        assert!(Op::Transfer.gas_cost() > Op::SLoad.gas_cost());
    }

    #[test]
    fn terminators_are_free() {
        assert_eq!(Op::Stop.gas_cost(), Gas::ZERO);
        assert_eq!(Op::Revert.gas_cost(), Gas::ZERO);
    }

    #[test]
    fn ops_are_copy_and_comparable() {
        let a = Op::Push(7);
        let b = a;
        assert_eq!(a, b);
        assert_ne!(Op::Push(7), Op::Push(8));
    }
}
