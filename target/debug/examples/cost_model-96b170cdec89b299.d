/root/repo/target/debug/examples/cost_model-96b170cdec89b299.d: examples/cost_model.rs Cargo.toml

/root/repo/target/debug/examples/libcost_model-96b170cdec89b299.rmeta: examples/cost_model.rs Cargo.toml

examples/cost_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
