/root/repo/target/debug/deps/serde-b98f98d722d154b9.d: third_party/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-b98f98d722d154b9.rlib: third_party/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-b98f98d722d154b9.rmeta: third_party/serde/src/lib.rs

third_party/serde/src/lib.rs:
