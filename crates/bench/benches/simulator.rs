//! Criterion benchmark of the sharding simulator: interactions streamed
//! per second under each method's configuration.

use blockpart_core::Method;
use blockpart_ethereum::gen::{ChainGenerator, GeneratorConfig};
use blockpart_shard::ShardSimulator;
use blockpart_types::ShardCount;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_simulator(c: &mut Criterion) {
    let chain = ChainGenerator::new(GeneratorConfig::test_scale(13)).generate();
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.throughput(Throughput::Elements(chain.log.len() as u64));
    for method in Method::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.label()),
            &method,
            |b, &method| {
                b.iter(|| {
                    let mut sim = ShardSimulator::new(
                        method.simulator_config(ShardCount::TWO),
                        method.partitioner(1),
                    );
                    sim.run(&chain.log)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
