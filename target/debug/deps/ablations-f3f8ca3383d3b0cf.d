/root/repo/target/debug/deps/ablations-f3f8ca3383d3b0cf.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/libablations-f3f8ca3383d3b0cf.rmeta: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
