//! Offline shim for the criterion API subset the workspace's benches use:
//! `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`/`throughput`/`bench_with_input`/`finish`, `Bencher::iter`
//! and `black_box`.
//!
//! Timing is a simple mean over a fixed number of timed batches — enough
//! to compare orders of magnitude offline, not a statistics engine.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new<S: Display, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Throughput annotation (recorded, echoed in the report line).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: u32,
    mean_ns: f64,
}

impl Bencher {
    /// Times `f`, storing the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / f64::from(self.samples);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u32,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed calls each benchmark performs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u32;
        self
    }

    /// Records a throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark over `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            mean_ns: 0.0,
        };
        f(&mut b, input);
        self.report(&id.label, b.mean_ns);
    }

    /// Runs one benchmark with no input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            mean_ns: 0.0,
        };
        f(&mut b);
        self.report(&id.label, b.mean_ns);
    }

    fn report(&self, label: &str, mean_ns: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                format!("  {:.0} elem/s", n as f64 / (mean_ns * 1e-9))
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                format!("  {:.0} B/s", n as f64 / (mean_ns * 1e-9))
            }
            _ => String::new(),
        };
        println!("{}/{label}: {:.1} µs/iter{rate}", self.name, mean_ns / 1e3);
    }

    /// Ends the group (formatting no-op).
    pub fn finish(self) {}
}

/// The benchmark driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: 10,
            mean_ns: 0.0,
        };
        f(&mut b);
        println!("{name}: {:.1} µs/iter", b.mean_ns / 1e3);
        self
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        g.bench_with_input(BenchmarkId::new("f", 1), &5u64, |b, &x| {
            b.iter(|| {
                ran += 1;
                x * 2
            })
        });
        g.finish();
        assert!(ran >= 3);
    }
}
