/root/repo/target/debug/deps/rand-dbb8ad8229c5f55e.d: third_party/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-dbb8ad8229c5f55e.rmeta: third_party/rand/src/lib.rs Cargo.toml

third_party/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
