//! The era timeline: transaction rates and workload mixes over the
//! chain's simulated history.

use blockpart_types::{Duration, Timestamp};
use serde::{Deserialize, Serialize};

/// Average length of a month in seconds (the timeline is specified in
/// months since genesis, 2015-07-30).
pub const MONTH_SECS: u64 = 2_629_800; // 30.4375 days

/// Converts months-since-genesis to a timestamp.
pub(crate) fn month(m: f64) -> Timestamp {
    Timestamp::from_secs((m * MONTH_SECS as f64) as u64)
}

/// Relative frequencies of transaction categories within an era.
///
/// The fields need not sum to 1; sampling normalizes. Categories map to
/// the contract templates of
/// [`ContractTemplate`](crate::ContractTemplate) plus plain transfers,
/// contract deployments and the 2016 attack spam.
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::gen::TxMix;
///
/// let mix = TxMix::frontier();
/// assert!(mix.transfer > mix.token);
/// assert_eq!(mix.attack, 0.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TxMix {
    /// Plain ether transfers between accounts.
    pub transfer: f64,
    /// ERC20-style token calls.
    pub token: f64,
    /// Crowdsale contributions (which fan out to beneficiary + token).
    pub ico: f64,
    /// Gambling-game calls.
    pub game: f64,
    /// Wallet relays.
    pub wallet: f64,
    /// Factory invocations (create child contracts).
    pub factory: f64,
    /// Registry writes.
    pub registry: f64,
    /// Fresh contract deployments.
    pub deploy: f64,
    /// Attack spam: one-shot dummy accounts (the Oct 2016 anomaly).
    pub attack: f64,
}

impl TxMix {
    /// Frontier-era mix: almost all plain transfers, a trickle of deploys.
    pub fn frontier() -> TxMix {
        TxMix {
            transfer: 0.84,
            token: 0.02,
            ico: 0.0,
            game: 0.02,
            wallet: 0.06,
            factory: 0.02,
            registry: 0.02,
            deploy: 0.02,
            attack: 0.0,
        }
    }

    /// Homestead mix: contracts gain ground (DAO era).
    pub fn homestead() -> TxMix {
        TxMix {
            transfer: 0.62,
            token: 0.08,
            ico: 0.06,
            game: 0.05,
            wallet: 0.08,
            factory: 0.04,
            registry: 0.03,
            deploy: 0.04,
            attack: 0.0,
        }
    }

    /// The Sep–Oct 2016 DoS period: dominated by dummy-account spam.
    pub fn attack() -> TxMix {
        TxMix {
            attack: 0.80,
            transfer: 0.12,
            token: 0.02,
            ico: 0.01,
            game: 0.01,
            wallet: 0.02,
            factory: 0.01,
            registry: 0.005,
            deploy: 0.005,
        }
    }

    /// Post-fork recovery: back to an organic mix.
    pub fn recovery() -> TxMix {
        TxMix {
            transfer: 0.55,
            token: 0.14,
            ico: 0.06,
            game: 0.05,
            wallet: 0.08,
            factory: 0.05,
            registry: 0.03,
            deploy: 0.04,
            attack: 0.0,
        }
    }

    /// The 2017 ICO boom: token and crowdsale traffic dominates.
    pub fn boom() -> TxMix {
        TxMix {
            transfer: 0.36,
            token: 0.30,
            ico: 0.14,
            game: 0.05,
            wallet: 0.06,
            factory: 0.04,
            registry: 0.02,
            deploy: 0.03,
            attack: 0.0,
        }
    }

    /// The total weight (sampling normalizer).
    pub fn total(&self) -> f64 {
        self.transfer
            + self.token
            + self.ico
            + self.game
            + self.wallet
            + self.factory
            + self.registry
            + self.deploy
            + self.attack
    }
}

/// One segment of chain history with a rate ramp and a workload mix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Era {
    /// Era name (fork names from Fig. 1).
    pub name: &'static str,
    /// Inclusive start time.
    pub start: Timestamp,
    /// Exclusive end time.
    pub end: Timestamp,
    /// Transactions per day at era start (full scale).
    pub rate_start: f64,
    /// Transactions per day at era end; interpolated geometrically, which
    /// yields the exponential growth visible in Fig. 1.
    pub rate_end: f64,
    /// Workload composition.
    pub mix: TxMix,
}

impl Era {
    /// The interpolated full-scale transaction rate (tx/day) at `t`.
    ///
    /// Geometric interpolation between `rate_start` and `rate_end`.
    pub fn rate_at(&self, t: Timestamp) -> f64 {
        let span = (self.end.as_secs() - self.start.as_secs()) as f64;
        if span == 0.0 {
            return self.rate_start;
        }
        let frac = (t.as_secs().saturating_sub(self.start.as_secs())) as f64 / span;
        let frac = frac.clamp(0.0, 1.0);
        self.rate_start * (self.rate_end / self.rate_start).powf(frac)
    }
}

/// The full simulated history: an ordered, contiguous list of eras.
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::gen::EraTimeline;
/// use blockpart_types::Timestamp;
///
/// let tl = EraTimeline::ethereum_history();
/// let genesis_era = tl.era_at(Timestamp::EPOCH);
/// assert_eq!(genesis_era.name, "frontier");
/// assert!(tl.end() > Timestamp::from_secs(70_000_000)); // ~30 months
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct EraTimeline {
    eras: Vec<Era>,
}

impl EraTimeline {
    /// Builds a timeline from eras.
    ///
    /// # Panics
    ///
    /// Panics if `eras` is empty, unordered, or non-contiguous.
    pub fn new(eras: Vec<Era>) -> Self {
        assert!(!eras.is_empty(), "timeline needs at least one era");
        for pair in eras.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "eras must be contiguous");
        }
        EraTimeline { eras }
    }

    /// The 30-month Ethereum history of the paper's Fig. 1, at full scale.
    ///
    /// Rates are calibrated so the *shape* matches the figure: exponential
    /// growth to ~30k tx/day by mid-2016, a 10× spam spike during the
    /// Sep–Oct 2016 attack, recovery, then super-linear growth through the
    /// 2017 ICO boom to ~700k tx/day by January 2018.
    pub fn ethereum_history() -> Self {
        EraTimeline::new(vec![
            Era {
                name: "frontier",
                start: month(0.0),
                end: month(7.0), // ~2016-03 (Homestead fork)
                rate_start: 1_500.0,
                rate_end: 12_000.0,
                mix: TxMix::frontier(),
            },
            Era {
                name: "homestead",
                start: month(7.0),
                end: month(13.7), // ~2016-09-18 (attack begins)
                rate_start: 12_000.0,
                rate_end: 35_000.0,
                mix: TxMix::homestead(),
            },
            Era {
                name: "attack",
                start: month(13.7),
                end: month(15.2), // ~2016-11-01 (EIP150 defused it)
                rate_start: 300_000.0,
                rate_end: 350_000.0,
                mix: TxMix::attack(),
            },
            Era {
                name: "recovery",
                start: month(15.2),
                end: month(19.2), // ~2017-03 (EIP155/158 era)
                rate_start: 40_000.0,
                rate_end: 60_000.0,
                mix: TxMix::recovery(),
            },
            Era {
                name: "boom",
                start: month(19.2),
                end: month(27.0), // ~2017-10 (Byzantium)
                rate_start: 60_000.0,
                rate_end: 480_000.0,
                mix: TxMix::boom(),
            },
            Era {
                name: "byzantium",
                start: month(27.0),
                end: month(30.0), // ~2018-01 (study horizon)
                rate_start: 480_000.0,
                rate_end: 750_000.0,
                mix: TxMix::boom(),
            },
        ])
    }

    /// A short two-era timeline for unit tests (14 days of history).
    pub fn short_test() -> Self {
        EraTimeline::new(vec![
            Era {
                name: "a",
                start: Timestamp::EPOCH,
                end: Timestamp::from_secs(7 * 86_400),
                rate_start: 10_000.0,
                rate_end: 20_000.0,
                mix: TxMix::frontier(),
            },
            Era {
                name: "b",
                start: Timestamp::from_secs(7 * 86_400),
                end: Timestamp::from_secs(14 * 86_400),
                rate_start: 20_000.0,
                rate_end: 40_000.0,
                mix: TxMix::boom(),
            },
        ])
    }

    /// All eras in order.
    pub fn eras(&self) -> &[Era] {
        &self.eras
    }

    /// End of simulated history.
    pub fn end(&self) -> Timestamp {
        self.eras.last().expect("non-empty").end
    }

    /// The era containing `t` (clamped to the last era after the end).
    pub fn era_at(&self, t: Timestamp) -> &Era {
        self.eras
            .iter()
            .find(|e| t < e.end)
            .unwrap_or_else(|| self.eras.last().expect("non-empty"))
    }

    /// Full-scale transaction rate (tx/day) at `t`.
    pub fn rate_at(&self, t: Timestamp) -> f64 {
        self.era_at(t).rate_at(t)
    }

    /// Converts a calendar month offset (0 = August 2015) to a timestamp,
    /// for aligning report axes with the paper's figures.
    pub fn month_mark(m: f64) -> Timestamp {
        month(m)
    }

    /// When EIP-150 activates on the canonical timeline: the gas
    /// repricing that made the 2016 spam uneconomical. The generator
    /// switches the chain's gas schedule here.
    pub fn eip150_activation() -> Timestamp {
        month(15.2)
    }

    /// The fork/attack markers of Fig. 1, as (label, time) pairs.
    pub fn fig1_markers() -> Vec<(&'static str, Timestamp)> {
        vec![
            ("Homestead", month(7.0)),
            ("DAO", month(10.5)),
            ("Attack", month(13.7)),
            ("EIP150", month(15.2)),
            ("EIP155&158", month(16.0)),
            ("Byzantium", month(27.0)),
        ]
    }

    /// Ignores eras after `until`, truncating the final one. Used to run
    /// shorter studies at full rate shape.
    pub fn truncated(&self, until: Timestamp) -> EraTimeline {
        let mut eras: Vec<Era> = Vec::new();
        for e in &self.eras {
            if e.start >= until {
                break;
            }
            let mut e = *e;
            if e.end > until {
                e.end = until;
            }
            eras.push(e);
        }
        if eras.is_empty() {
            let mut first = self.eras[0];
            first.end = first.start + Duration::from_secs(1);
            eras.push(first);
        }
        EraTimeline::new(eras)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_is_contiguous_and_ordered() {
        let tl = EraTimeline::ethereum_history();
        assert_eq!(tl.eras().len(), 6);
        for pair in tl.eras().windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
            assert!(pair[0].start < pair[0].end);
        }
    }

    #[test]
    fn rate_interpolates_geometrically() {
        let tl = EraTimeline::ethereum_history();
        let frontier = &tl.eras()[0];
        let mid = Timestamp::from_secs((frontier.start.as_secs() + frontier.end.as_secs()) / 2);
        let r = tl.rate_at(mid);
        let geo_mid = (frontier.rate_start * frontier.rate_end).sqrt();
        assert!(
            (r - geo_mid).abs() / geo_mid < 0.01,
            "r={r} expected~{geo_mid}"
        );
    }

    #[test]
    fn attack_era_spikes() {
        let tl = EraTimeline::ethereum_history();
        let pre = tl.rate_at(month(13.0));
        let during = tl.rate_at(month(14.0));
        let post = tl.rate_at(month(16.0));
        assert!(
            during > 5.0 * pre,
            "attack spike missing: {pre} -> {during}"
        );
        assert!(post < during / 4.0, "rate should drop after the fork");
    }

    #[test]
    fn era_lookup_clamps() {
        let tl = EraTimeline::ethereum_history();
        assert_eq!(tl.era_at(Timestamp::from_secs(u64::MAX)).name, "byzantium");
        assert_eq!(tl.era_at(Timestamp::EPOCH).name, "frontier");
    }

    #[test]
    fn truncation_preserves_prefix() {
        let tl = EraTimeline::ethereum_history();
        let cut = tl.truncated(month(10.0));
        assert_eq!(cut.eras().len(), 2);
        assert_eq!(cut.end(), month(10.0));
        assert_eq!(cut.eras()[0], tl.eras()[0]);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn gap_in_timeline_panics() {
        let mut eras = EraTimeline::ethereum_history().eras().to_vec();
        eras[1].start += Duration::from_secs(5);
        let _ = EraTimeline::new(eras);
    }

    #[test]
    fn mixes_normalize() {
        for mix in [
            TxMix::frontier(),
            TxMix::homestead(),
            TxMix::attack(),
            TxMix::recovery(),
            TxMix::boom(),
        ] {
            assert!(
                (mix.total() - 1.0).abs() < 0.01,
                "mix total {}",
                mix.total()
            );
        }
    }

    #[test]
    fn markers_cover_fig1_events() {
        let markers = EraTimeline::fig1_markers();
        assert_eq!(markers.len(), 6);
        assert!(markers.windows(2).all(|w| w[0].1 <= w[1].1));
    }
}
