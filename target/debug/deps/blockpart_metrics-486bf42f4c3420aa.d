/root/repo/target/debug/deps/blockpart_metrics-486bf42f4c3420aa.d: crates/metrics/src/lib.rs crates/metrics/src/calendar.rs crates/metrics/src/concentration.rs crates/metrics/src/histogram.rs crates/metrics/src/report.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs

/root/repo/target/debug/deps/libblockpart_metrics-486bf42f4c3420aa.rmeta: crates/metrics/src/lib.rs crates/metrics/src/calendar.rs crates/metrics/src/concentration.rs crates/metrics/src/histogram.rs crates/metrics/src/report.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs

crates/metrics/src/lib.rs:
crates/metrics/src/calendar.rs:
crates/metrics/src/concentration.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/report.rs:
crates/metrics/src/series.rs:
crates/metrics/src/summary.rs:
