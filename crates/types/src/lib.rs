//! Common newtypes shared across the `blockpart` workspace.
//!
//! The crate defines small, copyable identifier and quantity types used by
//! the graph, partitioning and simulation crates:
//!
//! * [`Address`] — a 20-byte account/contract identifier (Ethereum-style);
//! * [`ShardId`] — which shard a vertex is assigned to;
//! * [`Timestamp`] / [`Duration`] — simulated wall-clock time in seconds;
//! * [`BlockNumber`], [`Wei`], [`Gas`] — chain quantities.
//!
//! # Examples
//!
//! ```
//! use blockpart_types::{Address, ShardId, Timestamp, Duration};
//!
//! let a = Address::from_index(42);
//! let shard = ShardId::new(1);
//! let t = Timestamp::from_secs(100) + Duration::hours(4);
//! assert_eq!(t.as_secs(), 100 + 4 * 3600);
//! assert_eq!(shard.as_usize(), 1);
//! assert_ne!(a, Address::from_index(43));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod parallelism;
mod quantity;
mod shard;
mod storage;
mod time;

pub use address::{AccountKind, Address};
pub use parallelism::{resolve_workers, split_ranges};
pub use quantity::{BlockNumber, Gas, Wei};
pub use shard::{ShardCount, ShardId};
pub use storage::{parse_mem_budget, SpillSession, StorageBackend, MEM_BUDGET_ENV, SPILL_DIR_ENV};
pub use time::{Duration, Timestamp};
