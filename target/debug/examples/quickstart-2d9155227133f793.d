/root/repo/target/debug/examples/quickstart-2d9155227133f793.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2d9155227133f793: examples/quickstart.rs

examples/quickstart.rs:
