//! Time-ordered interaction logs and windowed graph construction.

use blockpart_types::{AccountKind, Address, StorageBackend, Timestamp};
use serde::{Deserialize, Serialize};

use crate::graph::Graph;

/// One timestamped interaction between two addresses.
///
/// An interaction is an edge event in the blockchain graph: a transfer from
/// an account, or a call performed by a contract as part of a transaction.
///
/// # Examples
///
/// ```
/// use blockpart_graph::Interaction;
/// use blockpart_types::{AccountKind, Address, Timestamp};
///
/// let i = Interaction::new(
///     Timestamp::from_secs(60),
///     Address::from_index(1),
///     Address::from_index(2),
/// );
/// assert_eq!(i.weight, 1);
/// assert!(!i.to_kind.is_contract());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interaction {
    /// When the enclosing transaction executed.
    pub time: Timestamp,
    /// Caller / sender.
    pub from: Address,
    /// Callee / recipient.
    pub to: Address,
    /// How many times the interaction occurred (merged multiplicity).
    pub weight: u64,
    /// Kind of the source vertex.
    pub from_kind: AccountKind,
    /// Kind of the target vertex.
    pub to_kind: AccountKind,
}

impl Interaction {
    /// Creates a unit-weight interaction between two externally-owned
    /// accounts. Use the struct-update syntax to override kinds or weight.
    pub fn new(time: Timestamp, from: Address, to: Address) -> Self {
        Interaction {
            time,
            from,
            to,
            weight: 1,
            from_kind: AccountKind::ExternallyOwned,
            to_kind: AccountKind::ExternallyOwned,
        }
    }
}

/// An append-only, time-ordered log of [`Interaction`]s.
///
/// The log is the bridge between the chain simulator (which emits events)
/// and the graph layer: cumulative graphs (`METIS` input), windowed graphs
/// (`R-METIS`'s *reduced graph*) and per-window metric evaluation all slice
/// this log.
///
/// # Examples
///
/// ```
/// use blockpart_graph::{Interaction, InteractionLog};
/// use blockpart_types::{Address, Timestamp};
///
/// let mut log = InteractionLog::new();
/// for t in 0..10 {
///     log.push(Interaction::new(
///         Timestamp::from_secs(t * 100),
///         Address::from_index(t),
///         Address::from_index(t + 1),
///     ));
/// }
/// let g = log.graph_until(Timestamp::from_secs(500));
/// assert_eq!(g.edge_count(), 6); // events at t = 0,100,...,500
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct InteractionLog {
    events: Vec<Interaction>,
}

impl InteractionLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an interaction.
    ///
    /// # Panics
    ///
    /// Panics if `event.time` is earlier than the last appended event —
    /// the log must stay time-ordered.
    pub fn push(&mut self, event: Interaction) {
        if let Some(last) = self.events.last() {
            assert!(
                event.time >= last.time,
                "interaction log must be appended in time order ({} < {})",
                event.time,
                last.time
            );
        }
        self.events.push(event);
    }

    /// Number of events in the log.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events, in time order.
    pub fn events(&self) -> &[Interaction] {
        &self.events
    }

    /// The timestamp of the last event, if any.
    pub fn last_time(&self) -> Option<Timestamp> {
        self.events.last().map(|e| e.time)
    }

    /// Events with `start <= time < end`.
    pub fn window(&self, start: Timestamp, end: Timestamp) -> &[Interaction] {
        let lo = self.events.partition_point(|e| e.time < start);
        let hi = self.events.partition_point(|e| e.time < end);
        &self.events[lo..hi]
    }

    /// Builds the cumulative graph of all events with `time <= until`.
    pub fn graph_until(&self, until: Timestamp) -> Graph {
        let hi = self.events.partition_point(|e| e.time <= until);
        Self::graph_of(&self.events[..hi])
    }

    /// Builds the *reduced* graph of events with `start <= time < end`.
    pub fn graph_window(&self, start: Timestamp, end: Timestamp) -> Graph {
        Self::graph_of(self.window(start, end))
    }

    /// Builds a graph from a slice of interactions.
    ///
    /// Large slices are built by the sharded parallel path (equivalent to
    /// [`graph_of_workers`](Self::graph_of_workers) with automatic worker
    /// selection); the output is identical either way.
    pub fn graph_of(events: &[Interaction]) -> Graph {
        Self::graph_of_workers(events, 0)
    }

    /// Builds a graph from a slice of interactions on `workers` threads
    /// (`0` = automatic).
    ///
    /// Every worker count produces byte-identical output — vertex
    /// numbering stays global first-appearance order and adjacency rows
    /// stay sorted — so this knob trades only wall-clock time.
    pub fn graph_of_workers(events: &[Interaction], workers: usize) -> Graph {
        crate::builder::graph_of_events(events, workers)
    }

    /// Builds a graph from a slice of interactions under the given
    /// [`StorageBackend`].
    ///
    /// [`StorageBackend::InMemory`] is exactly
    /// [`graph_of_workers`](Self::graph_of_workers). The spill backend
    /// routes the edge accumulation through the external-memory builder
    /// in [`crate::ooc`], which ignores `workers` (the external merge is
    /// a streaming schedule) **without changing the output**: wherever
    /// both backends fit, the results are byte-identical.
    ///
    /// Memory contract (spill): resident state is the address interner,
    /// per-vertex arrays and the final graph — `O(V + E_distinct)`; the
    /// `O(events)` edge accumulation is bounded by the backend's budget.
    pub fn graph_of_backend(
        events: &[Interaction],
        backend: &StorageBackend,
        workers: usize,
    ) -> std::io::Result<Graph> {
        match backend {
            StorageBackend::InMemory => Ok(Self::graph_of_workers(events, workers)),
            StorageBackend::Spill { .. } => {
                let mut b = crate::ooc::OocGraphBuilder::new(backend)?;
                b.push_chunk(events)?;
                b.finish()
            }
        }
    }
}

impl Extend<Interaction> for InteractionLog {
    fn extend<I: IntoIterator<Item = Interaction>>(&mut self, iter: I) {
        for e in iter {
            self.push(e);
        }
    }
}

impl FromIterator<Interaction> for InteractionLog {
    fn from_iter<I: IntoIterator<Item = Interaction>>(iter: I) -> Self {
        let mut log = InteractionLog::new();
        log.extend(iter);
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, from: u64, to: u64) -> Interaction {
        Interaction::new(
            Timestamp::from_secs(t),
            Address::from_index(from),
            Address::from_index(to),
        )
    }

    #[test]
    fn window_slicing() {
        let log: InteractionLog = (0..10).map(|t| ev(t * 10, t, t + 1)).collect();
        let w = log.window(Timestamp::from_secs(20), Timestamp::from_secs(50));
        assert_eq!(w.len(), 3); // t = 20, 30, 40
        assert_eq!(w[0].time, Timestamp::from_secs(20));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_panics() {
        let mut log = InteractionLog::new();
        log.push(ev(10, 0, 1));
        log.push(ev(5, 1, 2));
    }

    #[test]
    fn graph_until_is_cumulative() {
        let log: InteractionLog = (0..5).map(|t| ev(t, t, t + 1)).collect();
        assert_eq!(log.graph_until(Timestamp::from_secs(2)).edge_count(), 3);
        assert_eq!(log.graph_until(Timestamp::from_secs(100)).edge_count(), 5);
    }

    #[test]
    fn graph_window_is_reduced() {
        let log: InteractionLog = (0..5).map(|t| ev(t * 10, t, t + 1)).collect();
        let g = log.graph_window(Timestamp::from_secs(10), Timestamp::from_secs(30));
        // Only events at t = 10, 20: vertices {1,2,3}, edges 1->2, 2->3.
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn kinds_propagate_to_graph() {
        let mut log = InteractionLog::new();
        log.push(Interaction {
            to_kind: AccountKind::Contract,
            ..ev(0, 1, 2)
        });
        let g = log.graph_until(Timestamp::from_secs(0));
        let contract = g.node_of(Address::from_index(2)).unwrap();
        assert!(g.kind(contract).is_contract());
    }

    #[test]
    fn same_timestamp_events_allowed() {
        let mut log = InteractionLog::new();
        log.push(ev(5, 0, 1));
        log.push(ev(5, 1, 2));
        assert_eq!(log.len(), 2);
        assert_eq!(log.last_time(), Some(Timestamp::from_secs(5)));
    }

    #[test]
    fn empty_log() {
        let log = InteractionLog::new();
        assert!(log.is_empty());
        assert_eq!(log.last_time(), None);
        assert!(log.graph_until(Timestamp::from_secs(1)).is_empty());
    }
}
