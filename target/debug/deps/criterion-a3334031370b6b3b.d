/root/repo/target/debug/deps/criterion-a3334031370b6b3b.d: third_party/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-a3334031370b6b3b.rmeta: third_party/criterion/src/lib.rs Cargo.toml

third_party/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
