/root/repo/target/debug/deps/blockpart_bench-5d9c3f3e3fc806ff.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libblockpart_bench-5d9c3f3e3fc806ff.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
