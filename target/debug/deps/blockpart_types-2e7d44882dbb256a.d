/root/repo/target/debug/deps/blockpart_types-2e7d44882dbb256a.d: crates/types/src/lib.rs crates/types/src/address.rs crates/types/src/quantity.rs crates/types/src/shard.rs crates/types/src/time.rs

/root/repo/target/debug/deps/blockpart_types-2e7d44882dbb256a: crates/types/src/lib.rs crates/types/src/address.rs crates/types/src/quantity.rs crates/types/src/shard.rs crates/types/src/time.rs

crates/types/src/lib.rs:
crates/types/src/address.rs:
crates/types/src/quantity.rs:
crates/types/src/shard.rs:
crates/types/src/time.rs:
