/root/repo/target/debug/deps/proptest-b77013a6620443f1.d: third_party/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-b77013a6620443f1.rmeta: third_party/proptest/src/lib.rs

third_party/proptest/src/lib.rs:
