/root/repo/target/debug/deps/crossbeam-a806eec6066f1ab6.d: third_party/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-a806eec6066f1ab6.rmeta: third_party/crossbeam/src/lib.rs

third_party/crossbeam/src/lib.rs:
