/root/repo/target/release/deps/blockpart-5608f6d9d4a61781.d: src/lib.rs

/root/repo/target/release/deps/libblockpart-5608f6d9d4a61781.rlib: src/lib.rs

/root/repo/target/release/deps/libblockpart-5608f6d9d4a61781.rmeta: src/lib.rs

src/lib.rs:
