//! Per-shard exclusive address locks with all-or-nothing acquisition.
//!
//! The protocol is no-wait: a prepare that cannot take every lock votes
//! `no` immediately instead of queueing, which makes distributed
//! deadlock impossible (at the price of aborts, which the report
//! counts).

use std::collections::HashMap;

use blockpart_types::Address;

use crate::event::TxId;

/// The lock table of one shard.
///
/// # Examples
///
/// ```
/// use blockpart_runtime::event::TxId;
/// use blockpart_runtime::locks::LockTable;
/// use blockpart_types::Address;
///
/// let mut locks = LockTable::new();
/// let (a, b) = (Address::from_index(1), Address::from_index(2));
/// assert!(locks.try_lock_all(TxId(0), &[a, b]));
/// assert!(!locks.try_lock_all(TxId(1), &[b])); // conflict
/// locks.release(TxId(0));
/// assert!(locks.try_lock_all(TxId(1), &[b]));
/// ```
#[derive(Debug, Default)]
pub struct LockTable {
    held: HashMap<Address, TxId>,
    by_tx: HashMap<TxId, Vec<Address>>,
}

impl LockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Acquires every address for `tx`, or none of them. Re-acquiring a
    /// lock `tx` already holds is a no-op.
    pub fn try_lock_all(&mut self, tx: TxId, addrs: &[Address]) -> bool {
        if addrs
            .iter()
            .any(|a| self.held.get(a).is_some_and(|&h| h != tx))
        {
            return false;
        }
        let taken = self.by_tx.entry(tx).or_default();
        for &a in addrs {
            if self.held.insert(a, tx).is_none() {
                taken.push(a);
            }
        }
        true
    }

    /// Releases every lock `tx` holds.
    pub fn release(&mut self, tx: TxId) {
        for a in self.by_tx.remove(&tx).unwrap_or_default() {
            self.held.remove(&a);
        }
    }

    /// The transaction currently holding `addr`, if any.
    pub fn holder(&self, addr: Address) -> Option<TxId> {
        self.held.get(&addr).copied()
    }

    /// Number of currently held locks.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    #[test]
    fn all_or_nothing() {
        let mut t = LockTable::new();
        assert!(t.try_lock_all(TxId(0), &[addr(1)]));
        // tx 1 wants {1, 2}: address 1 is taken, so 2 must NOT be locked
        assert!(!t.try_lock_all(TxId(1), &[addr(2), addr(1)]));
        assert_eq!(t.holder(addr(2)), None);
        assert_eq!(t.held_count(), 1);
    }

    #[test]
    fn release_frees_everything() {
        let mut t = LockTable::new();
        assert!(t.try_lock_all(TxId(7), &[addr(1), addr(2), addr(3)]));
        assert_eq!(t.held_count(), 3);
        t.release(TxId(7));
        assert_eq!(t.held_count(), 0);
        assert!(t.try_lock_all(TxId(8), &[addr(2)]));
    }

    #[test]
    fn relock_by_holder_is_idempotent() {
        let mut t = LockTable::new();
        assert!(t.try_lock_all(TxId(3), &[addr(5)]));
        assert!(t.try_lock_all(TxId(3), &[addr(5), addr(6)]));
        t.release(TxId(3));
        assert_eq!(t.held_count(), 0);
    }
}
