//! Simulated time: timestamps and durations in whole seconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in seconds since the simulation epoch.
///
/// In the canned experiments the epoch is Ethereum's genesis
/// (2015-07-30 00:00 UTC), so month arithmetic in reports lines up with the
/// paper's x-axes.
///
/// # Examples
///
/// ```
/// use blockpart_types::{Duration, Timestamp};
///
/// let t = Timestamp::from_secs(0) + Duration::days(14);
/// assert_eq!(t.as_secs(), 14 * 86_400);
/// assert!(t > Timestamp::from_secs(0));
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The simulation epoch (t = 0).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Creates a timestamp from seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs)
    }

    /// Seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub const fn since(self, earlier: Timestamp) -> Duration {
        Duration::from_secs(self.0.saturating_sub(earlier.0))
    }

    /// Truncates the timestamp down to a multiple of `window`.
    ///
    /// Used to bucket events into fixed windows (the paper uses 4-hour
    /// measurement windows).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub const fn align_down(self, window: Duration) -> Timestamp {
        assert!(window.as_secs() > 0, "window must be non-zero");
        Timestamp(self.0 - self.0 % window.as_secs())
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}s", self.0)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;

    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;

    /// Saturates at the epoch.
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(rhs.0))
    }
}

/// A span of simulated time in whole seconds.
///
/// # Examples
///
/// ```
/// use blockpart_types::Duration;
///
/// assert_eq!(Duration::hours(4).as_secs(), 4 * 3600);
/// assert_eq!(Duration::weeks(2), Duration::days(14));
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs)
    }

    /// Creates a duration of `n` minutes.
    pub const fn minutes(n: u64) -> Self {
        Duration(n * 60)
    }

    /// Creates a duration of `n` hours.
    pub const fn hours(n: u64) -> Self {
        Duration(n * 3_600)
    }

    /// Creates a duration of `n` days.
    pub const fn days(n: u64) -> Self {
        Duration(n * 86_400)
    }

    /// Creates a duration of `n` weeks.
    pub const fn weeks(n: u64) -> Self {
        Duration(n * 7 * 86_400)
    }

    /// The duration in seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The duration in fractional days (for reporting).
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 86_400.0
    }

    /// Returns `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

impl Add for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;

    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_down_buckets() {
        let w = Duration::hours(4);
        let t = Timestamp::from_secs(4 * 3600 + 17);
        assert_eq!(t.align_down(w), Timestamp::from_secs(4 * 3600));
        assert_eq!(Timestamp::EPOCH.align_down(w), Timestamp::EPOCH);
    }

    #[test]
    #[should_panic(expected = "window must be non-zero")]
    fn align_down_zero_window_panics() {
        let _ = Timestamp::from_secs(1).align_down(Duration::ZERO);
    }

    #[test]
    fn since_saturates() {
        let a = Timestamp::from_secs(10);
        let b = Timestamp::from_secs(20);
        assert_eq!(b.since(a), Duration::from_secs(10));
        assert_eq!(a.since(b), Duration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let mut t = Timestamp::EPOCH;
        t += Duration::days(1);
        assert_eq!(t - Timestamp::EPOCH, Duration::days(1));
        assert_eq!(Duration::days(1) + Duration::hours(24), Duration::days(2));
        assert_eq!(Duration::days(2) - Duration::days(3), Duration::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(Timestamp::from_secs(5).to_string(), "t+5s");
        assert_eq!(Duration::from_secs(5).to_string(), "5s");
    }

    #[test]
    fn day_fraction() {
        assert!((Duration::hours(12).as_days_f64() - 0.5).abs() < 1e-12);
    }
}
