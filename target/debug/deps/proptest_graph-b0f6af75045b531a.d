/root/repo/target/debug/deps/proptest_graph-b0f6af75045b531a.d: crates/graph/tests/proptest_graph.rs

/root/repo/target/debug/deps/libproptest_graph-b0f6af75045b531a.rmeta: crates/graph/tests/proptest_graph.rs

crates/graph/tests/proptest_graph.rs:
