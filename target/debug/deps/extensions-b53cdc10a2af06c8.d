/root/repo/target/debug/deps/extensions-b53cdc10a2af06c8.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-b53cdc10a2af06c8: tests/extensions.rs

tests/extensions.rs:
