/root/repo/target/debug/deps/fig3-224e59bc999c2b72.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-224e59bc999c2b72: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
