/root/repo/target/debug/deps/blockpart_core-0fa6683f8a862441.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/experiments.rs crates/core/src/methods.rs crates/core/src/runtime_study.rs crates/core/src/study.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart_core-0fa6683f8a862441.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/experiments.rs crates/core/src/methods.rs crates/core/src/runtime_study.rs crates/core/src/study.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/experiments.rs:
crates/core/src/methods.rs:
crates/core/src/runtime_study.rs:
crates/core/src/study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
