//! The open execution-engine API: [`EngineRegistry`].
//!
//! The runtime executes every intra-shard transaction through a
//! pluggable [`ExecutionEngine`](blockpart_ethereum::ExecutionEngine)
//! behind an [`ExecHandle`]. This registry resolves engines by name —
//! the same spec-string convention as the
//! [`StrategyRegistry`](crate::StrategyRegistry): lookup is
//! case-insensitive and ignores `-`/`_`, and a spec may parameterize the
//! engine as `name[key=value;key=value]`.
//!
//! Two engines ship as built-ins:
//!
//! * `serial` — the historical one-at-a-time path (the default).
//! * `parallel[lanes=0;retry=4;window=32]` — the Block-STM-style
//!   optimistic scheduler (`block-stm` is an alias). `lanes=0` sizes the
//!   lane pool from the host (respecting `BLOCKPART_THREADS`).
//!
//! # Examples
//!
//! ```
//! use blockpart_core::EngineRegistry;
//!
//! let registry = EngineRegistry::with_builtins();
//! let engine = registry.resolve("parallel[lanes=2]").unwrap();
//! assert_eq!(engine.name(), "parallel[lanes=2;retry=4;window=32]");
//! assert_eq!(registry.resolve("SERIAL").unwrap().name(), "serial");
//! assert!(registry.resolve("no-such-engine").is_err());
//! ```

use std::sync::Arc;

use blockpart_ethereum::ExecHandle;
use blockpart_metrics::Table;

use crate::strategy::{normalize_name, StrategyError, StrategyParams};

/// An engine factory: builds a configured engine handle from parsed
/// parameters.
pub type EngineFactory = dyn Fn(&StrategyParams) -> Result<ExecHandle, StrategyError> + Send + Sync;

enum EntryKind {
    Factory(Arc<EngineFactory>),
    /// Late-bound alias: the normalized key of the target, resolved at
    /// lookup time so re-registering the target retargets the alias.
    Alias(String),
}

struct Entry {
    /// Normalized lookup key (`blockstm`).
    key: String,
    /// The spelling the engine was registered under (`block-stm`).
    display: String,
    description: String,
    params_help: String,
    kind: EntryKind,
}

/// Name → execution-engine resolution, mirroring
/// [`StrategyRegistry`](crate::StrategyRegistry).
///
/// # Examples
///
/// Registering a custom engine:
///
/// ```
/// use blockpart_core::EngineRegistry;
/// use blockpart_ethereum::{ExecHandle, SerialEngine};
///
/// let mut registry = EngineRegistry::with_builtins();
/// registry.register("careful", "serial, but audited", ExecHandle::new(SerialEngine));
/// assert_eq!(registry.resolve("careful").unwrap().name(), "serial");
/// ```
pub struct EngineRegistry {
    entries: Vec<Entry>,
}

impl std::fmt::Debug for EngineRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineRegistry")
            .field("engines", &self.names())
            .finish()
    }
}

impl EngineRegistry {
    /// An empty registry (no built-ins).
    pub fn empty() -> Self {
        EngineRegistry {
            entries: Vec::new(),
        }
    }

    /// A registry with the built-in engines: `serial`, `parallel` (with
    /// its `block-stm` alias).
    pub fn with_builtins() -> Self {
        let mut reg = EngineRegistry::empty();
        reg.register_factory(
            "serial",
            "one transaction at a time, in block order (the default)",
            "",
            |params| {
                params.ensure_known_as("engine", "serial", &[])?;
                Ok(ExecHandle::new(blockpart_ethereum::SerialEngine))
            },
        );
        reg.register_factory(
            "parallel",
            "Block-STM-style optimistic scheduler: speculate in parallel, \
             validate and commit in block order",
            "lanes=<n|0=auto>, retry=<n>, window=<n>",
            |params| {
                params.ensure_known_as("engine", "parallel", &["lanes", "retry", "window"])?;
                let mut engine = blockpart_ethereum::ParallelEngine::new();
                if let Some(lanes) = parse_count(params, "lanes")? {
                    engine = engine.with_lanes(lanes);
                }
                if let Some(retry) = parse_count(params, "retry")? {
                    engine = engine.with_retry(retry as u32);
                }
                if let Some(window) = params.usize("window")? {
                    engine = engine.with_window(window);
                }
                Ok(ExecHandle::new(engine))
            },
        );
        reg.register_alias("block-stm", "parallel");
        reg
    }

    /// Registers a fixed engine under `name`, replacing any existing
    /// entry with the same (normalized) name. The entry rejects
    /// parameters; use [`register_factory`](Self::register_factory) for
    /// parameterized engines.
    pub fn register(&mut self, name: &str, description: &str, engine: ExecHandle) {
        let owned_name = name.to_string();
        self.register_factory(name, description, "", move |params| {
            params.ensure_known_as("engine", &owned_name, &[])?;
            Ok(engine.clone())
        });
    }

    /// Registers a parameterized engine factory under `name`, replacing
    /// any existing entry with the same (normalized) name. `params_help`
    /// is the human-readable parameter summary shown by
    /// [`help_table`](Self::help_table) (empty for none).
    pub fn register_factory(
        &mut self,
        name: &str,
        description: &str,
        params_help: &str,
        factory: impl Fn(&StrategyParams) -> Result<ExecHandle, StrategyError> + Send + Sync + 'static,
    ) {
        let key = normalize_name(name);
        assert!(!key.is_empty(), "engine name must be non-empty");
        self.entries.retain(|e| e.key != key);
        self.entries.push(Entry {
            key,
            display: name.trim().to_string(),
            description: description.to_string(),
            params_help: params_help.to_string(),
            kind: EntryKind::Factory(Arc::new(factory)),
        });
    }

    /// Registers `alias` to resolve exactly like `target`. The binding
    /// is late: re-registering `target` retargets the alias too.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not registered.
    pub fn register_alias(&mut self, alias: &str, target: &str) {
        let target_entry = self
            .entry(target)
            .unwrap_or_else(|| panic!("alias target `{target}` is not registered"));
        let description = format!("alias of {}", target_entry.display);
        let target_key = target_entry.key.clone();
        let key = normalize_name(alias);
        assert!(!key.is_empty(), "engine name must be non-empty");
        self.entries.retain(|e| e.key != key);
        self.entries.push(Entry {
            key,
            display: alias.trim().to_string(),
            description,
            params_help: String::new(),
            kind: EntryKind::Alias(target_key),
        });
    }

    fn entry(&self, name: &str) -> Option<&Entry> {
        let key = normalize_name(name);
        self.entries.iter().find(|e| e.key == key)
    }

    /// `true` when `name` resolves (ignoring parameters).
    pub fn contains(&self, name: &str) -> bool {
        self.entry(name).is_some()
    }

    /// The registered engine names as they were registered (registration
    /// order, aliases included).
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.display.as_str()).collect()
    }

    /// Resolves one spec string: `name` or `name[key=value;key=value]`.
    pub fn resolve(&self, spec: &str) -> Result<ExecHandle, StrategyError> {
        let spec = spec.trim();
        let (name, params) = match spec.split_once('[') {
            None => (spec, StrategyParams::default()),
            Some((name, rest)) => {
                let Some(body) = rest.strip_suffix(']') else {
                    return Err(StrategyError::new(format!(
                        "unclosed `[` in engine spec `{spec}`"
                    )));
                };
                (name.trim(), StrategyParams::parse(body)?)
            }
        };
        let Some(entry) = self.entry(name) else {
            return Err(StrategyError::new(format!(
                "unknown engine `{name}` (registered: {})",
                self.names().join(", ")
            )));
        };
        (self.factory_of(entry)?)(&params)
    }

    /// The factory behind an entry, following one alias hop.
    fn factory_of<'e>(&'e self, entry: &'e Entry) -> Result<&'e EngineFactory, StrategyError> {
        match &entry.kind {
            EntryKind::Factory(f) => Ok(f.as_ref()),
            EntryKind::Alias(target_key) => {
                let target = self.entries.iter().find(|e| e.key == *target_key);
                match target.map(|e| &e.kind) {
                    Some(EntryKind::Factory(f)) => Ok(f.as_ref()),
                    _ => Err(StrategyError::new(format!(
                        "alias `{}` points at `{target_key}`, which is no longer registered",
                        entry.display
                    ))),
                }
            }
        }
    }

    /// Renders the registry as a help table (engine, parameters,
    /// description).
    pub fn help_table(&self) -> Table {
        let mut t = Table::new(vec!["engine", "parameters", "description"]);
        for e in &self.entries {
            let params_help = match &e.kind {
                EntryKind::Factory(_) => e.params_help.clone(),
                EntryKind::Alias(target_key) => self
                    .entries
                    .iter()
                    .find(|t| t.key == *target_key)
                    .map(|t| t.params_help.clone())
                    .unwrap_or_default(),
            };
            t.row(vec![e.display.clone(), params_help, e.description.clone()]);
        }
        t
    }
}

impl Default for EngineRegistry {
    fn default() -> Self {
        EngineRegistry::with_builtins()
    }
}

/// Parses a non-negative count (unlike [`StrategyParams::usize`], zero
/// is allowed — `lanes=0` and `retry=0` are meaningful).
fn parse_count(params: &StrategyParams, key: &str) -> Result<Option<usize>, StrategyError> {
    params
        .get(key)
        .map(|v| {
            v.parse::<usize>().map_err(|_| {
                StrategyError::new(format!(
                    "parameter `{key}`: `{v}` is not a non-negative integer"
                ))
            })
        })
        .transpose()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_resolve_and_default_to_serial_semantics() {
        let reg = EngineRegistry::with_builtins();
        assert_eq!(reg.resolve("serial").unwrap().name(), "serial");
        assert_eq!(
            reg.resolve("parallel").unwrap().name(),
            "parallel[lanes=0;retry=4;window=32]"
        );
        assert!(reg.resolve("serial").unwrap().speculation_window() == 0);
        assert!(reg.resolve("parallel").unwrap().speculation_window() > 0);
    }

    #[test]
    fn lookup_is_name_normalized() {
        let reg = EngineRegistry::with_builtins();
        for name in ["SERIAL", " serial ", "se_rial"] {
            assert_eq!(reg.resolve(name).unwrap().name(), "serial", "{name}");
        }
        // block-stm aliases parallel, dash-insensitively
        assert!(reg
            .resolve("BlockSTM[lanes=3]")
            .unwrap()
            .name()
            .starts_with("parallel[lanes=3"));
    }

    #[test]
    fn parameters_configure_the_parallel_engine() {
        let reg = EngineRegistry::with_builtins();
        let e = reg.resolve("parallel[lanes=2;retry=0;window=8]").unwrap();
        assert_eq!(e.name(), "parallel[lanes=2;retry=0;window=8]");
        assert_eq!(e.speculation_window(), 8);
    }

    #[test]
    fn unknown_engines_and_params_error_naming_the_token() {
        let reg = EngineRegistry::with_builtins();
        let err = reg.resolve("bogus").expect_err("should fail").to_string();
        assert!(err.contains("bogus"), "{err}");
        assert!(err.contains("serial") && err.contains("parallel"), "{err}");
        let err = reg
            .resolve("serial[lanes=2]")
            .expect_err("should fail")
            .to_string();
        assert!(err.contains("does not take parameter"), "{err}");
        let err = reg
            .resolve("parallel[lanes=-1]")
            .expect_err("should fail")
            .to_string();
        assert!(err.contains("non-negative"), "{err}");
        assert!(reg.resolve("parallel[window=0]").is_err(), "window >= 1");
        assert!(reg.resolve("parallel[lanes=").is_err());
    }

    #[test]
    fn registration_replaces_and_aliases_follow() {
        let mut reg = EngineRegistry::with_builtins();
        let n = reg.names().len();
        reg.register(
            "parallel",
            "overridden",
            ExecHandle::new(blockpart_ethereum::SerialEngine),
        );
        assert_eq!(reg.names().len(), n, "replacement, not duplication");
        assert_eq!(reg.resolve("parallel").unwrap().name(), "serial");
        // the alias is late-bound: it sees the replacement
        assert_eq!(reg.resolve("block-stm").unwrap().name(), "serial");
        assert!(reg.help_table().render_ascii().contains("overridden"));
    }
}
