/root/repo/target/debug/deps/blockpart_types-cde9a6f8f1321d39.d: crates/types/src/lib.rs crates/types/src/address.rs crates/types/src/quantity.rs crates/types/src/shard.rs crates/types/src/time.rs

/root/repo/target/debug/deps/libblockpart_types-cde9a6f8f1321d39.rmeta: crates/types/src/lib.rs crates/types/src/address.rs crates/types/src/quantity.rs crates/types/src/shard.rs crates/types/src/time.rs

crates/types/src/lib.rs:
crates/types/src/address.rs:
crates/types/src/quantity.rs:
crates/types/src/shard.rs:
crates/types/src/time.rs:
