/root/repo/target/release/deps/blockpart-b490e45c914716b8.d: src/lib.rs

/root/repo/target/release/deps/libblockpart-b490e45c914716b8.rlib: src/lib.rs

/root/repo/target/release/deps/libblockpart-b490e45c914716b8.rmeta: src/lib.rs

src/lib.rs:
