//! `blockpart` — command-line front end for the partitioning study.
//!
//! ```text
//! blockpart generate --scale 0.001 --seed 42 --out trace.txt
//! blockpart study    --scale 0.001 --seed 42 --strategies hash,metis --shards 2,8
//! blockpart study    --strategies "r-metis[window=7],tr-metis[cut=0.4]" --json
//! blockpart offline  --scale 0.001 --shards 2     # streaming vs multilevel
//! blockpart runtime  --scale 0.001 --shards 1,2,4 # 2PC execution replay
//! blockpart runtime  --trace out.json --metrics metrics.txt
//! blockpart live     --strategy tr-metis --k 4    # online repartitioning
//! blockpart live     --strategy tr-metis --k 4 --json --trace live.json
//! blockpart profile  --scale 0.001 --shards 2,4   # stage → time self-profile
//! blockpart study    --scenario "hub-burst[contracts=3]" --strategy tr-metis
//! blockpart live     --scenario phase-shift        # hostile workload, live
//! blockpart runtime  --exec "parallel[lanes=4]"    # Block-STM execution
//! blockpart list-strategies
//! blockpart list-scenarios
//! blockpart list-engines
//! blockpart help
//! ```
//!
//! Strategy names are resolved through the
//! [`StrategyRegistry`](blockpart::core::StrategyRegistry): the built-ins
//! plus anything a spec string parameterizes (`name[key=value;...]`).
//! Adversarial workloads resolve the same way through the
//! [`ScenarioRegistry`](blockpart::core::ScenarioRegistry) (`--scenario`),
//! and `+` composes scenarios: `hub-burst[contracts=2]+dummy-spam`.
//! Intra-shard execution engines resolve through the
//! [`EngineRegistry`](blockpart::core::EngineRegistry) (`--exec`); every
//! engine commits byte-identical results, so the flag changes measured
//! speculation counters and wall-clock, never outcomes.

use std::collections::HashMap;
use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

use std::sync::Arc;

use blockpart::core::ablation::{offline_partitioner_comparison, offline_table};
use blockpart::core::{
    run_profile, EngineRegistry, Experiment, ExperimentReport, ScenarioRegistry, ScenarioSpec,
    StrategyRegistry,
};
use blockpart::ethereum::gen::{ChainGenerator, GeneratorConfig};
use blockpart::graph::io::write_trace;
use blockpart::live::{LiveConfig, LiveRunner};
use blockpart::obs::perfetto;
use blockpart::storage::{SegmentStore, DEFAULT_SEGMENT_EVENTS};
use blockpart::types::{parse_mem_budget, Duration, ShardCount, SpillSession, StorageBackend};

const USAGE: &str = "\
blockpart — blockchain-graph sharding study (Fynn & Pedone, DSN 2018)

USAGE:
    blockpart <command> [--key value ...]

COMMANDS:
    generate   synthesize a 30-month chain and write its trace
               --scale <f64>   rate fraction        (default 0.0012)
               --seed <u64>    generator seed        (default 42)
               --out <path>    trace file            (default trace.txt)
               --scenario <s>  overlay an adversarial workload scenario,
                               `name[key=value;...]`, `+` composes
                               (default none: the friendly chain)
               --mem-budget <size>  spill to disk under this budget
                               (e.g. 512m, 2g): the chain streams
                               block-by-block through an on-disk segment
                               store, never holding the full log
                               (default: BLOCKPART_MEM_BUDGET, else
                               everything resident)
               --spill-dir <path>   spill root (default:
                               BLOCKPART_SPILL_DIR, else system temp)
    study      run partitioning strategies over a synthetic chain
               --scale, --seed, --scenario as above
               --mem-budget, --spill-dir as above (the offline stage then
               streams the workload from disk segments)
               --strategies <s,..>  strategy specs, `all` for the paper's
                                    five; parameterize with
                                    name[key=value;...]   (default all)
               --shards <k,..>      shard counts          (default 2,4,8)
               --json               machine-readable ExperimentReport
               --trace <path>       write a Chrome/Perfetto trace_event
                                    JSON of the run
               --metrics <path>     write a flat metrics text dump
    offline    one-shot partitioner comparison on the final graph
               --scale, --seed as above
               --shards <k>     single shard count     (default 2)
    runtime    execute the chain on each strategy's assignment through the
               sharded 2PC runtime and report coordination costs
               --scale, --seed, --scenario as above
               --mem-budget, --spill-dir as above (2PC state shipping then
               serializes through an on-disk account-state spool)
               --strategies <s,..>  (default hash,metis)
               --shards <k,..>   shard counts           (default 1,2,4)
               --latency-us <n>  one-way net latency    (default 1000)
               --arrival-us <n>  arrival gap / offered load (default 500)
               --exec <e>        intra-shard execution engine,
                                 `name[key=value;...]` — see list-engines
                                 (default serial; results are
                                 byte-identical across engines)
               --json            machine-readable ExperimentReport
               --trace <path>    Perfetto trace_event JSON (the replay's
                                 virtual-clock slice is deterministic)
               --metrics <path>  flat metrics text dump
    live       drive the chain's transaction stream through the online
               repartitioning service: windowed decaying graph, the
               strategy's trigger policy, and real 2PC state migrations,
               starting from hash placement
               --scale, --seed, --scenario as above
               --mem-budget, --spill-dir as above (migration batches then
               serialize through the on-disk spool)
               --strategy <s>    partitioner/trigger strategy spec
                                                      (default tr-metis)
               --k <n>           shard count           (default 4)
               --window-hours <n> measurement window   (default 4)
               --latency-us <n>  one-way net latency   (default 1000)
               --arrival-us <n>  arrival gap / offered load (default 500)
               --exec <e>        intra-shard execution engine (default
                                 serial)
               --json            machine-readable MigrationReport
               --trace <path>    Perfetto trace_event JSON of the live
                                 session (virtual-clock, deterministic)
    profile    self-profile the serial pipeline (chain-gen → graph-build →
               csr → partition → simulate → replay) and print the
               stage → time table
               --scale, --seed as above
               --strategies <s,..>  (default hash,metis)
               --shards <k,..>   shard counts           (default 2,4)
               --no-replay       skip the 2PC replay stage
               --no-obs          run uninstrumented, print wall time only
                                 (for overhead comparison)
               --trace <path>    Perfetto trace_event JSON of the profile
               --metrics <path>  flat metrics text dump
    list-strategies
               print the registered strategies and their parameters
    list-scenarios
               print the registered adversarial scenarios and their
               parameters
    list-engines
               print the registered intra-shard execution engines and
               their parameters
    help       print this message

`--methods` and `--strategy` are accepted as aliases of `--strategies`.
";

/// Options that are flags (no value follows them).
const FLAG_OPTIONS: &[&str] = &["json", "no-obs", "no-replay"];

fn main() -> ExitCode {
    let registry = StrategyRegistry::with_builtins();
    let scenarios = ScenarioRegistry::with_builtins();
    let engines = EngineRegistry::with_builtins();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&registry, &scenarios, &engines, &args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            eprintln!("STRATEGIES:\n{}", registry.help_table().render_ascii());
            eprintln!("SCENARIOS:\n{}", scenarios.help_table().render_ascii());
            eprintln!("ENGINES:\n{}", engines.help_table().render_ascii());
            ExitCode::FAILURE
        }
    }
}

fn run(
    registry: &StrategyRegistry,
    scenarios: &ScenarioRegistry,
    engines: &EngineRegistry,
    args: &[String],
) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("missing command".into());
    };
    let opts = parse_options(&args[1..])?;
    match command.as_str() {
        "generate" => {
            ensure_known_options(
                &opts,
                "generate",
                &[
                    "scale",
                    "seed",
                    "out",
                    "scenario",
                    "mem-budget",
                    "spill-dir",
                ],
            )?;
            cmd_generate(scenarios, &opts)
        }
        "study" => {
            ensure_known_options(
                &opts,
                "study",
                &[
                    "scale",
                    "seed",
                    "scenario",
                    "strategies",
                    "methods",
                    "strategy",
                    "shards",
                    "json",
                    "trace",
                    "metrics",
                    "mem-budget",
                    "spill-dir",
                ],
            )?;
            cmd_study(registry, scenarios, &opts)
        }
        "offline" => {
            ensure_known_options(&opts, "offline", &["scale", "seed", "shards"])?;
            cmd_offline(&opts)
        }
        "runtime" => {
            ensure_known_options(
                &opts,
                "runtime",
                &[
                    "scale",
                    "seed",
                    "scenario",
                    "strategies",
                    "methods",
                    "strategy",
                    "shards",
                    "latency-us",
                    "arrival-us",
                    "exec",
                    "json",
                    "trace",
                    "metrics",
                    "mem-budget",
                    "spill-dir",
                ],
            )?;
            cmd_runtime(registry, scenarios, engines, &opts)
        }
        "live" => {
            ensure_known_options(
                &opts,
                "live",
                &[
                    "scale",
                    "seed",
                    "scenario",
                    "strategy",
                    "k",
                    "shards",
                    "window-hours",
                    "latency-us",
                    "arrival-us",
                    "exec",
                    "json",
                    "trace",
                    "mem-budget",
                    "spill-dir",
                ],
            )?;
            cmd_live(registry, scenarios, engines, &opts)
        }
        "profile" => {
            ensure_known_options(
                &opts,
                "profile",
                &[
                    "scale",
                    "seed",
                    "strategies",
                    "methods",
                    "shards",
                    "no-replay",
                    "no-obs",
                    "trace",
                    "metrics",
                ],
            )?;
            cmd_profile(registry, &opts)
        }
        "list-strategies" => {
            ensure_known_options(&opts, "list-strategies", &[])?;
            println!("{}", registry.help_table().render_ascii());
            Ok(())
        }
        "list-scenarios" => {
            ensure_known_options(&opts, "list-scenarios", &[])?;
            println!("{}", scenarios.help_table().render_ascii());
            Ok(())
        }
        "list-engines" => {
            ensure_known_options(&opts, "list-engines", &[])?;
            println!("{}", engines.help_table().render_ascii());
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            println!("STRATEGIES:\n{}", registry.help_table().render_ascii());
            println!("SCENARIOS:\n{}", scenarios.help_table().render_ascii());
            println!("ENGINES:\n{}", engines.help_table().render_ascii());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Parses `--key value` pairs (and bare `--flag` options).
fn parse_options(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --option, found `{key}`"));
        };
        if FLAG_OPTIONS.contains(&name) {
            opts.insert(name.to_string(), "true".to_string());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(format!("--{name} requires a value"));
        };
        opts.insert(name.to_string(), value.clone());
    }
    Ok(opts)
}

/// Rejects options the subcommand does not understand, naming the
/// offending token.
fn ensure_known_options(
    opts: &HashMap<String, String>,
    command: &str,
    allowed: &[&str],
) -> Result<(), String> {
    let mut unknown: Vec<&str> = opts
        .keys()
        .map(String::as_str)
        .filter(|k| !allowed.contains(k))
        .collect();
    unknown.sort_unstable();
    match unknown.first() {
        None => Ok(()),
        Some(token) => Err(format!(
            "unknown option `--{token}` for `{command}` (accepted: {})",
            if allowed.is_empty() {
                "none".to_string()
            } else {
                allowed
                    .iter()
                    .map(|o| format!("--{o}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        )),
    }
}

fn scale_of(opts: &HashMap<String, String>) -> Result<f64, String> {
    match opts.get("scale") {
        None => Ok(0.0012),
        Some(s) => s
            .parse::<f64>()
            .ok()
            .filter(|&v| v > 0.0)
            .ok_or_else(|| format!("invalid --scale `{s}`")),
    }
}

fn seed_of(opts: &HashMap<String, String>) -> Result<u64, String> {
    match opts.get("seed") {
        None => Ok(42),
        Some(s) => s.parse().map_err(|_| format!("invalid --seed `{s}`")),
    }
}

fn json_of(opts: &HashMap<String, String>) -> bool {
    opts.contains_key("json")
}

/// The strategy spec string: `--strategies`, its `--methods` and
/// `--strategy` aliases, or the given default. Passing more than one of
/// the flags is an error — silently preferring one would drop the
/// other's strategies.
fn strategy_spec_of<'a>(
    opts: &'a HashMap<String, String>,
    default: &'a str,
) -> Result<&'a str, String> {
    let given: Vec<(&str, &'a String)> = ["strategies", "methods", "strategy"]
        .iter()
        .filter_map(|&flag| opts.get(flag).map(|v| (flag, v)))
        .collect();
    match given.as_slice() {
        [] => Ok(default),
        [(_, value)] => Ok(value),
        many => {
            let flags: Vec<String> = many.iter().map(|(flag, _)| format!("--{flag}")).collect();
            Err(format!(
                "{} given; use one (--methods and --strategy are aliases of --strategies)",
                flags.join(" and ")
            ))
        }
    }
}

fn shards_of(opts: &HashMap<String, String>, default: &[u16]) -> Result<Vec<ShardCount>, String> {
    let spec = match opts.get("shards") {
        None => {
            return default
                .iter()
                .map(|&k| ShardCount::new(k).ok_or_else(|| "zero shard count".to_string()))
                .collect()
        }
        Some(s) => s,
    };
    spec.split(',')
        .map(|s| {
            s.trim()
                .parse::<u16>()
                .ok()
                .and_then(ShardCount::new)
                .ok_or_else(|| format!("invalid shard count `{s}`"))
        })
        .collect()
}

/// Resolves the storage backend from `--mem-budget` / `--spill-dir`,
/// falling back to `BLOCKPART_MEM_BUDGET` / `BLOCKPART_SPILL_DIR`
/// ([`StorageBackend::from_env`]). `--spill-dir` without any budget is an
/// error — a root with nothing to spill is a misconfiguration.
fn storage_of(opts: &HashMap<String, String>) -> Result<StorageBackend, String> {
    let budget = match opts.get("mem-budget") {
        None => None,
        Some(s) => Some(parse_mem_budget(s).ok_or_else(|| format!("invalid --mem-budget `{s}`"))?),
    };
    let dir = opts.get("spill-dir").map(std::path::PathBuf::from);
    match (budget, dir) {
        (Some(budget), dir) => {
            let root = dir
                .or_else(|| std::env::var_os(blockpart::types::SPILL_DIR_ENV).map(Into::into))
                .unwrap_or_else(std::env::temp_dir);
            Ok(StorageBackend::spill(root, budget))
        }
        (None, Some(dir)) => match StorageBackend::from_env() {
            StorageBackend::Spill {
                mem_budget_bytes, ..
            } => Ok(StorageBackend::spill(dir, mem_budget_bytes)),
            StorageBackend::InMemory => {
                Err("--spill-dir requires --mem-budget (or BLOCKPART_MEM_BUDGET)".into())
            }
        },
        (None, None) => Ok(StorageBackend::from_env()),
    }
}

/// Resolves `--exec` (a `name[key=value;...]` spec) through the engine
/// registry; `None` means each strategy's default (the serial engine).
fn exec_of(
    engines: &EngineRegistry,
    opts: &HashMap<String, String>,
) -> Result<Option<blockpart::ethereum::ExecHandle>, String> {
    match opts.get("exec") {
        None => Ok(None),
        Some(spec) => engines.resolve(spec).map(Some).map_err(|e| e.to_string()),
    }
}

/// Resolves `--scenario` (a `name[key=value;...]` spec, `+`-composable)
/// through the scenario registry; `None` means the friendly chain.
fn scenario_of(
    scenarios: &ScenarioRegistry,
    opts: &HashMap<String, String>,
) -> Result<Option<Arc<dyn ScenarioSpec>>, String> {
    match opts.get("scenario") {
        None => Ok(None),
        Some(spec) => scenarios.compose(spec).map(Some).map_err(|e| e.to_string()),
    }
}

fn generate(
    opts: &HashMap<String, String>,
    scenario: Option<&Arc<dyn ScenarioSpec>>,
) -> Result<blockpart::ethereum::SyntheticChain, String> {
    let scale = scale_of(opts)?;
    let seed = seed_of(opts)?;
    match scenario {
        Some(s) => eprintln!(
            "generating 30-month history (scale {scale}, seed {seed}, scenario {})...",
            s.name()
        ),
        None => eprintln!("generating 30-month history (scale {scale}, seed {seed})..."),
    }
    let config = GeneratorConfig::demo_scale(seed).with_scale(scale);
    let chain = match scenario {
        Some(s) => s.build(&config),
        None => ChainGenerator::new(config).generate(),
    };
    eprintln!(
        "  {} transactions, {} interactions, {} contracts",
        chain.chain.tx_count(),
        chain.log.len(),
        chain.chain.world().contract_count()
    );
    Ok(chain)
}

fn cmd_generate(
    scenarios: &ScenarioRegistry,
    opts: &HashMap<String, String>,
) -> Result<(), String> {
    let scenario = scenario_of(scenarios, opts)?;
    let storage = storage_of(opts)?;
    let default_out = "trace.txt".to_string();
    let out = opts.get("out").unwrap_or(&default_out);
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    // Scenario injectors need the resident chain; the plain generator can
    // stream block-by-block through an on-disk segment store, so the full
    // log is never in memory.
    if storage.is_spill() && scenario.is_none() {
        let scale = scale_of(opts)?;
        let seed = seed_of(opts)?;
        eprintln!("generating 30-month history (scale {scale}, seed {seed}, {storage})...");
        let root = storage.spill_dir().expect("spill backend has a root");
        let session = SpillSession::create(root).map_err(|e| format!("spill session: {e}"))?;
        let io = |e| format!("segment store: {e}");
        let mut writer =
            SegmentStore::writer(session.path().join("events"), DEFAULT_SEGMENT_EVENTS)
                .map_err(io)?;
        let config = GeneratorConfig::demo_scale(seed).with_scale(scale);
        ChainGenerator::new(config)
            .generate_into(&mut writer)
            .map_err(io)?;
        let store = writer.finish().map_err(io)?;
        eprintln!(
            "  {} interactions across {} segments",
            store.event_count(),
            store.segment_count()
        );
        let events = store
            .iter()
            .map_err(io)?
            .map(|r| r.expect("re-read freshly written segment"));
        blockpart::graph::io::write_trace_events(BufWriter::new(file), events)
            .map_err(|e| format!("write failed: {e}"))?;
        session
            .finish()
            .map_err(|e| format!("spill cleanup: {e}"))?;
    } else {
        let chain = generate(opts, scenario.as_ref())?;
        write_trace(BufWriter::new(file), &chain.log).map_err(|e| format!("write failed: {e}"))?;
    }
    eprintln!("wrote {out}");
    Ok(())
}

fn write_text(path: &str, content: &str) -> Result<(), String> {
    std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Whether `--trace` or `--metrics` asked for instrumentation.
fn tracing_requested(opts: &HashMap<String, String>) -> bool {
    opts.contains_key("trace") || opts.contains_key("metrics")
}

/// Validates `trace` against the `trace_event` schema and writes it.
fn write_perfetto(path: &str, trace: &blockpart::obs::Trace) -> Result<(), String> {
    let doc = perfetto::to_perfetto(trace);
    let events = perfetto::validate(&doc)
        .map_err(|e| format!("internal: exported trace failed validation: {e}"))?;
    write_text(path, &doc.render())?;
    eprintln!("wrote {events}-event trace to {path}");
    Ok(())
}

/// Writes `--trace` / `--metrics` exports from a traced experiment.
/// With `virtual_only`, the trace export keeps only virtual-clock
/// records — the deterministic slice (same seed + config ⇒ identical
/// bytes), which is what `runtime --trace` promises.
fn export_observability(
    report: &ExperimentReport,
    opts: &HashMap<String, String>,
    virtual_only: bool,
) -> Result<(), String> {
    let trace = report.trace.as_ref().expect("tracing was enabled");
    if let Some(path) = opts.get("trace") {
        let export = if virtual_only {
            trace.virtual_only()
        } else {
            trace.clone()
        };
        write_perfetto(path, &export)?;
    }
    if let Some(path) = opts.get("metrics") {
        write_text(path, &trace.metrics_text())?;
        eprintln!("wrote metrics to {path}");
    }
    Ok(())
}

fn print_report(report: &ExperimentReport, json: bool, runtime: bool) {
    if json {
        println!("{}", report.to_json_pretty());
    } else if runtime {
        println!("{}", report.runtime_table().render_ascii());
    } else {
        println!("{}", report.offline_table().render_ascii());
    }
}

fn cmd_study(
    registry: &StrategyRegistry,
    scenarios: &ScenarioRegistry,
    opts: &HashMap<String, String>,
) -> Result<(), String> {
    // validate all options before the (expensive) generation
    let spec = strategy_spec_of(opts, "all")?;
    registry.resolve_list(spec).map_err(|e| e.to_string())?;
    let scenario = scenario_of(scenarios, opts)?;
    let storage = storage_of(opts)?;
    let shards = shards_of(opts, &[2, 4, 8])?;
    let seed = seed_of(opts)?;
    let scale = scale_of(opts)?;
    match &scenario {
        Some(s) => eprintln!(
            "study over 30-month history (scale {scale}, seed {seed}, scenario {}, {storage})...",
            s.name()
        ),
        None => {
            eprintln!("study over 30-month history (scale {scale}, seed {seed}, {storage})...")
        }
    }
    // A generator workload lets the pipeline synthesize straight into the
    // spill backend's segment store when one is configured; resident runs
    // produce the identical report.
    let mut experiment =
        Experiment::from_generator(GeneratorConfig::demo_scale(seed).with_scale(scale))
            .named_strategies(registry, spec)
            .map_err(|e| e.to_string())?
            .shard_counts(shards)
            .seed(seed)
            .storage(storage)
            .trace(tracing_requested(opts));
    if let Some(scenario) = scenario {
        experiment = experiment.scenario(scenario);
    }
    let report = experiment.run();
    print_report(&report, json_of(opts), false);
    if tracing_requested(opts) {
        export_observability(&report, opts, false)?;
    }
    Ok(())
}

fn cmd_offline(opts: &HashMap<String, String>) -> Result<(), String> {
    let shards = shards_of(opts, &[2])?;
    let k = *shards.first().ok_or("need one shard count")?;
    let chain = generate(opts, None)?;
    let rows = offline_partitioner_comparison(&chain.log, k);
    println!("{}", offline_table(&rows).render_ascii());
    Ok(())
}

fn micros_of(opts: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("invalid --{key} `{s}`")),
    }
}

fn cmd_runtime(
    registry: &StrategyRegistry,
    scenarios: &ScenarioRegistry,
    engines: &EngineRegistry,
    opts: &HashMap<String, String>,
) -> Result<(), String> {
    // validate all options before the (expensive) generation
    let spec = strategy_spec_of(opts, "hash,metis")?;
    registry.resolve_list(spec).map_err(|e| e.to_string())?;
    let scenario = scenario_of(scenarios, opts)?;
    let exec = exec_of(engines, opts)?;
    let shards = shards_of(opts, &[1, 2, 4])?;
    let seed = seed_of(opts)?;
    let latency_us = micros_of(opts, "latency-us", 1_000)?;
    let arrival_us = micros_of(opts, "arrival-us", 500)?;
    let storage = storage_of(opts)?;
    let chain = generate(opts, scenario.as_ref())?;
    let mut experiment = Experiment::over_chain(&chain)
        .named_strategies(registry, spec)
        .map_err(|e| e.to_string())?
        .shard_counts(shards.clone())
        .seed(seed)
        .offline(false)
        .replay(true)
        .net_latency_us(latency_us)
        .inter_arrival_us(arrival_us)
        .storage(storage)
        .trace(tracing_requested(opts));
    if let Some(engine) = exec {
        experiment = experiment.with_exec(engine);
    }
    let report = experiment.run();
    print_report(&report, json_of(opts), true);
    if tracing_requested(opts) {
        // virtual-only: the exported replay trace is deterministic.
        export_observability(&report, opts, true)?;
    }
    if !json_of(opts) {
        // the headline the study exists to show: a better cut means fewer
        // transactions pay the 2PC coordination tax
        for &k in &shards {
            if k.get() < 2 {
                continue;
            }
            if let (Some(hash), Some(metis)) =
                (report.runtime("hash", k), report.runtime("metis", k))
            {
                println!(
                    "k={}: cross-shard ratio hash {:.1}% vs metis {:.1}%",
                    k.get(),
                    hash.cross_shard_ratio * 100.0,
                    metis.cross_shard_ratio * 100.0
                );
            }
        }
    }
    Ok(())
}

fn cmd_live(
    registry: &StrategyRegistry,
    scenarios: &ScenarioRegistry,
    engines: &EngineRegistry,
    opts: &HashMap<String, String>,
) -> Result<(), String> {
    // validate all options before the (expensive) generation
    let spec_str = opts.get("strategy").map_or("tr-metis", String::as_str);
    let spec = registry.resolve(spec_str).map_err(|e| e.to_string())?;
    let scenario = scenario_of(scenarios, opts)?;
    let exec = exec_of(engines, opts)?;
    let k = match (opts.get("k"), opts.get("shards")) {
        (Some(_), Some(_)) => return Err("both --k and --shards given; use one".into()),
        (None, None) => ShardCount::new(4).expect("non-zero"),
        (Some(s), None) | (None, Some(s)) => s
            .trim()
            .parse::<u16>()
            .ok()
            .and_then(ShardCount::new)
            .ok_or_else(|| format!("invalid shard count `{s}`"))?,
    };
    let window_hours = micros_of(opts, "window-hours", 4)?;
    if window_hours == 0 {
        return Err("--window-hours must be positive".into());
    }
    let window = Duration::hours(window_hours);
    let seed = seed_of(opts)?;
    let latency_us = micros_of(opts, "latency-us", 1_000)?;
    let arrival_us = micros_of(opts, "arrival-us", 500)?;
    let storage = storage_of(opts)?;
    let chain = generate(opts, scenario.as_ref())?;

    // the strategy's own trigger/scope settings drive the live loop
    let sim_cfg = spec.simulator_config(k);
    let depth = (sim_cfg.scope_window.as_secs() / window.as_secs()).max(1) as usize;
    let mut runtime_cfg = spec
        .runtime_config(k)
        .with_seed(seed)
        .with_net_latency_us(latency_us)
        .with_inter_arrival_us(arrival_us);
    runtime_cfg.k = k;
    if let Some(engine) = exec {
        runtime_cfg = runtime_cfg.with_exec(engine);
    }
    // with a spill backend, migration batches serialize through the
    // on-disk account-state spool (removed on success, kept on failure)
    let mut session = None;
    if let Some(root) = storage.spill_dir() {
        let s = SpillSession::create(root).map_err(|e| format!("spill session: {e}"))?;
        runtime_cfg = runtime_cfg.with_state_spool_dir(s.path().join("spool-live"));
        session = Some(s);
    }
    let cfg = LiveConfig::new(k)
        .with_window(window)
        .with_depth(depth)
        .with_policy(sim_cfg.policy)
        .with_runtime(runtime_cfg)
        .with_tracing(opts.contains_key("trace"))
        .with_label(spec.name());
    eprintln!(
        "live run: {} at k={}, {}h windows × depth {}...",
        spec.name(),
        k.get(),
        window_hours,
        depth
    );
    let mut runner = LiveRunner::new(cfg, spec.build_partitioner(seed));
    let run = runner.run(chain.chain.world(), &chain.txs);
    if json_of(opts) {
        println!("{}", run.report.json().render_pretty());
    } else {
        println!("{}", run.report.headline());
        if run.report.migrations() > 0 {
            println!("\nmigration episodes (foreground before/during/after):");
            println!("{}", run.report.episode_table().render_ascii());
        }
    }
    if let Some(path) = opts.get("trace") {
        write_perfetto(path, &run.session.finish())?;
    }
    if let Some(session) = session {
        session
            .finish()
            .map_err(|e| format!("spill cleanup: {e}"))?;
    }
    Ok(())
}

fn cmd_profile(registry: &StrategyRegistry, opts: &HashMap<String, String>) -> Result<(), String> {
    let spec = strategy_spec_of(opts, "hash,metis")?;
    registry.resolve_list(spec).map_err(|e| e.to_string())?;
    let shards = shards_of(opts, &[2, 4])?;
    let seed = seed_of(opts)?;
    let scale = scale_of(opts)?;
    let replay = !opts.contains_key("no-replay");
    let instrument = !opts.contains_key("no-obs");
    if !instrument && tracing_requested(opts) {
        return Err("--no-obs collects nothing; drop --trace/--metrics".into());
    }
    eprintln!("profiling pipeline (scale {scale}, seed {seed}, strategies {spec})...");
    let gen = GeneratorConfig::demo_scale(seed).with_scale(scale);
    let report = run_profile(
        registry,
        spec,
        &shards,
        gen,
        Duration::hours(4),
        seed,
        replay,
        instrument,
    )
    .map_err(|e| e.to_string())?;
    if instrument {
        println!("{}", report.table().render_ascii());
        println!(
            "stage coverage: {:.1}% of {:.2} ms wall",
            report.coverage() * 100.0,
            report.wall_us() as f64 / 1000.0
        );
        if let Some(path) = opts.get("trace") {
            write_perfetto(path, report.trace())?;
        }
        if let Some(path) = opts.get("metrics") {
            write_text(path, &report.trace().metrics_text())?;
            eprintln!("wrote metrics to {path}");
        }
    } else {
        println!(
            "wall: {:.2} ms (instrumentation disabled)",
            report.wall_us() as f64 / 1000.0
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn parse_options_pairs() {
        let args: Vec<String> = ["--scale", "0.5", "--seed", "7", "--json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_options(&args).unwrap();
        assert_eq!(o.get("scale").map(String::as_str), Some("0.5"));
        assert_eq!(o.get("seed").map(String::as_str), Some("7"));
        assert!(json_of(&o));
    }

    #[test]
    fn parse_options_rejects_bare_values() {
        let args = vec!["oops".to_string()];
        assert!(parse_options(&args).is_err());
        let dangling = vec!["--seed".to_string()];
        assert!(parse_options(&dangling).is_err());
    }

    #[test]
    fn unknown_options_name_the_token() {
        let o = opts(&[("scale", "0.5"), ("bogus", "1")]);
        let err = ensure_known_options(&o, "study", &["scale", "seed"]).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
        assert!(err.contains("study"), "{err}");
        assert!(err.contains("--scale"), "{err}");
        assert!(ensure_known_options(&o, "x", &["scale", "bogus"]).is_ok());
    }

    #[test]
    fn scale_and_seed_defaults() {
        let o = opts(&[]);
        assert_eq!(scale_of(&o).unwrap(), 0.0012);
        assert_eq!(seed_of(&o).unwrap(), 42);
        assert!(scale_of(&opts(&[("scale", "-1")])).is_err());
        assert!(seed_of(&opts(&[("seed", "x")])).is_err());
    }

    #[test]
    fn strategy_specs_resolve_via_registry() {
        let registry = StrategyRegistry::with_builtins();
        assert_eq!(
            registry
                .resolve_list(strategy_spec_of(&opts(&[]), "all").unwrap())
                .unwrap()
                .len(),
            5
        );
        let o = opts(&[("methods", "hash,tr-metis")]);
        let specs = registry
            .resolve_list(strategy_spec_of(&o, "all").unwrap())
            .unwrap();
        let names: Vec<&str> = specs.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["HASH", "TR-METIS"]);
        let o = opts(&[("strategies", "bogus")]);
        assert!(registry
            .resolve_list(strategy_spec_of(&o, "all").unwrap())
            .is_err());
    }

    #[test]
    fn conflicting_strategy_flags_error() {
        let o = opts(&[("strategies", "hash"), ("methods", "metis")]);
        let err = strategy_spec_of(&o, "all").unwrap_err();
        assert!(
            err.contains("--strategies") && err.contains("--methods"),
            "{err}"
        );
    }

    #[test]
    fn shards_parsing() {
        let s = shards_of(&opts(&[("shards", "2, 8")]), &[2]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[1].get(), 8);
        assert!(shards_of(&opts(&[("shards", "0")]), &[2]).is_err());
        assert_eq!(shards_of(&opts(&[]), &[2, 4]).unwrap().len(), 2);
    }

    #[test]
    fn unknown_command_errors() {
        let registry = StrategyRegistry::with_builtins();
        let scenarios = ScenarioRegistry::with_builtins();
        let engines = EngineRegistry::with_builtins();
        let err = run(&registry, &scenarios, &engines, &["frobnicate".to_string()]).unwrap_err();
        assert!(err.contains("frobnicate"), "{err}");
        assert!(run(&registry, &scenarios, &engines, &[]).is_err());
        // unknown option on a valid command names the token
        let args: Vec<String> = ["study", "--frob", "1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run(&registry, &scenarios, &engines, &args).unwrap_err();
        assert!(err.contains("--frob"), "{err}");
    }

    #[test]
    fn scenario_specs_resolve_before_generation() {
        let scenarios = ScenarioRegistry::with_builtins();
        assert!(scenario_of(&scenarios, &opts(&[])).unwrap().is_none());
        let o = opts(&[("scenario", "hub-burst[contracts=3]")]);
        let s = scenario_of(&scenarios, &o).unwrap().unwrap();
        assert_eq!(s.name(), "hub-burst[contracts=3]");
        let composed = opts(&[("scenario", "hub-burst+dummy-spam")]);
        assert!(scenario_of(&scenarios, &composed).unwrap().is_some());
        let bogus = opts(&[("scenario", "bogus")]);
        match scenario_of(&scenarios, &bogus) {
            Ok(_) => panic!("bogus scenario resolved"),
            Err(err) => assert!(err.contains("bogus"), "{err}"),
        }
    }

    #[test]
    fn strategy_alias_flag_resolves_like_strategies() {
        let o = opts(&[("strategy", "tr-metis")]);
        assert_eq!(strategy_spec_of(&o, "all").unwrap(), "tr-metis");
        let conflict = opts(&[("strategies", "hash"), ("strategy", "metis")]);
        let err = strategy_spec_of(&conflict, "all").unwrap_err();
        assert!(err.contains("--strategy"), "{err}");
        assert!(err.contains("--strategies"), "{err}");
    }
}
