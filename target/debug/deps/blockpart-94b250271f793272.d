/root/repo/target/debug/deps/blockpart-94b250271f793272.d: src/bin/blockpart.rs

/root/repo/target/debug/deps/blockpart-94b250271f793272: src/bin/blockpart.rs

src/bin/blockpart.rs:
