/root/repo/target/debug/deps/blockpart_types-994f0f6d72b2ea03.d: crates/types/src/lib.rs crates/types/src/address.rs crates/types/src/quantity.rs crates/types/src/shard.rs crates/types/src/time.rs

/root/repo/target/debug/deps/libblockpart_types-994f0f6d72b2ea03.rlib: crates/types/src/lib.rs crates/types/src/address.rs crates/types/src/quantity.rs crates/types/src/shard.rs crates/types/src/time.rs

/root/repo/target/debug/deps/libblockpart_types-994f0f6d72b2ea03.rmeta: crates/types/src/lib.rs crates/types/src/address.rs crates/types/src/quantity.rs crates/types/src/shard.rs crates/types/src/time.rs

crates/types/src/lib.rs:
crates/types/src/address.rs:
crates/types/src/quantity.rs:
crates/types/src/shard.rs:
crates/types/src/time.rs:
