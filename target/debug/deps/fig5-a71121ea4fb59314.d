/root/repo/target/debug/deps/fig5-a71121ea4fb59314.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-a71121ea4fb59314.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
