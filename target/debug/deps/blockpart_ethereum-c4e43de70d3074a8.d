/root/repo/target/debug/deps/blockpart_ethereum-c4e43de70d3074a8.d: crates/ethereum/src/lib.rs crates/ethereum/src/block.rs crates/ethereum/src/chain.rs crates/ethereum/src/evm/mod.rs crates/ethereum/src/evm/gas.rs crates/ethereum/src/evm/opcode.rs crates/ethereum/src/evm/vm.rs crates/ethereum/src/gen/mod.rs crates/ethereum/src/gen/era.rs crates/ethereum/src/gen/generator.rs crates/ethereum/src/gen/workload.rs crates/ethereum/src/pool.rs crates/ethereum/src/program.rs crates/ethereum/src/state.rs crates/ethereum/src/transaction.rs

/root/repo/target/debug/deps/blockpart_ethereum-c4e43de70d3074a8: crates/ethereum/src/lib.rs crates/ethereum/src/block.rs crates/ethereum/src/chain.rs crates/ethereum/src/evm/mod.rs crates/ethereum/src/evm/gas.rs crates/ethereum/src/evm/opcode.rs crates/ethereum/src/evm/vm.rs crates/ethereum/src/gen/mod.rs crates/ethereum/src/gen/era.rs crates/ethereum/src/gen/generator.rs crates/ethereum/src/gen/workload.rs crates/ethereum/src/pool.rs crates/ethereum/src/program.rs crates/ethereum/src/state.rs crates/ethereum/src/transaction.rs

crates/ethereum/src/lib.rs:
crates/ethereum/src/block.rs:
crates/ethereum/src/chain.rs:
crates/ethereum/src/evm/mod.rs:
crates/ethereum/src/evm/gas.rs:
crates/ethereum/src/evm/opcode.rs:
crates/ethereum/src/evm/vm.rs:
crates/ethereum/src/gen/mod.rs:
crates/ethereum/src/gen/era.rs:
crates/ethereum/src/gen/generator.rs:
crates/ethereum/src/gen/workload.rs:
crates/ethereum/src/pool.rs:
crates/ethereum/src/program.rs:
crates/ethereum/src/state.rs:
crates/ethereum/src/transaction.rs:
