/root/repo/target/debug/deps/fig3-a90111a7f262266b.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-a90111a7f262266b.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
