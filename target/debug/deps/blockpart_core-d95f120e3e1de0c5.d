/root/repo/target/debug/deps/blockpart_core-d95f120e3e1de0c5.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/experiments.rs crates/core/src/methods.rs crates/core/src/runtime_study.rs crates/core/src/study.rs

/root/repo/target/debug/deps/libblockpart_core-d95f120e3e1de0c5.rlib: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/experiments.rs crates/core/src/methods.rs crates/core/src/runtime_study.rs crates/core/src/study.rs

/root/repo/target/debug/deps/libblockpart_core-d95f120e3e1de0c5.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/experiments.rs crates/core/src/methods.rs crates/core/src/runtime_study.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/experiments.rs:
crates/core/src/methods.rs:
crates/core/src/runtime_study.rs:
crates/core/src/study.rs:
