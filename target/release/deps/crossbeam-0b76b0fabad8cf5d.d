/root/repo/target/release/deps/crossbeam-0b76b0fabad8cf5d.d: third_party/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-0b76b0fabad8cf5d.rlib: third_party/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-0b76b0fabad8cf5d.rmeta: third_party/crossbeam/src/lib.rs

third_party/crossbeam/src/lib.rs:
