/root/repo/target/debug/deps/serde-a92c5ead11d7b3d9.d: third_party/serde/src/lib.rs

/root/repo/target/debug/deps/serde-a92c5ead11d7b3d9: third_party/serde/src/lib.rs

third_party/serde/src/lib.rs:
