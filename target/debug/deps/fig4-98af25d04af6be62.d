/root/repo/target/debug/deps/fig4-98af25d04af6be62.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/libfig4-98af25d04af6be62.rmeta: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
