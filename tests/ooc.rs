//! Property tests for the out-of-core storage backend.
//!
//! Determinism-in-backend is the subsystem's core contract: wherever
//! both fit, the spill path must be **byte-identical** to the in-memory
//! path — across worker counts and down to pathological memory budgets
//! (smaller than a single segment's accumulation). These parity
//! properties run in the normal `cargo test` job, so CI gates the
//! contract on every push. The segment round-trip property pins the
//! BPSG on-disk format: write → read → re-write is lossless, including
//! the per-segment min/max time and block metadata that window pruning
//! relies on; a truncated tail segment surfaces as a named error, never
//! a panic.

use blockpart::graph::{Graph, Interaction, InteractionLog};
use blockpart::storage::{SegmentError, SegmentStore, SpillSession};
use blockpart::types::{AccountKind, Address, BlockNumber, StorageBackend, Timestamp};
use proptest::prelude::*;

/// Random time-ordered interaction streams over a small address space
/// (small enough that duplicate edges — the interesting merge case —
/// are common).
fn events_strategy(max_events: usize) -> impl Strategy<Value = Vec<Interaction>> {
    let event = (
        0u64..4,
        0u64..24,
        0u64..24,
        1u64..9,
        any::<bool>(),
        any::<bool>(),
    );
    proptest::collection::vec(event, 1..max_events).prop_map(|raw| {
        let mut time = 0u64;
        raw.into_iter()
            .map(|(dt, from, to, weight, from_contract, to_contract)| {
                time += dt;
                let kind = |c: bool| {
                    if c {
                        AccountKind::Contract
                    } else {
                        AccountKind::ExternallyOwned
                    }
                };
                Interaction {
                    time: Timestamp::from_secs(time),
                    from: Address::from_index(from),
                    to: Address::from_index(to),
                    weight,
                    from_kind: kind(from_contract),
                    to_kind: kind(to_contract),
                }
            })
            .collect()
    })
}

type NodeRow = (Address, AccountKind, u64);
type EdgeRow = (u32, u32, u64);

/// Everything observable about a graph, in deterministic order — two
/// graphs with equal fingerprints are byte-identical for every consumer.
fn fingerprint(g: &Graph) -> (Vec<NodeRow>, Vec<EdgeRow>) {
    let nodes = g.nodes().map(|n| (n.address, n.kind, n.weight)).collect();
    let edges = g
        .edges()
        .map(|e| (e.source.as_u32(), e.target.as_u32(), e.weight))
        .collect();
    (nodes, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // (a) Spill-backend graph + CSR builds are byte-identical to the
    // in-memory backend, across worker counts and budgets down to the
    // pathological one-entry accumulator (every edge spills its own run).
    #[test]
    fn spill_build_is_byte_identical_to_in_memory(
        events in events_strategy(150),
        workers in 1usize..4,
        budget in (0usize..3).prop_map(|i| [1u64, 64 * 1024, 1 << 30][i]),
    ) {
        let resident_graph = InteractionLog::graph_of_workers(&events, workers);
        let resident_csr = resident_graph.to_csr_workers(workers);

        let spill = StorageBackend::spill(std::env::temp_dir(), budget);
        let spilled_graph =
            InteractionLog::graph_of_backend(&events, &spill, workers).unwrap();
        prop_assert_eq!(fingerprint(&spilled_graph), fingerprint(&resident_graph));

        let spilled_csr = spilled_graph.to_csr_backend(&spill, workers).unwrap();
        prop_assert_eq!(spilled_csr, resident_csr);
    }

    // (b) Segment round-trip (write → read → re-write) is lossless,
    // including the per-segment min/max time and block metadata.
    #[test]
    fn segment_roundtrip_is_lossless(
        events in events_strategy(120),
        per_segment in 1usize..16,
        txs_per_block in 1u64..8,
    ) {
        let session = SpillSession::create(std::env::temp_dir()).unwrap();
        let block_of = |i: usize| BlockNumber::new(i as u64 / txs_per_block);

        let mut w = SegmentStore::writer(session.path().join("a"), per_segment).unwrap();
        for (i, &e) in events.iter().enumerate() {
            w.push(e, block_of(i)).unwrap();
        }
        let first = w.finish().unwrap();

        let read: Vec<Interaction> =
            first.iter().unwrap().collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(&read, &events);

        // the metadata matches the events each segment actually holds
        prop_assert_eq!(first.event_count(), events.len() as u64);
        for (s, meta) in first.segments().enumerate() {
            let lo = s * per_segment;
            let hi = (lo + per_segment).min(events.len());
            let slice = &events[lo..hi];
            prop_assert_eq!(meta.count, slice.len() as u64);
            prop_assert_eq!(meta.min_time, slice.iter().map(|e| e.time).min().unwrap());
            prop_assert_eq!(meta.max_time, slice.iter().map(|e| e.time).max().unwrap());
            prop_assert_eq!(meta.min_block, block_of(lo));
            prop_assert_eq!(meta.max_block, block_of(hi - 1));
        }

        // re-writing what was read reproduces the store exactly
        let mut w = SegmentStore::writer(session.path().join("b"), per_segment).unwrap();
        for (i, &e) in read.iter().enumerate() {
            w.push(e, block_of(i)).unwrap();
        }
        let second = w.finish().unwrap();
        let metas = |s: &SegmentStore| s.segments().copied().collect::<Vec<_>>();
        prop_assert_eq!(metas(&second), metas(&first));
        let rewritten: Vec<Interaction> =
            second.iter().unwrap().collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(rewritten, events);

        session.finish().unwrap();
    }
}

/// A truncated tail segment — the signature of a writer killed
/// mid-flush — is detected with a named error, not a panic.
#[test]
fn truncated_tail_segment_is_a_named_error() {
    let session = SpillSession::create(std::env::temp_dir()).unwrap();
    let dir = session.path().join("store");
    let mut w = SegmentStore::writer(&dir, 8).unwrap();
    for t in 0..20u64 {
        let e = Interaction::new(
            Timestamp::from_secs(t),
            Address::from_index(t % 5),
            Address::from_index((t + 1) % 5),
        );
        w.push(e, BlockNumber::new(t / 4)).unwrap();
    }
    drop(w.finish().unwrap());

    // chop bytes off the last segment file
    let mut segs: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segs.sort();
    let tail = segs.last().unwrap();
    let len = std::fs::metadata(tail).unwrap().len();
    std::fs::File::options()
        .write(true)
        .open(tail)
        .unwrap()
        .set_len(len - 7)
        .unwrap();

    let err = match SegmentStore::open(&dir) {
        Ok(store) => store
            .iter()
            .and_then(|rows| rows.collect::<Result<Vec<_>, _>>())
            .expect_err("truncated tail must not read back cleanly"),
        Err(e) => e,
    };
    assert!(
        matches!(
            err,
            SegmentError::Truncated { .. } | SegmentError::Corrupt { .. }
        ),
        "want a named truncation/corruption error, got: {err}"
    );
    session.finish().unwrap();
}
