/root/repo/target/debug/deps/properties-cb373dbfa2c38fa6.d: tests/properties.rs

/root/repo/target/debug/deps/properties-cb373dbfa2c38fa6: tests/properties.rs

tests/properties.rs:
