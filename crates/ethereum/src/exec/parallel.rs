//! The Block-STM-style optimistic parallel engine: speculative
//! execution over work-stealing lanes, read-set validation against the
//! committed prefix, re-execution on conflict, commit in block order.

use std::collections::HashSet;

use crossbeam::deque::{Injector, Steal};

use crate::exec::view::{speculate, Resource, Speculation};
use crate::exec::{record_metrics, BlockOutcome, ExecMetrics, ExecRequest, ExecutionEngine};
use crate::state::World;
use blockpart_obs::{Collector, Record, Trace};

/// One lane's haul: its index, the `(request index, speculation)` pairs
/// it stole, and how long it stayed busy (µs).
type LaneHaul = (usize, Vec<(usize, Speculation)>, u64);

/// Optimistic parallel intra-shard execution.
///
/// A block executes in *waves*: up to `window` transactions are executed
/// speculatively in parallel against the wave-start world — each on its
/// own copy-on-write [`OverlayView`](crate::exec::OverlayView), fanned
/// out over `lanes` work-stealing workers on the vendored `crossbeam`
/// deque — then committed in block order. Before a speculation commits,
/// its read/write footprint is validated against everything the wave
/// has committed ahead of it; a conflicting transaction is re-executed
/// serially against the up-to-date world. After `retry` re-executions
/// in one wave, the remainder of the wave skips validation and executes
/// serially (the conflict storm has made speculation pointless).
///
/// Receipts, world state, and every [`ExecMetrics`] counter depend only
/// on the block order and the wave geometry — never on the lane count
/// or thread timing — so results are byte-identical across `lanes`
/// values and reruns, with `lanes = 1` degrading to a sequential
/// speculate-validate-commit loop.
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::exec::{ExecutionEngine, ParallelEngine};
///
/// let engine = ParallelEngine::new().with_lanes(2).with_retry(8);
/// assert_eq!(engine.name(), "parallel[lanes=2;retry=8;window=32]");
/// assert_eq!(engine.speculation_window(), 32);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ParallelEngine {
    lanes: usize,
    retry: u32,
    window: usize,
}

impl ParallelEngine {
    /// Default configuration: auto-sized lanes (`0` = one per core,
    /// honoring `BLOCKPART_THREADS`), 4 re-executions per wave before
    /// the serial tail, 32-transaction waves.
    pub fn new() -> Self {
        ParallelEngine {
            lanes: 0,
            retry: 4,
            window: 32,
        }
    }

    /// Overrides the lane count (`0` = auto).
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Overrides the per-wave re-execution budget.
    pub fn with_retry(mut self, retry: u32) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the wave size (clamped to at least 1).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Speculates every request in parallel, also reporting how many
    /// transactions each lane executed and how long it was busy (the
    /// wall-clock side channel behind per-lane trace spans).
    fn speculate_lanes(
        &self,
        world: &World,
        reqs: &[ExecRequest],
    ) -> (Vec<Speculation>, Vec<LaneStat>) {
        let lanes = blockpart_types::resolve_workers(self.lanes).min(reqs.len().max(1));
        if lanes <= 1 || reqs.len() <= 1 {
            let start = std::time::Instant::now();
            let specs = reqs
                .iter()
                .map(|r| speculate(world, &r.tx, &r.ctx))
                .collect::<Vec<_>>();
            let stat = LaneStat {
                lane: 0,
                txs: reqs.len(),
                busy_us: start.elapsed().as_micros() as u64,
            };
            return (specs, vec![stat]);
        }
        let injector = Injector::new();
        for i in 0..reqs.len() {
            injector.push(i);
        }
        let mut results: Vec<LaneHaul> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..lanes)
                .map(|lane| {
                    let injector = &injector;
                    s.spawn(move |_| {
                        let start = std::time::Instant::now();
                        let mut local = Vec::new();
                        loop {
                            match injector.steal() {
                                Steal::Success(i) => {
                                    let r = &reqs[i];
                                    local.push((i, speculate(world, &r.tx, &r.ctx)));
                                }
                                Steal::Empty => break,
                                Steal::Retry => continue,
                            }
                        }
                        (lane, local, start.elapsed().as_micros() as u64)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("speculation lane panicked"))
                .collect()
        })
        .expect("speculation scope panicked");
        results.sort_by_key(|&(lane, _, _)| lane);
        let mut specs: Vec<Option<Speculation>> = vec![None; reqs.len()];
        let mut stats = Vec::with_capacity(results.len());
        for (lane, local, busy_us) in results {
            stats.push(LaneStat {
                lane,
                txs: local.len(),
                busy_us,
            });
            for (i, spec) in local {
                specs[i] = Some(spec);
            }
        }
        let specs = specs
            .into_iter()
            .map(|s| s.expect("every request speculated exactly once"))
            .collect();
        (specs, stats)
    }

    /// One wave: speculate in parallel, then commit in block order,
    /// re-executing conflicted transactions against the live world.
    fn commit_wave(
        &self,
        world: &mut World,
        wave: &[ExecRequest],
        specs: Vec<Speculation>,
        metrics: &mut ExecMetrics,
        receipts: &mut Vec<crate::transaction::Receipt>,
    ) {
        metrics.speculated += wave.len() as u64;
        metrics.waves += 1;
        let mut written: HashSet<Resource> = HashSet::new();
        let mut wave_reexecs = 0u32;
        for (req, spec) in wave.iter().zip(specs) {
            let spec = if wave_reexecs > self.retry {
                // serial tail: the re-execution budget is spent, so stop
                // validating and execute against the live world
                metrics.re_executions += 1;
                speculate(world, &req.tx, &req.ctx)
            } else if spec.conflicts_with(&written) {
                metrics.conflicts += 1;
                metrics.re_executions += 1;
                wave_reexecs += 1;
                speculate(world, &req.tx, &req.ctx)
            } else {
                spec
            };
            spec.apply(world);
            written.extend(spec.writes().iter().copied());
            receipts.push(spec.receipt().clone());
        }
    }
}

impl Default for ParallelEngine {
    fn default() -> Self {
        ParallelEngine::new()
    }
}

/// What one speculation lane did during a wave.
struct LaneStat {
    lane: usize,
    txs: usize,
    busy_us: u64,
}

impl ExecutionEngine for ParallelEngine {
    fn name(&self) -> String {
        format!(
            "parallel[lanes={};retry={};window={}]",
            self.lanes, self.retry, self.window
        )
    }

    fn execute_block(&self, world: &mut World, block: &[ExecRequest]) -> BlockOutcome {
        let mut metrics = ExecMetrics::default();
        let mut receipts = Vec::with_capacity(block.len());
        for wave in block.chunks(self.window.max(1)) {
            let (specs, _) = self.speculate_lanes(world, wave);
            self.commit_wave(world, wave, specs, &mut metrics, &mut receipts);
        }
        BlockOutcome { receipts, metrics }
    }

    fn speculation_window(&self) -> usize {
        self.window
    }

    fn speculate(&self, world: &World, reqs: &[ExecRequest]) -> Vec<Speculation> {
        self.speculate_lanes(world, reqs).0
    }

    fn execute_block_traced(
        &self,
        world: &mut World,
        block: &[ExecRequest],
        trace: &mut Trace,
    ) -> BlockOutcome {
        let mut metrics = ExecMetrics::default();
        let mut receipts = Vec::with_capacity(block.len());
        for wave in block.chunks(self.window.max(1)) {
            let wave_start = trace.now_us();
            let (specs, lanes) = self.speculate_lanes(world, wave);
            if trace.events() {
                for stat in &lanes {
                    trace.record(
                        Record::span(wave_start, stat.busy_us, "exec", "exec.lane")
                            .with_arg("lane", stat.lane)
                            .with_arg("txs", stat.txs),
                    );
                }
            }
            self.commit_wave(world, wave, specs, &mut metrics, &mut receipts);
        }
        record_metrics(trace, &metrics);
        BlockOutcome { receipts, metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evm::ExecContext;
    use crate::exec::SerialEngine;
    use crate::program::ContractTemplate;
    use crate::transaction::{Transaction, TxPayload};
    use blockpart_types::{Address, Gas, Timestamp, Wei};

    /// A conflict-dense block: every transaction hits the same token.
    fn hub_block(world: &mut World, n: usize) -> Vec<ExecRequest> {
        let owner = world.new_user(Wei::new(1_000_000));
        let token = world.create_contract(ContractTemplate::Token, owner, owner.index());
        (0..n)
            .map(|i| {
                let from = world.new_user(Wei::new(10_000));
                let tx = Transaction {
                    from,
                    to: token,
                    value: Wei::ZERO,
                    gas_limit: Gas::new(400_000),
                    payload: TxPayload::Call { arg: from.index() },
                };
                ExecRequest::new(
                    tx,
                    ExecContext::new(Timestamp::from_secs(5), i as u64 + 1, tx.gas_limit),
                )
            })
            .collect()
    }

    /// A conflict-free block: disjoint transfer pairs.
    fn disjoint_block(world: &mut World, n: usize) -> Vec<ExecRequest> {
        (0..n)
            .map(|i| {
                let from = world.new_user(Wei::new(1_000));
                let to = world.new_user(Wei::ZERO);
                let tx = Transaction {
                    from,
                    to,
                    value: Wei::new(7),
                    gas_limit: Gas::new(30_000),
                    payload: TxPayload::Transfer,
                };
                ExecRequest::new(
                    tx,
                    ExecContext::new(Timestamp::from_secs(5), i as u64 + 1, tx.gas_limit),
                )
            })
            .collect()
    }

    fn worlds_equal(a: &World, b: &World, probe: &[Address]) {
        assert_eq!(a.account_count(), b.account_count());
        assert_eq!(a.contract_count(), b.contract_count());
        assert_eq!(a.address_floor(), b.address_floor());
        for &addr in probe {
            assert_eq!(a.balance(addr), b.balance(addr), "balance of {addr:?}");
            assert_eq!(
                a.export_state(addr),
                b.export_state(addr),
                "state of {addr:?}"
            );
        }
    }

    #[test]
    fn parallel_matches_serial_on_hub_conflicts() {
        let mut setup = World::new();
        let block = hub_block(&mut setup, 40);
        let mut serial_world = setup.clone();
        let mut parallel_world = setup;
        let serial = SerialEngine.execute_block(&mut serial_world, &block);
        let parallel = ParallelEngine::new()
            .with_lanes(4)
            .execute_block(&mut parallel_world, &block);
        assert_eq!(serial.receipts, parallel.receipts);
        let probe: Vec<Address> = block.iter().flat_map(|r| [r.tx.from, r.tx.to]).collect();
        worlds_equal(&serial_world, &parallel_world, &probe);
        // every transaction after the wave head touches the token, so
        // conflicts are guaranteed on a hub workload
        assert!(parallel.metrics.conflicts > 0);
        assert_eq!(parallel.metrics.speculated, 40);
    }

    #[test]
    fn lane_count_does_not_change_outcome_or_metrics() {
        let mut setup = World::new();
        let block = hub_block(&mut setup, 48);
        let mut outcomes = Vec::new();
        for lanes in [1, 2, 5] {
            let mut world = setup.clone();
            let out = ParallelEngine::new()
                .with_lanes(lanes)
                .execute_block(&mut world, &block);
            outcomes.push((out.receipts, out.metrics, world.address_floor()));
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(outcomes[1], outcomes[2]);
    }

    #[test]
    fn disjoint_block_commits_without_conflicts() {
        let mut setup = World::new();
        let block = disjoint_block(&mut setup, 30);
        let mut world = setup.clone();
        let out = ParallelEngine::new()
            .with_lanes(3)
            .execute_block(&mut world, &block);
        assert_eq!(out.metrics.conflicts, 0);
        assert_eq!(out.metrics.re_executions, 0);
        assert_eq!(out.metrics.waves, 1);
        let mut serial_world = setup;
        let serial = SerialEngine.execute_block(&mut serial_world, &block);
        assert_eq!(serial.receipts, out.receipts);
    }

    #[test]
    fn retry_budget_triggers_serial_tail_without_changing_results() {
        let mut setup = World::new();
        let block = hub_block(&mut setup, 40);
        let mut strict_world = setup.clone();
        let strict = ParallelEngine::new()
            .with_retry(0)
            .with_lanes(2)
            .execute_block(&mut strict_world, &block);
        let mut serial_world = setup;
        let serial = SerialEngine.execute_block(&mut serial_world, &block);
        assert_eq!(strict.receipts, serial.receipts);
        // budget 0: the first conflict flips the wave into its serial
        // tail, so re-executions exceed counted conflicts
        assert!(strict.metrics.re_executions > strict.metrics.conflicts);
    }

    #[test]
    fn traced_execution_matches_untraced() {
        let mut setup = World::new();
        let block = hub_block(&mut setup, 20);
        let mut w1 = setup.clone();
        let mut w2 = setup;
        let engine = ParallelEngine::new().with_lanes(2);
        let plain = engine.execute_block(&mut w1, &block);
        let mut trace = Trace::new();
        let traced = engine.execute_block_traced(&mut w2, &block, &mut trace);
        assert_eq!(plain.receipts, traced.receipts);
        assert_eq!(plain.metrics, traced.metrics);
        assert!(trace.records().iter().any(|r| r.name == "exec.lane"));
        assert!(trace.metrics_text().contains("exec/speculated"));
    }
}
