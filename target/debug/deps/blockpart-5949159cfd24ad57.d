/root/repo/target/debug/deps/blockpart-5949159cfd24ad57.d: src/bin/blockpart.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart-5949159cfd24ad57.rmeta: src/bin/blockpart.rs Cargo.toml

src/bin/blockpart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
