//! The perf harness: times the pipeline's hot stages over a fixed,
//! seeded workload matrix and writes a stable-schema `BENCH.json`.
//!
//! ```sh
//! # full profile, write BENCH.json
//! cargo run --release -p blockpart-bench --bin perf
//!
//! # CI smoke: reduced matrix, gate against the committed baseline
//! cargo run --release -p blockpart-bench --bin perf -- \
//!     --quick --check bench/baseline.json --tolerance 0.25
//! ```
//!
//! Exit codes: `0` success, `1` usage or I/O error, `2` regression gate
//! failed.

use std::process::ExitCode;

use blockpart_bench::perf::{
    compare, compare_calibrated, obs_overhead, run, PerfConfig, PerfReport,
};
use blockpart_metrics::Json;

const USAGE: &str = "\
usage: perf [options]

options:
  --quick            reduced CI profile (smaller workload, k=2, 3 trials)
  --out PATH         where to write the report (default BENCH.json)
  --check PATH       compare against a baseline BENCH.json and fail on
                     regression (exit code 2)
  --tolerance F      allowed slowdown versus the baseline (default 0.25)
  --calibrate        rescale the baseline by the machines' relative speed
                     (probed by chain-gen) before comparing — use when the
                     baseline was recorded on different hardware (CI)
  --obs-gate F       fail (exit code 2) when any replay-obs stage exceeds
                     its uninstrumented replay twin by more than F
                     (e.g. 0.05 = 5% instrumentation overhead)
  --scale F          override the generator scale
  --seed N           override the generator/partitioner seed
  --trials N         timed trials per stage
  --warmup N         untimed warmup runs per stage
  --workers N        worker threads for the parallel stages (0 = auto)
  --k LIST           comma-separated shard counts (e.g. 2,4,8)
  --help             print this help
";

struct Options {
    config: PerfConfig,
    out: String,
    check: Option<String>,
    tolerance: f64,
    calibrate: bool,
    obs_gate: Option<f64>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut config = if args.iter().any(|a| a == "--quick") {
        PerfConfig::quick()
    } else {
        PerfConfig::full()
    };
    let mut out = "BENCH.json".to_string();
    let mut check = None;
    let mut tolerance = 0.25;
    let mut calibrate = false;
    let mut obs_gate = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--quick" => {} // handled above so later overrides win
            "--calibrate" => calibrate = true,
            "--out" => out = value("--out")?,
            "--check" => check = Some(value("--check")?),
            "--tolerance" => {
                tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|_| "invalid --tolerance".to_string())?
            }
            "--obs-gate" => {
                obs_gate = Some(
                    value("--obs-gate")?
                        .parse()
                        .map_err(|_| "invalid --obs-gate".to_string())?,
                )
            }
            "--scale" => {
                config.scale = value("--scale")?
                    .parse()
                    .map_err(|_| "invalid --scale".to_string())?
            }
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "invalid --seed".to_string())?
            }
            "--trials" => {
                config.trials = value("--trials")?
                    .parse()
                    .map_err(|_| "invalid --trials".to_string())?
            }
            "--warmup" => {
                config.warmup = value("--warmup")?
                    .parse()
                    .map_err(|_| "invalid --warmup".to_string())?
            }
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "invalid --workers".to_string())?
            }
            "--k" => {
                config.shard_counts = value("--k")?
                    .split(',')
                    .map(|k| k.trim().parse::<u16>())
                    .collect::<Result<Vec<u16>, _>>()
                    .map_err(|_| "invalid --k list".to_string())?;
                if config.shard_counts.is_empty() || config.shard_counts.contains(&0) {
                    return Err("--k needs positive shard counts".into());
                }
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(Options {
        config,
        out,
        check,
        tolerance,
        calibrate,
        obs_gate,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("perf: {message}");
            }
            eprint!("{USAGE}");
            return ExitCode::from(1);
        }
    };

    let report = run(&options.config);
    let json = report.to_json().render_pretty();
    if let Err(e) = std::fs::write(&options.out, format!("{json}\n")) {
        eprintln!("perf: cannot write {}: {e}", options.out);
        return ExitCode::from(1);
    }
    println!("wrote {} ({} stages)", options.out, report.stages.len());

    for (label, strategy, k) in [
        ("graph-build", None, None),
        ("csr", None, None),
        (
            "kway",
            Some("metis"),
            report.config.shard_counts.first().copied(),
        ),
    ] {
        if let Some(speedup) = report.speedup(label, strategy, k) {
            println!(
                "{label}{} speedup: {speedup:.2}x ({} workers)",
                k.map(|k| format!(" k={k}")).unwrap_or_default(),
                report.workers_resolved,
            );
        }
    }

    let mut obs_gate_failed = false;
    if let Some(max_overhead) = options.obs_gate {
        let (breaches, unpaired) = obs_overhead(&report, max_overhead);
        for breach in &breaches {
            println!(
                "OBS OVERHEAD {}: {:.1} ms -> {:.1} ms ({:.0}% over uninstrumented, gate {:.0}%)",
                breach.key,
                breach.base_ms,
                breach.obs_ms,
                (breach.ratio - 1.0) * 100.0,
                max_overhead * 100.0,
            );
        }
        for key in &unpaired {
            println!("OBS UNPAIRED {key}: no uninstrumented replay twin in this run");
        }
        obs_gate_failed = !breaches.is_empty() || !unpaired.is_empty();
        if !obs_gate_failed {
            let pairs = report
                .stages
                .iter()
                .filter(|s| s.stage == "replay-obs")
                .count();
            println!(
                "observability gate passed: {pairs} replay pairs within {:.0}% overhead",
                max_overhead * 100.0,
            );
        }
    }

    let Some(baseline_path) = options.check else {
        return if obs_gate_failed {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    };
    let baseline = match std::fs::read_to_string(&baseline_path)
        .map_err(|e| e.to_string())
        .and_then(|text| Json::parse(&text))
        .and_then(|doc| PerfReport::from_json(&doc))
    {
        Ok(baseline) => baseline,
        Err(e) => {
            eprintln!("perf: cannot load baseline {baseline_path}: {e}");
            return ExitCode::from(1);
        }
    };

    let (regressions, missing) = if options.calibrate {
        let (factor, regressions, missing) =
            compare_calibrated(&report, &baseline, options.tolerance);
        println!("calibration: this machine is {factor:.2}x the baseline machine (via chain-gen)");
        (regressions, missing)
    } else {
        compare(&report, &baseline, options.tolerance)
    };
    for regression in &regressions {
        println!(
            "REGRESSION {}: {:.1} ms -> {:.1} ms ({:.0}% over baseline, tolerance {:.0}%)",
            regression.key,
            regression.baseline_ms,
            regression.current_ms,
            (regression.ratio - 1.0) * 100.0,
            options.tolerance * 100.0,
        );
    }
    for key in &missing {
        println!("MISSING {key}: baseline stage absent from this run");
    }
    if regressions.is_empty() && missing.is_empty() {
        println!(
            "regression gate passed: {} stages within {:.0}% of {baseline_path}",
            baseline.stages.len(),
            options.tolerance * 100.0,
        );
        if obs_gate_failed {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        }
    } else {
        ExitCode::from(2)
    }
}
