/root/repo/target/debug/deps/blockpart_shard-1e21133a7e62b504.d: crates/shard/src/lib.rs crates/shard/src/cost.rs crates/shard/src/placement.rs crates/shard/src/policy.rs crates/shard/src/simulator.rs crates/shard/src/state.rs

/root/repo/target/debug/deps/blockpart_shard-1e21133a7e62b504: crates/shard/src/lib.rs crates/shard/src/cost.rs crates/shard/src/placement.rs crates/shard/src/policy.rs crates/shard/src/simulator.rs crates/shard/src/state.rs

crates/shard/src/lib.rs:
crates/shard/src/cost.rs:
crates/shard/src/placement.rs:
crates/shard/src/policy.rs:
crates/shard/src/simulator.rs:
crates/shard/src/state.rs:
