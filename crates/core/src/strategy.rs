//! The open strategy API: [`StrategySpec`] and [`StrategyRegistry`].
//!
//! The paper compares a closed set of five methods; this module turns the
//! partitioning strategy into an extension point. A *strategy* bundles
//! everything the pipeline needs to evaluate one way of sharding a chain:
//!
//! * a [`Partitioner`] (how vertices are assigned to shards),
//! * a [`SimulatorConfig`] (placement rule, repartition policy and scope),
//! * optionally a [`RuntimeConfig`] (2PC replay tuning overrides).
//!
//! The [`StrategyRegistry`] resolves strategies by name. It ships the five
//! canonical paper strategies plus the streaming baselines as built-ins,
//! accepts user-registered strategies, and understands parameterized spec
//! strings such as `r-metis[window=7]` (an R-METIS variant with a one-week
//! reduced graph) so new variants need no code at the call site.
//!
//! # Examples
//!
//! Registering and resolving a custom strategy:
//!
//! ```
//! use std::sync::Arc;
//!
//! use blockpart_core::{StrategyRegistry, StrategySpec};
//! use blockpart_partition::{HashPartitioner, Partitioner};
//! use blockpart_shard::{RepartitionPolicy, SimulatorConfig};
//! use blockpart_types::ShardCount;
//!
//! struct Frozen;
//!
//! impl StrategySpec for Frozen {
//!     fn name(&self) -> &str {
//!         "FROZEN"
//!     }
//!     fn build_partitioner(&self, _seed: u64) -> Box<dyn Partitioner> {
//!         Box::new(HashPartitioner::new())
//!     }
//!     fn simulator_config(&self, k: ShardCount) -> SimulatorConfig {
//!         SimulatorConfig::new(k).with_policy(RepartitionPolicy::Never)
//!     }
//! }
//!
//! let mut registry = StrategyRegistry::with_builtins();
//! registry.register("frozen", "hash once, never repartition", Arc::new(Frozen));
//! assert_eq!(registry.resolve("frozen").unwrap().name(), "FROZEN");
//! assert!(registry.resolve("no-such-strategy").is_err());
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use blockpart_metrics::Table;
use blockpart_partition::kl::DistributedKlConfig;
use blockpart_partition::{
    DistributedKl, Fennel, HashPartitioner, LinearGreedy, MultilevelConfig, MultilevelPartitioner,
    Partitioner,
};
use blockpart_runtime::RuntimeConfig;
use blockpart_shard::{PlacementRule, RepartitionPolicy, RepartitionScope, SimulatorConfig};
use blockpart_types::{Duration, ShardCount};

use crate::methods::Method;

/// Everything the experiment pipeline needs from one partitioning
/// strategy.
///
/// Implementations must be cheap to query: `build_partitioner` is called
/// once per run (inside the worker thread), the config accessors once per
/// strategy × shard-count pair. `Send + Sync` is required because the
/// pipeline fans strategy runs out across threads.
pub trait StrategySpec: Send + Sync {
    /// The display name used in tables and reports (`"HASH"`, …).
    fn name(&self) -> &str;

    /// Constructs the partitioner backing this strategy, seeded for
    /// reproducibility.
    fn build_partitioner(&self, seed: u64) -> Box<dyn Partitioner>;

    /// The simulator configuration (placement, repartition policy/scope)
    /// at `k` shards.
    fn simulator_config(&self, k: ShardCount) -> SimulatorConfig;

    /// The 2PC replay configuration at `k` shards. The default is the
    /// runtime's stock tuning; override to model e.g. different network
    /// latencies per strategy. The pipeline always forces the shard count
    /// and seed afterwards, so overrides need not set them.
    fn runtime_config(&self, k: ShardCount) -> RuntimeConfig {
        RuntimeConfig::new(k)
    }
}

/// The canonical simulator configuration of a paper method at `k` shards:
/// placement rule, repartition policy and scope per the paper's
/// description (4-hour windows, two-week periods).
pub(crate) fn canonical_simulator_config(method: Method, k: ShardCount) -> SimulatorConfig {
    let base = SimulatorConfig::new(k);
    match method {
        Method::Hash => base
            .with_placement(PlacementRule::Hash)
            .with_policy(RepartitionPolicy::Never),
        // §II-C: KL repartitions "based on the transactions executed
        // in the period" — the reduced window, not the cumulative
        // graph, which is what keeps its shards dynamically balanced.
        Method::Kl => base
            .with_placement(PlacementRule::Hash)
            .with_scope(RepartitionScope::Window)
            .with_scope_window(Duration::weeks(2))
            .with_policy(RepartitionPolicy::Periodic {
                interval: Duration::weeks(2),
            }),
        Method::Metis => base
            .with_placement(PlacementRule::MinCut)
            .with_scope(RepartitionScope::Full)
            .with_policy(RepartitionPolicy::Periodic {
                interval: Duration::weeks(2),
            }),
        Method::RMetis => base
            .with_placement(PlacementRule::MinCut)
            .with_scope(RepartitionScope::Window)
            .with_scope_window(Duration::weeks(2))
            .with_policy(RepartitionPolicy::Periodic {
                interval: Duration::weeks(2),
            }),
        Method::TrMetis => base
            .with_placement(PlacementRule::MinCut)
            .with_scope(RepartitionScope::Window)
            .with_scope_window(Duration::weeks(2))
            // thresholds picked via the ablation sweep (bin/ablation):
            // this setting halves the moves of R-METIS while matching
            // its edge-cut and balance — the paper's "dramatic
            // decrease ... without compromising edge-cuts and balance"
            .with_policy(RepartitionPolicy::Threshold {
                edge_cut: 0.5,
                balance: 2.0,
                // same cadence cap as the periodic methods: TR-METIS
                // exists to repartition *less*, never more
                min_interval: Duration::weeks(2),
            }),
    }
}

/// The canonical partitioner of a paper method.
pub(crate) fn canonical_partitioner(method: Method, seed: u64) -> Box<dyn Partitioner> {
    match method {
        Method::Hash => Box::new(HashPartitioner::new()),
        Method::Kl => Box::new(DistributedKl::new(DistributedKlConfig {
            seed,
            ..DistributedKlConfig::default()
        })),
        Method::Metis | Method::RMetis | Method::TrMetis => {
            Box::new(MultilevelPartitioner::new(MultilevelConfig {
                seed,
                ..MultilevelConfig::default()
            }))
        }
    }
}

/// One of the paper's five methods as a [`StrategySpec`], optionally
/// tuned: the registry's parameterized built-ins (`r-metis[window=7]`,
/// `tr-metis[cut=0.4;balance=1.8]`, …) are instances of this type.
///
/// # Examples
///
/// ```
/// use blockpart_core::{CanonicalStrategy, Method, StrategySpec};
/// use blockpart_types::{Duration, ShardCount};
///
/// let spec = CanonicalStrategy::new(Method::RMetis).with_scope_window(Duration::weeks(1));
/// assert_eq!(
///     spec.simulator_config(ShardCount::TWO).scope_window,
///     Duration::weeks(1)
/// );
/// ```
#[derive(Clone, Debug)]
pub struct CanonicalStrategy {
    method: Method,
    label: String,
    scope_window: Option<Duration>,
    interval: Option<Duration>,
    thresholds: Option<(f64, f64)>,
}

impl CanonicalStrategy {
    /// The untuned canonical strategy for `method`.
    pub fn new(method: Method) -> Self {
        CanonicalStrategy {
            method,
            label: method.label().to_string(),
            scope_window: None,
            interval: None,
            thresholds: None,
        }
    }

    /// The underlying paper method.
    pub fn method(&self) -> Method {
        self.method
    }

    /// Overrides the reduced-graph window length.
    pub fn with_scope_window(mut self, window: Duration) -> Self {
        self.scope_window = Some(window);
        self
    }

    /// Overrides the repartition cadence (`Periodic` interval or
    /// `Threshold` refractory period; ignored by `Never`).
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = Some(interval);
        self
    }

    /// Overrides the `(edge_cut, balance)` trigger thresholds (only
    /// meaningful for TR-METIS).
    pub fn with_thresholds(mut self, edge_cut: f64, balance: f64) -> Self {
        self.thresholds = Some((edge_cut, balance));
        self
    }

    /// Replaces the display label (parameterized variants append their
    /// parameters so tables distinguish them).
    pub fn with_label(mut self, label: String) -> Self {
        self.label = label;
        self
    }
}

impl StrategySpec for CanonicalStrategy {
    fn name(&self) -> &str {
        &self.label
    }

    fn build_partitioner(&self, seed: u64) -> Box<dyn Partitioner> {
        canonical_partitioner(self.method, seed)
    }

    fn simulator_config(&self, k: ShardCount) -> SimulatorConfig {
        let mut cfg = canonical_simulator_config(self.method, k);
        if let Some(w) = self.scope_window {
            cfg = cfg.with_scope_window(w);
        }
        if let Some(iv) = self.interval {
            cfg.policy = match cfg.policy {
                RepartitionPolicy::Never => RepartitionPolicy::Never,
                RepartitionPolicy::Periodic { .. } => RepartitionPolicy::Periodic { interval: iv },
                RepartitionPolicy::Threshold {
                    edge_cut, balance, ..
                } => RepartitionPolicy::Threshold {
                    edge_cut,
                    balance,
                    min_interval: iv,
                },
            };
        }
        if let Some((cut, bal)) = self.thresholds {
            if let RepartitionPolicy::Threshold { min_interval, .. } = cfg.policy {
                cfg.policy = RepartitionPolicy::Threshold {
                    edge_cut: cut,
                    balance: bal,
                    min_interval,
                };
            }
        }
        cfg
    }
}

/// A streaming baseline (LDG or Fennel) as a [`StrategySpec`]: the
/// one-pass partitioner re-streams the full cumulative graph on the
/// paper's two-week cadence, with min-cut placement in between.
#[derive(Clone, Debug)]
pub struct StreamingStrategy {
    label: String,
    kind: StreamingKind,
}

#[derive(Clone, Copy, Debug)]
enum StreamingKind {
    Ldg { slack: f64 },
    Fennel { gamma: f64, pressure: f64 },
}

impl StreamingStrategy {
    /// Linear Deterministic Greedy with the given capacity slack.
    pub fn ldg(slack: f64) -> Self {
        StreamingStrategy {
            label: "LDG".to_string(),
            kind: StreamingKind::Ldg { slack },
        }
    }

    /// Fennel with the given load exponent and balance pressure.
    pub fn fennel(gamma: f64, pressure: f64) -> Self {
        StreamingStrategy {
            label: "FENNEL".to_string(),
            kind: StreamingKind::Fennel { gamma, pressure },
        }
    }

    fn with_label(mut self, label: String) -> Self {
        self.label = label;
        self
    }
}

impl StrategySpec for StreamingStrategy {
    fn name(&self) -> &str {
        &self.label
    }

    fn build_partitioner(&self, _seed: u64) -> Box<dyn Partitioner> {
        match self.kind {
            StreamingKind::Ldg { slack } => Box::new(LinearGreedy::new(slack)),
            StreamingKind::Fennel { gamma, pressure } => Box::new(Fennel::new(gamma, pressure)),
        }
    }

    fn simulator_config(&self, k: ShardCount) -> SimulatorConfig {
        SimulatorConfig::new(k)
            .with_placement(PlacementRule::MinCut)
            .with_scope(RepartitionScope::Full)
            .with_policy(RepartitionPolicy::Periodic {
                interval: Duration::weeks(2),
            })
    }
}

/// An error from strategy resolution or registration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrategyError(String);

impl StrategyError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        StrategyError(msg.into())
    }
}

impl std::fmt::Display for StrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for StrategyError {}

/// Key=value parameters attached to a strategy spec string
/// (`r-metis[window=7]` → `{window: "7"}`).
///
/// # Examples
///
/// ```
/// use blockpart_core::StrategyParams;
///
/// let p = StrategyParams::parse("window=7;cut=0.4").unwrap();
/// assert_eq!(p.f64("cut").unwrap(), Some(0.4));
/// assert_eq!(p.days("window").unwrap().unwrap().as_secs(), 7 * 86_400);
/// assert_eq!(p.f64("absent").unwrap(), None);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StrategyParams {
    entries: BTreeMap<String, String>,
}

impl StrategyParams {
    /// Parses `key=value` pairs separated by `;` or `,`.
    pub fn parse(text: &str) -> Result<Self, StrategyError> {
        let mut entries = BTreeMap::new();
        for pair in text.split([';', ',']).filter(|p| !p.trim().is_empty()) {
            let Some((key, value)) = pair.split_once('=') else {
                return Err(StrategyError::new(format!(
                    "malformed strategy parameter `{pair}` (expected key=value)"
                )));
            };
            let (key, value) = (key.trim().to_string(), value.trim().to_string());
            if key.is_empty() || value.is_empty() {
                return Err(StrategyError::new(format!(
                    "malformed strategy parameter `{pair}` (expected key=value)"
                )));
            }
            if entries.insert(key.clone(), value).is_some() {
                return Err(StrategyError::new(format!(
                    "duplicate strategy parameter `{key}`"
                )));
            }
        }
        Ok(StrategyParams { entries })
    }

    /// `true` when no parameters were given.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The raw value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Parses `key` as an `f64`.
    pub fn f64(&self, key: &str) -> Result<Option<f64>, StrategyError> {
        self.get(key)
            .map(|v| {
                v.parse::<f64>().map_err(|_| {
                    StrategyError::new(format!("parameter `{key}`: `{v}` is not a number"))
                })
            })
            .transpose()
    }

    /// Parses `key` as a positive duration in days (fractional days
    /// allowed, rounded to whole hours, minimum one hour).
    pub fn days(&self, key: &str) -> Result<Option<Duration>, StrategyError> {
        self.f64(key)?
            .map(|d| {
                if !d.is_finite() || d <= 0.0 {
                    return Err(StrategyError::new(format!(
                        "parameter `{key}`: `{d}` is not a positive number of days"
                    )));
                }
                let hours = (d * 24.0).round().max(1.0) as u64;
                Ok(Duration::hours(hours))
            })
            .transpose()
    }

    /// The parameters re-rendered canonically: `key=value` pairs with
    /// values verbatim, sorted by key, `;`-joined. Strategy labels embed
    /// this form so a spec string round-trips as a report lookup key.
    pub fn canonical_string(&self) -> String {
        self.entries
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Parses `key` as a positive integer.
    pub fn usize(&self, key: &str) -> Result<Option<usize>, StrategyError> {
        self.get(key)
            .map(|v| match v.parse::<usize>() {
                Ok(n) if n > 0 => Ok(n),
                _ => Err(StrategyError::new(format!(
                    "parameter `{key}`: `{v}` is not a positive integer"
                ))),
            })
            .transpose()
    }

    /// Errors when a parameter outside `allowed` was supplied.
    pub fn ensure_known(&self, strategy: &str, allowed: &[&str]) -> Result<(), StrategyError> {
        self.ensure_known_as("strategy", strategy, allowed)
    }

    /// Like [`ensure_known`](Self::ensure_known), but names the owner as
    /// a `kind` (e.g. "scenario") in the error message, so registries of
    /// other parameterized things produce accurate diagnostics.
    pub fn ensure_known_as(
        &self,
        kind: &str,
        owner: &str,
        allowed: &[&str],
    ) -> Result<(), StrategyError> {
        for key in self.entries.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(StrategyError::new(format!(
                    "{kind} `{owner}` does not take parameter `{key}` (accepted: {})",
                    if allowed.is_empty() {
                        "none".to_string()
                    } else {
                        allowed.join(", ")
                    }
                )));
            }
        }
        Ok(())
    }
}

/// A strategy factory: builds a spec from parsed parameters.
pub type StrategyFactory =
    dyn Fn(&StrategyParams) -> Result<Arc<dyn StrategySpec>, StrategyError> + Send + Sync;

/// A resolved strategy paired with the spec string that produced it
/// (see [`StrategyRegistry::resolve_list_with_sources`]).
pub type ResolvedStrategy = (Arc<dyn StrategySpec>, String);

enum EntryKind {
    /// A strategy factory.
    Factory(Arc<StrategyFactory>),
    /// A late-bound alias: the normalized key of the target entry,
    /// resolved at lookup time so re-registering the target retargets
    /// the alias too.
    Alias(String),
}

struct Entry {
    /// Normalized lookup key (`rmetis`).
    key: String,
    /// The spelling the strategy was registered under (`r-metis`),
    /// shown in listings and errors.
    display: String,
    description: String,
    params_help: String,
    kind: EntryKind,
}

/// Name → strategy resolution, the open successor of the closed
/// [`Method`] enum.
///
/// Lookup is case-insensitive and ignores `-`/`_` (so `r-metis`,
/// `rmetis` and `R_METIS` all resolve the same entry; the paper's
/// alternate `p-metis` label is registered as an alias). A spec string
/// may parameterize the strategy: `name[key=value;key=value]`.
pub struct StrategyRegistry {
    entries: Vec<Entry>,
}

impl std::fmt::Debug for StrategyRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StrategyRegistry")
            .field("strategies", &self.names())
            .finish()
    }
}

/// Normalizes a strategy name for lookup: lowercase, `-`/`_` stripped.
pub(crate) fn normalize_name(name: &str) -> String {
    name.trim()
        .chars()
        .filter(|c| *c != '-' && *c != '_')
        .flat_map(char::to_lowercase)
        .collect()
}

/// Normalizes a full spec string (`name` or `name[params]`) into a
/// lookup key: normalized name plus canonically re-rendered parameters.
/// Registry-built labels embed [`StrategyParams::canonical_string`], so
/// the spec string a strategy was resolved from and the label its runs
/// carry map to the same key.
pub(crate) fn spec_lookup_key(spec: &str) -> String {
    let spec = spec.trim();
    if let Some((name, rest)) = spec.split_once('[') {
        if let Some(body) = rest.strip_suffix(']') {
            if let Ok(params) = StrategyParams::parse(body) {
                if params.is_empty() {
                    return normalize_name(name);
                }
                return format!("{}[{}]", normalize_name(name), params.canonical_string());
            }
        }
    }
    normalize_name(spec)
}

impl StrategyRegistry {
    /// An empty registry (no built-ins).
    pub fn empty() -> Self {
        StrategyRegistry {
            entries: Vec::new(),
        }
    }

    /// A registry with the built-in strategies: the paper's five (HASH,
    /// KL, METIS, R-METIS, TR-METIS — parameterizable) and the streaming
    /// baselines (LDG, FENNEL).
    pub fn with_builtins() -> Self {
        let mut reg = StrategyRegistry::empty();
        reg.register_factory(
            "hash",
            "hash(id) mod k: static balance, no moves, heavy cut",
            "",
            |params| {
                params.ensure_known("hash", &[])?;
                Ok(Arc::new(CanonicalStrategy::new(Method::Hash)))
            },
        );
        for (name, method) in [
            ("kl", Method::Kl),
            ("metis", Method::Metis),
            ("r-metis", Method::RMetis),
            ("tr-metis", Method::TrMetis),
        ] {
            let (description, params_help, allowed): (&str, &str, &[&str]) = match method {
                Method::Kl => (
                    "distributed Kernighan-Lin over the reduced graph",
                    "window=<days>, interval=<days>",
                    &["window", "interval"],
                ),
                Method::Metis => (
                    "periodic multilevel partitioning of the full graph",
                    "interval=<days>",
                    &["interval"],
                ),
                Method::RMetis => (
                    "periodic multilevel partitioning of the reduced graph",
                    "window=<days>, interval=<days>",
                    &["window", "interval"],
                ),
                Method::TrMetis => (
                    "threshold-triggered multilevel on the reduced graph",
                    "window=<days>, interval=<days>, cut=<f>, balance=<f>",
                    &["window", "interval", "cut", "balance"],
                ),
                Method::Hash => unreachable!("registered above"),
            };
            let display_name = name;
            reg.register_factory(name, description, params_help, move |params| {
                params.ensure_known(display_name, allowed)?;
                let mut spec = CanonicalStrategy::new(method);
                if let Some(w) = params.days("window")? {
                    spec = spec.with_scope_window(w);
                }
                if let Some(iv) = params.days("interval")? {
                    spec = spec.with_interval(iv);
                }
                match (params.f64("cut")?, params.f64("balance")?) {
                    (None, None) => {}
                    (cut, balance) => {
                        let canonical =
                            match canonical_simulator_config(method, ShardCount::TWO).policy {
                                RepartitionPolicy::Threshold {
                                    edge_cut, balance, ..
                                } => (edge_cut, balance),
                                _ => unreachable!("cut/balance only accepted for TR-METIS"),
                            };
                        let (c, b) = (cut.unwrap_or(canonical.0), balance.unwrap_or(canonical.1));
                        spec = spec.with_thresholds(c, b);
                    }
                }
                if !params.is_empty() {
                    // embed the parameters verbatim so the spec string
                    // round-trips as a report lookup key
                    let label = format!("{}[{}]", method.label(), params.canonical_string());
                    spec = spec.with_label(label);
                }
                Ok(Arc::new(spec))
            });
        }
        // the paper's Fig. 4 labels R-METIS as "P-METIS"
        reg.register_alias("p-metis", "r-metis");
        reg.register_factory(
            "ldg",
            "Linear Deterministic Greedy streaming, re-streamed biweekly",
            "slack=<f>",
            |params| {
                params.ensure_known("ldg", &["slack"])?;
                let slack = params.f64("slack")?.unwrap_or(1.1);
                if slack < 1.0 {
                    return Err(StrategyError::new("ldg: slack must be at least 1.0"));
                }
                let mut spec = StreamingStrategy::ldg(slack);
                if !params.is_empty() {
                    spec = spec.with_label(format!("LDG[{}]", params.canonical_string()));
                }
                Ok(Arc::new(spec))
            },
        );
        reg.register_factory(
            "fennel",
            "Fennel streaming partitioner, re-streamed biweekly",
            "gamma=<f>, pressure=<f>",
            |params| {
                params.ensure_known("fennel", &["gamma", "pressure"])?;
                let gamma = params.f64("gamma")?.unwrap_or(1.5);
                let pressure = params.f64("pressure")?.unwrap_or(1.0);
                if gamma <= 1.0 || pressure <= 0.0 {
                    return Err(StrategyError::new(
                        "fennel: gamma must exceed 1.0 and pressure must be positive",
                    ));
                }
                let mut spec = StreamingStrategy::fennel(gamma, pressure);
                if !params.is_empty() {
                    spec = spec.with_label(format!("FENNEL[{}]", params.canonical_string()));
                }
                Ok(Arc::new(spec))
            },
        );
        reg
    }

    /// Registers a fixed strategy under `name`, replacing any existing
    /// entry with the same (normalized) name. The spec rejects
    /// parameters; use [`register_factory`](Self::register_factory) for
    /// parameterized strategies.
    pub fn register(&mut self, name: &str, description: &str, spec: Arc<dyn StrategySpec>) {
        let owned_name = name.to_string();
        self.register_factory(name, description, "", move |params| {
            params.ensure_known(&owned_name, &[])?;
            Ok(Arc::clone(&spec))
        });
    }

    /// Registers a parameterized strategy factory under `name`, replacing
    /// any existing entry with the same (normalized) name. `params_help`
    /// is the human-readable parameter summary shown by
    /// [`help_table`](Self::help_table) (empty for none).
    pub fn register_factory(
        &mut self,
        name: &str,
        description: &str,
        params_help: &str,
        factory: impl Fn(&StrategyParams) -> Result<Arc<dyn StrategySpec>, StrategyError>
            + Send
            + Sync
            + 'static,
    ) {
        let key = normalize_name(name);
        assert!(!key.is_empty(), "strategy name must be non-empty");
        self.entries.retain(|e| e.key != key);
        self.entries.push(Entry {
            key,
            display: name.trim().to_string(),
            description: description.to_string(),
            params_help: params_help.to_string(),
            kind: EntryKind::Factory(Arc::new(factory)),
        });
    }

    /// Registers `alias` to resolve exactly like `target`. The binding
    /// is late: re-registering `target` retargets the alias too.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not registered.
    pub fn register_alias(&mut self, alias: &str, target: &str) {
        let target_entry = self
            .entry(target)
            .unwrap_or_else(|| panic!("alias target `{target}` is not registered"));
        let description = format!("alias of {}", target_entry.display);
        let target_key = target_entry.key.clone();
        let key = normalize_name(alias);
        assert!(!key.is_empty(), "strategy name must be non-empty");
        self.entries.retain(|e| e.key != key);
        self.entries.push(Entry {
            key,
            display: alias.trim().to_string(),
            description,
            params_help: String::new(),
            kind: EntryKind::Alias(target_key),
        });
    }

    fn entry(&self, name: &str) -> Option<&Entry> {
        let key = normalize_name(name);
        self.entries.iter().find(|e| e.key == key)
    }

    /// `true` when `name` resolves (ignoring parameters).
    pub fn contains(&self, name: &str) -> bool {
        self.entry(name).is_some()
    }

    /// The registered strategy names as they were registered
    /// (registration order, aliases included).
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.display.as_str()).collect()
    }

    /// Resolves one spec string: `name` or `name[key=value;key=value]`.
    pub fn resolve(&self, spec: &str) -> Result<Arc<dyn StrategySpec>, StrategyError> {
        let spec = spec.trim();
        let (name, params) = match spec.split_once('[') {
            None => (spec, StrategyParams::default()),
            Some((name, rest)) => {
                let Some(body) = rest.strip_suffix(']') else {
                    return Err(StrategyError::new(format!(
                        "unclosed `[` in strategy spec `{spec}`"
                    )));
                };
                (name.trim(), StrategyParams::parse(body)?)
            }
        };
        let Some(entry) = self.entry(name) else {
            return Err(StrategyError::new(format!(
                "unknown strategy `{name}` (registered: {})",
                self.names().join(", ")
            )));
        };
        (self.factory_of(entry)?)(&params)
    }

    /// The factory behind an entry, following one alias hop.
    fn factory_of<'e>(&'e self, entry: &'e Entry) -> Result<&'e StrategyFactory, StrategyError> {
        match &entry.kind {
            EntryKind::Factory(f) => Ok(f.as_ref()),
            EntryKind::Alias(target_key) => {
                let target = self.entries.iter().find(|e| e.key == *target_key);
                match target.map(|e| &e.kind) {
                    Some(EntryKind::Factory(f)) => Ok(f.as_ref()),
                    _ => Err(StrategyError::new(format!(
                        "alias `{}` points at `{target_key}`, which is no longer registered",
                        entry.display
                    ))),
                }
            }
        }
    }

    /// Resolves a comma-separated list of spec strings; commas inside
    /// `[...]` parameter blocks do not split. The word `all` expands to
    /// the paper's five canonical strategies (unless a strategy was
    /// registered under that name, which then takes precedence). An
    /// empty list is an error (a misconfigured caller should not
    /// silently run nothing).
    pub fn resolve_list(&self, specs: &str) -> Result<Vec<Arc<dyn StrategySpec>>, StrategyError> {
        Ok(self
            .resolve_list_with_sources(specs)?
            .into_iter()
            .map(|(spec, _)| spec)
            .collect())
    }

    /// Like [`resolve_list`](Self::resolve_list), but pairs every spec
    /// with the spec string that produced it (`all` expands to the
    /// canonical strategies' labels). [`Experiment`](crate::Experiment)
    /// records these so report lookups work with the requested spelling
    /// (e.g. an alias) as well as the display name.
    pub fn resolve_list_with_sources(
        &self,
        specs: &str,
    ) -> Result<Vec<ResolvedStrategy>, StrategyError> {
        let mut out = Vec::new();
        for part in split_top_level(specs) {
            if normalize_name(&part) == "all" && !self.contains("all") {
                for spec in self.canonical()? {
                    let label = spec.name().to_string();
                    out.push((spec, label));
                }
            } else {
                out.push((self.resolve(&part)?, part.trim().to_string()));
            }
        }
        if out.is_empty() {
            return Err(StrategyError::new(format!(
                "empty strategy list `{specs}` (registered: {})",
                self.names().join(", ")
            )));
        }
        Ok(out)
    }

    /// The paper's five canonical strategies, in presentation order.
    pub fn canonical(&self) -> Result<Vec<Arc<dyn StrategySpec>>, StrategyError> {
        Method::ALL
            .iter()
            .map(|m| self.resolve(m.label()))
            .collect()
    }

    /// Renders the registry as a help table (strategy, parameters,
    /// description).
    pub fn help_table(&self) -> Table {
        let mut t = Table::new(vec!["strategy", "parameters", "description"]);
        for e in &self.entries {
            // aliases inherit the (current) target's parameter summary
            let params_help = match &e.kind {
                EntryKind::Factory(_) => e.params_help.clone(),
                EntryKind::Alias(target_key) => self
                    .entries
                    .iter()
                    .find(|t| t.key == *target_key)
                    .map(|t| t.params_help.clone())
                    .unwrap_or_default(),
            };
            t.row(vec![e.display.clone(), params_help, e.description.clone()]);
        }
        t
    }
}

impl Default for StrategyRegistry {
    fn default() -> Self {
        StrategyRegistry::with_builtins()
    }
}

/// Splits on commas not enclosed in `[...]`.
pub(crate) fn split_top_level(text: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in text.chars() {
        match c {
            '[' => {
                depth += 1;
                current.push(c);
            }
            ']' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 => {
                parts.push(std::mem::take(&mut current));
            }
            c => current.push(c),
        }
    }
    parts.push(current);
    parts.retain(|p| !p.trim().is_empty());
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_cover_paper_methods_and_baselines() {
        let reg = StrategyRegistry::with_builtins();
        for m in Method::ALL {
            assert!(reg.contains(m.label()), "{m} missing");
        }
        assert!(reg.contains("ldg"));
        assert!(reg.contains("fennel"));
        assert!(reg.contains("p-metis"), "paper alias");
        assert_eq!(reg.canonical().unwrap().len(), 5);
    }

    #[test]
    fn lookup_is_name_normalized() {
        let reg = StrategyRegistry::with_builtins();
        for name in ["R-METIS", "rmetis", "r_metis", " r-metis "] {
            assert_eq!(reg.resolve(name).unwrap().name(), "R-METIS", "{name}");
        }
        assert_eq!(reg.resolve("pmetis").unwrap().name(), "R-METIS");
    }

    #[test]
    fn canonical_specs_match_method_configs() {
        let reg = StrategyRegistry::with_builtins();
        for m in Method::ALL {
            let spec = reg.resolve(m.label()).unwrap();
            for k in [ShardCount::TWO, ShardCount::new(8).unwrap()] {
                let a = spec.simulator_config(k);
                let b = m.simulator_config(k);
                assert_eq!(a.placement, b.placement, "{m}");
                assert_eq!(a.policy, b.policy, "{m}");
                assert_eq!(a.scope, b.scope, "{m}");
                assert_eq!(a.scope_window, b.scope_window, "{m}");
            }
            assert_eq!(
                spec.build_partitioner(3).name(),
                m.partitioner(3).name(),
                "{m}"
            );
        }
    }

    #[test]
    fn parameterized_rmetis_changes_window() {
        let reg = StrategyRegistry::with_builtins();
        let spec = reg.resolve("r-metis[window=7]").unwrap();
        assert_eq!(
            spec.simulator_config(ShardCount::TWO).scope_window,
            Duration::days(7)
        );
        // parameters embed verbatim so the spec string round-trips
        assert_eq!(spec.name(), "R-METIS[window=7]");
        assert_eq!(
            spec_lookup_key(spec.name()),
            spec_lookup_key("r-metis[window=7]")
        );
    }

    #[test]
    fn parameterized_trmetis_thresholds() {
        let reg = StrategyRegistry::with_builtins();
        let spec = reg.resolve("tr-metis[cut=0.3,balance=1.7]").unwrap();
        match spec.simulator_config(ShardCount::TWO).policy {
            RepartitionPolicy::Threshold {
                edge_cut, balance, ..
            } => {
                assert_eq!(edge_cut, 0.3);
                assert_eq!(balance, 1.7);
            }
            other => panic!("unexpected policy {other:?}"),
        }
    }

    #[test]
    fn unknown_names_and_params_error() {
        let reg = StrategyRegistry::with_builtins();
        let err = reg.resolve("bogus").err().expect("should fail").to_string();
        assert!(err.contains("bogus") && err.contains("hash"), "{err}");
        let err = reg
            .resolve("hash[window=7]")
            .err()
            .expect("should fail")
            .to_string();
        assert!(err.contains("does not take parameter"), "{err}");
        let err = reg
            .resolve("metis[cut=0.5]")
            .err()
            .expect("should fail")
            .to_string();
        assert!(err.contains("cut"), "{err}");
        assert!(reg.resolve("r-metis[window=").is_err());
        assert!(reg.resolve("r-metis[window]").is_err());
        assert!(reg.resolve("r-metis[window=x]").is_err());
    }

    #[test]
    fn non_positive_durations_are_rejected() {
        let reg = StrategyRegistry::with_builtins();
        for bad in ["0", "-7", "nan", "inf"] {
            let err = reg
                .resolve(&format!("r-metis[window={bad}]"))
                .err()
                .expect("should fail")
                .to_string();
            assert!(err.contains("positive"), "window={bad}: {err}");
        }
    }

    #[test]
    fn empty_strategy_lists_are_rejected() {
        let reg = StrategyRegistry::with_builtins();
        for empty in ["", "  ", ",,", " , "] {
            let err = reg
                .resolve_list(empty)
                .err()
                .expect("should fail")
                .to_string();
            assert!(err.contains("empty strategy list"), "`{empty}`: {err}");
        }
    }

    #[test]
    fn listings_show_registered_spellings() {
        let reg = StrategyRegistry::with_builtins();
        let names = reg.names();
        assert!(names.contains(&"r-metis"), "{names:?}");
        assert!(names.contains(&"tr-metis"), "{names:?}");
        assert!(reg.help_table().render_ascii().contains("r-metis"));
        let err = reg.resolve("bogus").err().expect("should fail").to_string();
        assert!(err.contains("tr-metis"), "{err}");
    }

    #[test]
    fn resolve_list_respects_brackets() {
        let reg = StrategyRegistry::with_builtins();
        let specs = reg
            .resolve_list("hash, tr-metis[cut=0.4,balance=1.9], ldg[slack=1.5]")
            .unwrap();
        let names: Vec<&str> = specs.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["HASH", "TR-METIS[balance=1.9;cut=0.4]", "LDG[slack=1.5]"]
        );
        assert_eq!(reg.resolve_list("all").unwrap().len(), 5);
        // the `all` keyword is as case-insensitive as strategy names
        assert_eq!(reg.resolve_list("ALL").unwrap().len(), 5);
        assert_eq!(reg.resolve_list("hash,All").unwrap().len(), 6);
    }

    #[test]
    fn registration_replaces_and_lists() {
        let mut reg = StrategyRegistry::with_builtins();
        let n = reg.names().len();
        reg.register(
            "hash",
            "overridden",
            Arc::new(CanonicalStrategy::new(Method::Hash).with_label("HASH2".into())),
        );
        assert_eq!(reg.names().len(), n, "replacement, not duplication");
        assert_eq!(reg.resolve("hash").unwrap().name(), "HASH2");
        let help = reg.help_table().render_ascii();
        assert!(help.contains("overridden"));
    }

    #[test]
    fn aliases_follow_re_registration() {
        let mut reg = StrategyRegistry::with_builtins();
        assert_eq!(reg.resolve("p-metis").unwrap().name(), "R-METIS");
        reg.register(
            "r-metis",
            "replaced",
            Arc::new(CanonicalStrategy::new(Method::RMetis).with_label("RM2".into())),
        );
        // the alias is late-bound: it sees the replacement
        assert_eq!(reg.resolve("p-metis").unwrap().name(), "RM2");
    }
}
