//! Regenerates **Fig. 4**: box-and-whisker statistics (min/Q1/median/Q3/
//! max via five-number summaries, plus violin densities) of per-window
//! dynamic edge-cut and dynamic balance for all five methods over the
//! four 2017 periods, at 2 and 8 shards.

use blockpart_bench::{generate_history, seed_from_env};
use blockpart_core::experiments::{fig4_cells, fig4_periods, fig4_table};
use blockpart_core::{Method, Study};
use blockpart_metrics::ViolinDensity;
use blockpart_types::ShardCount;

fn main() {
    let chain = generate_history();
    let ks = [ShardCount::TWO, ShardCount::new(8).expect("8 > 0")];
    let result = Study::new(&chain.log)
        .methods(Method::ALL.to_vec())
        .shard_counts(ks.to_vec())
        .seed(seed_from_env())
        .run();

    let periods = fig4_periods();
    let cells = fig4_cells(&result, &periods);
    for k in ks {
        println!("\n## Fig. 4 — {k} (2017 periods, per-window dynamic metrics)\n");
        println!("{}", fig4_table(&cells, k).render_ascii());
    }

    // violin densities for the first period at k = 2 (the full figure's
    // density outline, 16 bins)
    println!(
        "## violin density (dynamic edge-cut, {}, k = 2)\n",
        periods[0].2
    );
    for run in result.runs.iter().filter(|r| r.k == ShardCount::TWO) {
        let cuts: Vec<f64> = run
            .result
            .windows_in(periods[0].0, periods[0].1)
            .iter()
            .filter(|w| w.events > 0)
            .map(|w| w.dynamic_edge_cut)
            .collect();
        if let Some(v) = ViolinDensity::of(&cuts, 16) {
            let max = v.density.iter().cloned().fold(0.0, f64::max).max(1e-12);
            let bars: String = v
                .density
                .iter()
                .map(|&d| match (d / max * 4.0) as usize {
                    0 => ' ',
                    1 => '.',
                    2 => ':',
                    3 => '|',
                    _ => '#',
                })
                .collect();
            println!(
                "{:<9} [{bars}]  ({:.2}..{:.2})",
                run.method.label(),
                v.grid[0],
                v.grid[15]
            );
        }
    }
}
