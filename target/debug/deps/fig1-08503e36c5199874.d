/root/repo/target/debug/deps/fig1-08503e36c5199874.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-08503e36c5199874: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
