//! One-pass streaming partitioners: Linear Deterministic Greedy and
//! Fennel.
//!
//! The paper's methods either ignore the graph (hashing) or repartition
//! periodically (KL, METIS family). A third family the literature offers —
//! and a natural fit for blockchains, where vertices arrive one
//! transaction at a time — is *streaming* partitioning: each vertex is
//! assigned once, on arrival, using only the already-placed part of the
//! graph. These are implemented as additional baselines for the ablation
//! benchmarks:
//!
//! * [`LinearGreedy`] (LDG, Stanton & Kliot, KDD 2012): place `v` on the
//!   shard holding most of its neighbours, damped by a multiplicative
//!   `(1 − load/capacity)` penalty;
//! * [`Fennel`] (Tsourakakis et al., WSDM 2014): place `v` to maximize
//!   `|N(v) ∩ S| − α·γ·|S|^(γ−1)`, interpolating between minimizing cut
//!   and balancing load.
//!
//! Both algorithms are *one-pass by construction*: a vertex's score only
//! consults already-placed neighbours (`u < v`). That makes them the
//! natural consumers of the out-of-core CSR row stream
//! ([`blockpart_graph::ooc::OocCsr::rows`]) — [`partition_stream`
//! ](LinearGreedy::partition_stream) variants accept rows one at a time
//! and never need the adjacency arrays resident. The in-memory
//! [`Partitioner::partition`] entry points delegate to the same core, so
//! streamed and resident runs are byte-identical on the same graph.

use std::convert::Infallible;

use blockpart_graph::ooc::OocCsr;
use blockpart_types::ShardCount;

use crate::partition::Partition;
use crate::traits::{PartitionRequest, Partitioner};

/// A fallible source of CSR rows in vertex order: each item is row `v`'s
/// sorted `(neighbor, weight)` pairs. Implemented by any iterator, letting
/// resident CSRs and disk-backed row streams share one partitioning core.
pub type RowResult<E> = Result<Vec<(u32, u64)>, E>;

fn resident_rows(csr: &blockpart_graph::Csr) -> impl Iterator<Item = RowResult<Infallible>> + '_ {
    (0..csr.node_count()).map(move |v| Ok(csr.neighbors(v).collect()))
}

/// The Linear Deterministic Greedy streaming partitioner.
///
/// Vertices are visited in index order (for blockchain graphs this *is*
/// arrival order, since the builder interns vertices on first
/// appearance).
///
/// # Examples
///
/// ```
/// use blockpart_graph::Csr;
/// use blockpart_partition::{LinearGreedy, PartitionRequest, Partitioner};
/// use blockpart_types::ShardCount;
///
/// let csr = Csr::from_edges(4, &[(0, 1, 5), (2, 3, 5)]);
/// let p = LinearGreedy::new(1.0).partition(&PartitionRequest::new(&csr, ShardCount::TWO));
/// // each pair ends up co-located
/// assert_eq!(p.shard_of(0), p.shard_of(1));
/// assert_eq!(p.shard_of(2), p.shard_of(3));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct LinearGreedy {
    /// Capacity slack factor: each shard may hold up to
    /// `slack · n / k` vertices. 1.0 is the tightest feasible setting.
    slack: f64,
}

impl LinearGreedy {
    /// Creates an LDG partitioner with the given capacity slack (≥ 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `slack < 1.0`.
    pub fn new(slack: f64) -> Self {
        assert!(slack >= 1.0, "capacity slack must be at least 1.0");
        LinearGreedy { slack }
    }
}

impl Default for LinearGreedy {
    fn default() -> Self {
        LinearGreedy::new(1.1)
    }
}

impl LinearGreedy {
    /// Partitions `n` vertices from a stream of CSR rows in vertex order
    /// (row `v` = sorted `(neighbor, weight)` pairs of `v`).
    ///
    /// Byte-identical to [`Partitioner::partition`] on the equivalent
    /// resident [`Csr`](blockpart_graph::Csr) — the resident entry point
    /// delegates here. Memory: `O(k + n)` (loads plus the assignment
    /// being built); rows are consumed and dropped one at a time.
    pub fn partition_stream<E>(
        &self,
        n: usize,
        k: ShardCount,
        rows: impl IntoIterator<Item = RowResult<E>>,
    ) -> Result<Partition, E> {
        let kk = k.as_usize();
        let capacity = ((n as f64 / kk as f64) * self.slack).ceil().max(1.0);
        let mut assignment: Vec<u16> = Vec::with_capacity(n);
        let mut loads = vec![0usize; kk];
        let mut neigh = vec![0u64; kk];
        for (v, row) in rows.into_iter().enumerate() {
            let row = row?;
            for x in neigh.iter_mut() {
                *x = 0;
            }
            for &(u, w) in &row {
                let u = u as usize;
                if u < v {
                    neigh[assignment[u] as usize] += w;
                }
            }
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for (s, (&nw, &load)) in neigh.iter().zip(&loads).enumerate() {
                let score = (nw as f64 + 1.0) * (1.0 - load as f64 / capacity);
                if score > best_score {
                    best_score = score;
                    best = s;
                }
            }
            assignment.push(best as u16);
            loads[best] += 1;
        }
        Ok(Partition::from_assignment(assignment, k).expect("shards within k"))
    }

    /// Partitions an out-of-core CSR by streaming its rows from disk —
    /// the adjacency arrays are never resident.
    pub fn partition_ooc(&self, ooc: &OocCsr, k: ShardCount) -> std::io::Result<Partition> {
        let mut rows = ooc.rows()?;
        let iter = std::iter::from_fn(move || rows.next_row().transpose());
        self.partition_stream(ooc.node_count(), k, iter)
    }
}

impl Partitioner for LinearGreedy {
    fn name(&self) -> &str {
        "ldg"
    }

    fn partition(&mut self, req: &PartitionRequest<'_>) -> Partition {
        let result: Result<Partition, Infallible> =
            self.partition_stream(req.csr.node_count(), req.k, resident_rows(req.csr));
        result.expect("resident rows are infallible")
    }
}

/// The Fennel streaming partitioner.
///
/// # Examples
///
/// ```
/// use blockpart_graph::Csr;
/// use blockpart_partition::{Fennel, PartitionRequest, Partitioner};
/// use blockpart_types::ShardCount;
///
/// let edges: Vec<(u32, u32, u64)> = (0..31).map(|i| (i, i + 1, 1)).collect();
/// let csr = Csr::from_edges(32, &edges);
/// let p = Fennel::default().partition(&PartitionRequest::new(&csr, ShardCount::TWO));
/// let sizes = p.shard_sizes();
/// assert!(sizes.iter().all(|&s| s >= 8), "sizes {sizes:?}");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Fennel {
    /// Load exponent γ (the paper's default is 1.5).
    gamma: f64,
    /// Extra weight on the balance term (scales the derived α).
    balance_pressure: f64,
}

impl Fennel {
    /// Creates a Fennel partitioner.
    ///
    /// # Panics
    ///
    /// Panics if `gamma <= 1.0` or `balance_pressure <= 0.0`.
    pub fn new(gamma: f64, balance_pressure: f64) -> Self {
        assert!(gamma > 1.0, "gamma must exceed 1");
        assert!(balance_pressure > 0.0, "balance pressure must be positive");
        Fennel {
            gamma,
            balance_pressure,
        }
    }
}

impl Default for Fennel {
    fn default() -> Self {
        Fennel::new(1.5, 1.0)
    }
}

impl Fennel {
    /// Partitions `n` vertices with `m` undirected edges from a stream of
    /// CSR rows in vertex order. `m` must be known up front because
    /// Fennel's α is derived from it — the out-of-core CSR exposes it
    /// before any row streams
    /// ([`OocCsr::undirected_edge_count`]).
    ///
    /// Byte-identical to [`Partitioner::partition`] on the equivalent
    /// resident [`Csr`](blockpart_graph::Csr) — the resident entry point
    /// delegates here. Memory: `O(k + n)`.
    pub fn partition_stream<E>(
        &self,
        n: usize,
        m: usize,
        k: ShardCount,
        rows: impl IntoIterator<Item = RowResult<E>>,
    ) -> Result<Partition, E> {
        let kk = k.as_usize();
        if n == 0 {
            return Ok(Partition::all_on_first(0, k));
        }
        let m = m.max(1) as f64;
        // α = √k · m / n^γ, the Fennel paper's recommended setting.
        let alpha = (kk as f64).sqrt() * m / (n as f64).powf(self.gamma) * self.balance_pressure;

        let mut assignment: Vec<u16> = Vec::with_capacity(n);
        let mut loads = vec![0f64; kk];
        let mut neigh = vec![0u64; kk];
        for (v, row) in rows.into_iter().enumerate() {
            let row = row?;
            for x in neigh.iter_mut() {
                *x = 0;
            }
            for &(u, w) in &row {
                let u = u as usize;
                if u < v {
                    neigh[assignment[u] as usize] += w;
                }
            }
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for s in 0..kk {
                let marginal_cost =
                    alpha * ((loads[s] + 1.0).powf(self.gamma) - loads[s].powf(self.gamma));
                let score = neigh[s] as f64 - marginal_cost;
                if score > best_score {
                    best_score = score;
                    best = s;
                }
            }
            assignment.push(best as u16);
            loads[best] += 1.0;
        }
        Ok(Partition::from_assignment(assignment, k).expect("shards within k"))
    }

    /// Partitions an out-of-core CSR by streaming its rows from disk —
    /// the adjacency arrays are never resident.
    pub fn partition_ooc(&self, ooc: &OocCsr, k: ShardCount) -> std::io::Result<Partition> {
        let mut rows = ooc.rows()?;
        let iter = std::iter::from_fn(move || rows.next_row().transpose());
        self.partition_stream(ooc.node_count(), ooc.undirected_edge_count(), k, iter)
    }
}

impl Partitioner for Fennel {
    fn name(&self) -> &str {
        "fennel"
    }

    fn partition(&mut self, req: &PartitionRequest<'_>) -> Partition {
        let result: Result<Partition, Infallible> = self.partition_stream(
            req.csr.node_count(),
            req.csr.edge_count(),
            req.k,
            resident_rows(req.csr),
        );
        result.expect("resident rows are infallible")
    }
}

/// Convenience: runs a streaming partitioner and reports whether every
/// shard received at least one vertex (a frequent failure mode of greedy
/// streams on small graphs).
pub fn covers_all_shards(partition: &Partition, k: ShardCount) -> bool {
    partition
        .shard_sizes()
        .iter()
        .take(k.as_usize())
        .all(|&s| s > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CutMetrics;
    use blockpart_graph::Csr;

    fn k(n: u16) -> ShardCount {
        ShardCount::new(n).unwrap()
    }

    fn clique_pair() -> Csr {
        let mut edges = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                edges.push((a, b, 4));
                edges.push((a + 6, b + 6, 4));
            }
        }
        edges.push((5, 6, 1));
        Csr::from_edges(12, &edges)
    }

    #[test]
    fn ldg_separates_cliques() {
        let csr = clique_pair();
        let p = LinearGreedy::default().partition(&PartitionRequest::new(&csr, k(2)));
        let m = CutMetrics::compute(&csr, &p);
        assert!(m.cut_weight <= 9, "cut weight {}", m.cut_weight);
        assert!(covers_all_shards(&p, k(2)));
    }

    #[test]
    fn fennel_separates_cliques() {
        let csr = clique_pair();
        let p = Fennel::default().partition(&PartitionRequest::new(&csr, k(2)));
        let m = CutMetrics::compute(&csr, &p);
        assert!(m.cut_weight <= 9, "cut weight {}", m.cut_weight);
        assert!(covers_all_shards(&p, k(2)));
    }

    #[test]
    fn ldg_respects_capacity() {
        // a star: greedy-without-capacity would put everything on one shard
        let edges: Vec<(u32, u32, u64)> = (1..40).map(|i| (0, i, 1)).collect();
        let csr = Csr::from_edges(40, &edges);
        let p = LinearGreedy::new(1.05).partition(&PartitionRequest::new(&csr, k(4)));
        let sizes = p.shard_sizes();
        let cap = (40.0 / 4.0 * 1.05f64).ceil() as usize;
        assert!(sizes.iter().all(|&s| s <= cap), "sizes {sizes:?} cap {cap}");
    }

    #[test]
    fn fennel_balances_better_with_pressure() {
        let edges: Vec<(u32, u32, u64)> = (1..60).map(|i| (0, i, 1)).collect();
        let csr = Csr::from_edges(60, &edges);
        let loose = Fennel::new(1.5, 0.1).partition(&PartitionRequest::new(&csr, k(4)));
        let tight = Fennel::new(1.5, 20.0).partition(&PartitionRequest::new(&csr, k(4)));
        let spread = |p: &Partition| {
            let s = p.shard_sizes();
            *s.iter().max().unwrap() - *s.iter().min().unwrap()
        };
        assert!(spread(&tight) <= spread(&loose));
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let empty = Csr::from_edges(0, &[]);
        assert!(LinearGreedy::default()
            .partition(&PartitionRequest::new(&empty, k(2)))
            .is_empty());
        assert!(Fennel::default()
            .partition(&PartitionRequest::new(&empty, k(2)))
            .is_empty());
        let single = Csr::from_edges(1, &[]);
        let p = Fennel::default().partition(&PartitionRequest::new(&single, k(8)));
        assert_eq!(p.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 1.0")]
    fn ldg_rejects_tight_slack() {
        let _ = LinearGreedy::new(0.9);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn fennel_rejects_bad_gamma() {
        let _ = Fennel::new(1.0, 1.0);
    }

    #[test]
    fn deterministic() {
        let csr = clique_pair();
        let a = Fennel::default().partition(&PartitionRequest::new(&csr, k(4)));
        let b = Fennel::default().partition(&PartitionRequest::new(&csr, k(4)));
        assert_eq!(a, b);
    }

    #[test]
    fn streamed_rows_match_resident_partition() {
        use blockpart_graph::GraphBuilder;
        use blockpart_types::Address;

        let mut b = GraphBuilder::new();
        for i in 0..400u64 {
            b.add_interaction(
                Address::from_index(i % 37),
                Address::from_index((i * 5 + 1) % 37),
                1 + i % 4,
            );
        }
        let g = b.build();
        let csr = g.to_csr();
        let ooc = OocCsr::build(&g, &std::env::temp_dir(), 128).unwrap();
        for shards in [2u16, 4, 7] {
            let resident_ldg =
                LinearGreedy::default().partition(&PartitionRequest::new(&csr, k(shards)));
            let streamed_ldg = LinearGreedy::default()
                .partition_ooc(&ooc, k(shards))
                .unwrap();
            assert_eq!(streamed_ldg, resident_ldg, "ldg k={shards}");
            let resident_fennel =
                Fennel::default().partition(&PartitionRequest::new(&csr, k(shards)));
            let streamed_fennel = Fennel::default().partition_ooc(&ooc, k(shards)).unwrap();
            assert_eq!(streamed_fennel, resident_fennel, "fennel k={shards}");
        }
        ooc.finish().unwrap();
    }
}
