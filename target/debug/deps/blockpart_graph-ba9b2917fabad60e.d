/root/repo/target/debug/deps/blockpart_graph-ba9b2917fabad60e.d: crates/graph/src/lib.rs crates/graph/src/algos.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/event.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/node.rs

/root/repo/target/debug/deps/libblockpart_graph-ba9b2917fabad60e.rlib: crates/graph/src/lib.rs crates/graph/src/algos.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/event.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/node.rs

/root/repo/target/debug/deps/libblockpart_graph-ba9b2917fabad60e.rmeta: crates/graph/src/lib.rs crates/graph/src/algos.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/event.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/node.rs

crates/graph/src/lib.rs:
crates/graph/src/algos.rs:
crates/graph/src/builder.rs:
crates/graph/src/csr.rs:
crates/graph/src/event.rs:
crates/graph/src/graph.rs:
crates/graph/src/io.rs:
crates/graph/src/node.rs:
