//! The on-disk columnar segment format (`BPSG`).
//!
//! A segment is one chunk of an interaction stream, laid out column-major
//! so sequential scans touch only the bytes they need:
//!
//! ```text
//! header   magic "BPSG" · version u32 · count u64
//!          min_time u64 · max_time u64 · min_block u64 · max_block u64
//! columns  time   u64  × count
//!          from   [u8; 20] × count
//!          to     [u8; 20] × count
//!          weight u64  × count
//!          kinds  u8   × count   (bit 0: from is contract, bit 1: to is)
//! trailer  fnv1a-64 checksum over header + columns
//! ```
//!
//! All integers are little-endian. The `min/max` header fields let readers
//! prune whole segments against a time or block window without touching
//! the columns. Truncation and corruption are detected as *named errors*
//! ([`SegmentError::Truncated`], [`SegmentError::Corrupt`]) — never a
//! panic — so a crashed writer's tail segment is diagnosable.

use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

use blockpart_graph::Interaction;
use blockpart_types::{AccountKind, BlockNumber, Timestamp};

/// File magic for segment files.
pub const SEGMENT_MAGIC: [u8; 4] = *b"BPSG";

/// Current format version.
pub const SEGMENT_VERSION: u32 = 1;

const HEADER_BYTES: usize = 4 + 4 + 8 + 8 + 8 + 8 + 8;
/// Per-event payload bytes: time + from + to + weight + kind byte.
const EVENT_BYTES: usize = 8 + 20 + 20 + 8 + 1;

/// What went wrong reading a segment.
#[derive(Debug)]
pub enum SegmentError {
    /// The file does not start with the `BPSG` magic.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The file ends before the byte count its header promises — the
    /// signature of a writer killed mid-segment.
    Truncated {
        /// Bytes the header implies the file should hold.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The checksum over header and columns does not match the trailer.
    Corrupt {
        /// Checksum recorded in the trailer.
        stored: u64,
        /// Checksum recomputed from the bytes read.
        computed: u64,
    },
    /// An underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::BadMagic => write!(f, "not a BPSG segment (bad magic)"),
            SegmentError::UnsupportedVersion(v) => {
                write!(f, "unsupported segment version {v}")
            }
            SegmentError::Truncated { expected, actual } => write!(
                f,
                "truncated segment: header promises {expected} bytes, file has {actual}"
            ),
            SegmentError::Corrupt { stored, computed } => write!(
                f,
                "corrupt segment: checksum {computed:#018x} != stored {stored:#018x}"
            ),
            SegmentError::Io(e) => write!(f, "segment i/o error: {e}"),
        }
    }
}

impl std::error::Error for SegmentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SegmentError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SegmentError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            // Reported with byte counts by the framing layer where known;
            // a bare EOF is still a truncation, not a generic I/O fault.
            SegmentError::Truncated {
                expected: 0,
                actual: 0,
            }
        } else {
            SegmentError::Io(e)
        }
    }
}

/// Per-segment metadata, readable without scanning the columns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Number of events in the segment.
    pub count: u64,
    /// Earliest event timestamp (seconds); 0 when the segment is empty.
    pub min_time: Timestamp,
    /// Latest event timestamp (seconds); 0 when the segment is empty.
    pub max_time: Timestamp,
    /// Lowest block index covered by the segment.
    pub min_block: BlockNumber,
    /// Highest block index covered by the segment.
    pub max_block: BlockNumber,
}

impl SegmentMeta {
    /// `true` when the segment can hold no event with
    /// `start <= time < end` — the window-pruning test.
    pub fn disjoint_from_window(&self, start: Timestamp, end: Timestamp) -> bool {
        self.count == 0 || self.max_time < start || self.min_time >= end
    }
}

fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// A checksumming byte sink.
struct HashedWriter<W: Write> {
    inner: W,
    hash: u64,
}

impl<W: Write> HashedWriter<W> {
    fn new(inner: W) -> Self {
        HashedWriter {
            inner,
            hash: FNV_OFFSET,
        }
    }

    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.hash = fnv1a(self.hash, bytes);
        self.inner.write_all(bytes)
    }
}

/// Serializes one segment: `events` paired with the block range
/// `[min_block, max_block]` it came from. Events must be time-ordered
/// (the writer asserts the min/max metadata it derives).
pub fn write_segment<W: Write>(
    out: W,
    events: &[Interaction],
    min_block: BlockNumber,
    max_block: BlockNumber,
) -> io::Result<()> {
    let mut w = HashedWriter::new(out);
    let min_time = events.first().map_or(0, |e| e.time.as_secs());
    let max_time = events.last().map_or(0, |e| e.time.as_secs());
    debug_assert!(
        events.windows(2).all(|p| p[0].time <= p[1].time),
        "segment events must be time-ordered"
    );
    w.put(&SEGMENT_MAGIC)?;
    w.put(&SEGMENT_VERSION.to_le_bytes())?;
    w.put(&(events.len() as u64).to_le_bytes())?;
    w.put(&min_time.to_le_bytes())?;
    w.put(&max_time.to_le_bytes())?;
    w.put(&min_block.get().to_le_bytes())?;
    w.put(&max_block.get().to_le_bytes())?;
    for e in events {
        w.put(&e.time.as_secs().to_le_bytes())?;
    }
    for e in events {
        w.put(e.from.as_bytes())?;
    }
    for e in events {
        w.put(e.to.as_bytes())?;
    }
    for e in events {
        w.put(&e.weight.to_le_bytes())?;
    }
    for e in events {
        let kinds = (e.from_kind.is_contract() as u8) | ((e.to_kind.is_contract() as u8) << 1);
        w.put(&[kinds])?;
    }
    let hash = w.hash;
    w.inner.write_all(&hash.to_le_bytes())?;
    w.inner.flush()
}

fn kind_of(bit: bool) -> AccountKind {
    if bit {
        AccountKind::Contract
    } else {
        AccountKind::ExternallyOwned
    }
}

/// Deserializes one segment, verifying framing and checksum. Returns the
/// metadata and the decoded events.
pub fn read_segment<R: Read>(
    mut input: R,
) -> Result<(SegmentMeta, Vec<Interaction>), SegmentError> {
    // Reading the whole file up front lets truncation be reported with
    // exact byte counts instead of a bare EOF mid-column.
    let mut bytes = Vec::new();
    input.read_to_end(&mut bytes).map_err(SegmentError::Io)?;
    if bytes.len() < 8 || bytes[..4] != SEGMENT_MAGIC {
        if bytes.len() >= 4 && bytes[..4] != SEGMENT_MAGIC {
            return Err(SegmentError::BadMagic);
        }
        return Err(SegmentError::Truncated {
            expected: (HEADER_BYTES + 8) as u64,
            actual: bytes.len() as u64,
        });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != SEGMENT_VERSION {
        return Err(SegmentError::UnsupportedVersion(version));
    }
    if bytes.len() < HEADER_BYTES {
        return Err(SegmentError::Truncated {
            expected: (HEADER_BYTES + 8) as u64,
            actual: bytes.len() as u64,
        });
    }
    let word = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    let count = word(8);
    let meta = SegmentMeta {
        count,
        min_time: Timestamp::from_secs(word(16)),
        max_time: Timestamp::from_secs(word(24)),
        min_block: BlockNumber::new(word(32)),
        max_block: BlockNumber::new(word(40)),
    };
    let payload = (count as usize)
        .checked_mul(EVENT_BYTES)
        .and_then(|p| p.checked_add(HEADER_BYTES + 8));
    let Some(expected) = payload else {
        return Err(SegmentError::Corrupt {
            stored: 0,
            computed: count,
        });
    };
    if bytes.len() < expected {
        return Err(SegmentError::Truncated {
            expected: expected as u64,
            actual: bytes.len() as u64,
        });
    }
    let body = &bytes[..expected - 8];
    let stored = u64::from_le_bytes(bytes[expected - 8..expected].try_into().expect("8 bytes"));
    let computed = fnv1a(FNV_OFFSET, body);
    if stored != computed {
        return Err(SegmentError::Corrupt { stored, computed });
    }

    let n = count as usize;
    let times = HEADER_BYTES;
    let froms = times + 8 * n;
    let tos = froms + 20 * n;
    let weights = tos + 20 * n;
    let kinds = weights + 8 * n;
    let mut events = Vec::with_capacity(n);
    for i in 0..n {
        let addr = |at: usize| {
            blockpart_types::Address::from_bytes(bytes[at..at + 20].try_into().expect("20 bytes"))
        };
        let kind_byte = bytes[kinds + i];
        events.push(Interaction {
            time: Timestamp::from_secs(word(times + 8 * i)),
            from: addr(froms + 20 * i),
            to: addr(tos + 20 * i),
            weight: word(weights + 8 * i),
            from_kind: kind_of(kind_byte & 1 != 0),
            to_kind: kind_of(kind_byte & 2 != 0),
        });
    }
    Ok((meta, events))
}

/// Reads only a segment's header metadata (for window pruning) without
/// decoding or checksumming the columns.
pub fn read_segment_meta(path: &Path) -> Result<SegmentMeta, SegmentError> {
    let mut f = std::fs::File::open(path).map_err(SegmentError::Io)?;
    let mut header = [0u8; HEADER_BYTES];
    f.read_exact(&mut header).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            SegmentError::Truncated {
                expected: (HEADER_BYTES + 8) as u64,
                actual: std::fs::metadata(path).map(|m| m.len()).unwrap_or(0),
            }
        } else {
            SegmentError::Io(e)
        }
    })?;
    if header[..4] != SEGMENT_MAGIC {
        return Err(SegmentError::BadMagic);
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if version != SEGMENT_VERSION {
        return Err(SegmentError::UnsupportedVersion(version));
    }
    let word = |at: usize| u64::from_le_bytes(header[at..at + 8].try_into().expect("8 bytes"));
    Ok(SegmentMeta {
        count: word(8),
        min_time: Timestamp::from_secs(word(16)),
        max_time: Timestamp::from_secs(word(24)),
        min_block: BlockNumber::new(word(32)),
        max_block: BlockNumber::new(word(40)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpart_types::Address;

    fn sample(n: u64) -> Vec<Interaction> {
        (0..n)
            .map(|i| {
                let mut e = Interaction::new(
                    Timestamp::from_secs(100 + i),
                    Address::from_index(i),
                    Address::from_index(i + 1),
                );
                e.weight = i + 1;
                if i % 3 == 0 {
                    e.to_kind = AccountKind::Contract;
                }
                e
            })
            .collect()
    }

    fn encode(events: &[Interaction]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_segment(&mut buf, events, BlockNumber::new(5), BlockNumber::new(9)).unwrap();
        buf
    }

    #[test]
    fn roundtrip_preserves_events_and_meta() {
        let events = sample(17);
        let buf = encode(&events);
        let (meta, decoded) = read_segment(&buf[..]).unwrap();
        assert_eq!(decoded, events);
        assert_eq!(meta.count, 17);
        assert_eq!(meta.min_time, Timestamp::from_secs(100));
        assert_eq!(meta.max_time, Timestamp::from_secs(116));
        assert_eq!(meta.min_block, BlockNumber::new(5));
        assert_eq!(meta.max_block, BlockNumber::new(9));
    }

    #[test]
    fn empty_segment_roundtrips() {
        let buf = encode(&[]);
        let (meta, decoded) = read_segment(&buf[..]).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(meta.count, 0);
        assert!(meta.disjoint_from_window(Timestamp::from_secs(0), Timestamp::from_secs(u64::MAX)));
    }

    #[test]
    fn truncated_tail_is_named_error() {
        let buf = encode(&sample(8));
        for cut in [buf.len() - 1, buf.len() / 2, HEADER_BYTES, 3] {
            let err = read_segment(&buf[..cut]).unwrap_err();
            assert!(
                matches!(err, SegmentError::Truncated { .. }),
                "cut at {cut} gave {err}"
            );
        }
    }

    #[test]
    fn corrupted_byte_is_named_error() {
        let mut buf = encode(&sample(8));
        let mid = buf.len() / 2;
        buf[mid] ^= 0xff;
        let err = read_segment(&buf[..]).unwrap_err();
        assert!(matches!(err, SegmentError::Corrupt { .. }), "got {err}");
        assert!(err.to_string().contains("corrupt"));
    }

    #[test]
    fn bad_magic_is_named_error() {
        let mut buf = encode(&sample(2));
        buf[0] = b'X';
        assert!(matches!(
            read_segment(&buf[..]).unwrap_err(),
            SegmentError::BadMagic
        ));
    }

    #[test]
    fn future_version_is_refused() {
        let mut buf = encode(&sample(2));
        buf[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            read_segment(&buf[..]).unwrap_err(),
            SegmentError::UnsupportedVersion(99)
        ));
    }

    #[test]
    fn window_pruning_tests() {
        let buf = encode(&sample(10)); // times 100..=109
        let (meta, _) = read_segment(&buf[..]).unwrap();
        let t = Timestamp::from_secs;
        assert!(meta.disjoint_from_window(t(0), t(100))); // end exclusive
        assert!(meta.disjoint_from_window(t(110), t(200)));
        assert!(!meta.disjoint_from_window(t(0), t(101)));
        assert!(!meta.disjoint_from_window(t(109), t(200)));
        assert!(!meta.disjoint_from_window(t(104), t(105)));
    }
}
