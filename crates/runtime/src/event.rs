//! Events of the discrete-event sharded execution engine.

use serde::{Deserialize, Serialize};

use crate::net::Message;

/// Index of a transaction in the engine's replay table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxId(pub u32);

impl TxId {
    /// The index as `usize`, for table lookups.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TxId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tx-{}", self.0)
    }
}

/// Something that happens on one shard at one instant of virtual time.
#[derive(Clone, Debug)]
pub enum Event {
    /// A transaction arrives in its home shard's mempool.
    Arrival(TxId),
    /// A network message is delivered to this shard.
    Net(Message),
    /// The shard's execution unit finishes its current work item.
    ExecDone(TxId),
    /// A cross-shard transaction restarts its prepare round after an
    /// abort backoff.
    Retry(TxId),
}
