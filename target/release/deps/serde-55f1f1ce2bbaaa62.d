/root/repo/target/release/deps/serde-55f1f1ce2bbaaa62.d: third_party/serde/src/lib.rs

/root/repo/target/release/deps/libserde-55f1f1ce2bbaaa62.rlib: third_party/serde/src/lib.rs

/root/repo/target/release/deps/libserde-55f1f1ce2bbaaa62.rmeta: third_party/serde/src/lib.rs

third_party/serde/src/lib.rs:
