//! Property-based tests for the multilevel machinery: matchings,
//! contraction and refinement must preserve their invariants on arbitrary
//! graphs.

use blockpart_graph::Csr;
use blockpart_partition::multilevel::coarsen::contract;
use blockpart_partition::multilevel::matching::{match_vertices, MatchingScheme};
use blockpart_partition::multilevel::refine::{kway_refine, max_shard_weights};
use blockpart_partition::{CutMetrics, Partition};
use blockpart_types::{ShardCount, ShardId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn graph_strategy(max_nodes: u32) -> impl Strategy<Value = Csr> {
    (2..=max_nodes).prop_flat_map(move |n| {
        let edge = (0..n, 0..n, 1..20u64).prop_filter("no self-loops", |(u, v, _)| u != v);
        proptest::collection::vec(edge, 0..150)
            .prop_map(move |edges| Csr::from_edges(n as usize, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matchings_are_valid_for_both_schemes(csr in graph_strategy(48), seed in 0u64..500) {
        for scheme in [MatchingScheme::HeavyEdge, MatchingScheme::Random] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mate = match_vertices(&csr, scheme, &mut rng);
            prop_assert_eq!(mate.len(), csr.node_count());
            for v in 0..csr.node_count() {
                let m = mate[v] as usize;
                prop_assert_eq!(mate[m] as usize, v, "symmetry broken at {}", v);
                if m != v {
                    // adjacent (edge matching) or sharing a neighbour
                    // (two-hop star matching)
                    let adjacent = csr.neighbors(v).any(|(u, _)| u as usize == m);
                    let two_hop = csr.neighbors(v).any(|(h, _)| {
                        csr.neighbors(h as usize).any(|(u, _)| u as usize == m)
                    });
                    prop_assert!(
                        adjacent || two_hop,
                        "matched vertices {} and {} share no neighbour", v, m
                    );
                }
            }
        }
    }

    #[test]
    fn contraction_conserves_weights(csr in graph_strategy(48), seed in 0u64..500) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mate = match_vertices(&csr, MatchingScheme::HeavyEdge, &mut rng);
        let (coarse, cmap) = contract(&csr, &mate);
        prop_assert!(coarse.validate().is_ok());
        // vertex weight is conserved exactly
        prop_assert_eq!(coarse.total_vertex_weight(), csr.total_vertex_weight());
        // edge weight shrinks by exactly the matched (hidden) weight
        let hidden: u64 = (0..csr.node_count())
            .flat_map(|v| csr.neighbors(v).map(move |(u, w)| (v, u as usize, w)))
            .filter(|&(v, u, _)| mate[v] as usize == u && v < u)
            .map(|(_, _, w)| w)
            .sum();
        prop_assert_eq!(coarse.total_edge_weight() + hidden, csr.total_edge_weight());
        // the map is a surjection onto 0..coarse_n
        for &c in &cmap {
            prop_assert!((c as usize) < coarse.node_count());
        }
    }

    #[test]
    fn projection_preserves_cut(csr in graph_strategy(40), seed in 0u64..500) {
        // a cut computed on the coarse graph equals the cut of the
        // projected partition on the fine graph (the core soundness fact
        // of multilevel partitioning)
        let mut rng = SmallRng::seed_from_u64(seed);
        let mate = match_vertices(&csr, MatchingScheme::HeavyEdge, &mut rng);
        let (coarse, cmap) = contract(&csr, &mate);
        let k = ShardCount::TWO;
        // any coarse assignment will do: alternate
        let coarse_assignment: Vec<u16> = (0..coarse.node_count()).map(|v| (v % 2) as u16).collect();
        let coarse_part = Partition::from_assignment(coarse_assignment, k).unwrap();
        let fine_assignment: Vec<u16> =
            cmap.iter().map(|&c| coarse_part.as_slice()[c as usize]).collect();
        let fine_part = Partition::from_assignment(fine_assignment, k).unwrap();
        let coarse_cut = CutMetrics::compute(&coarse, &coarse_part).cut_weight;
        let fine_cut = CutMetrics::compute(&csr, &fine_part).cut_weight;
        prop_assert_eq!(coarse_cut, fine_cut);
    }

    #[test]
    fn refinement_never_increases_cut_or_breaks_ceilings(
        csr in graph_strategy(48),
        seed in 0u64..500,
        kk in 2u16..=6,
    ) {
        let k = ShardCount::new(kk).unwrap();
        let assignment: Vec<u16> = (0..csr.node_count()).map(|v| (v as u16) % kk).collect();
        let mut part = Partition::from_assignment(assignment, k).unwrap();
        let max = max_shard_weights(&csr, k, 1.3);
        let before_cut = CutMetrics::compute(&csr, &part).cut_weight;
        let weights_ok_before = part
            .shard_weights(csr.vertex_weights())
            .iter()
            .zip(&max)
            .all(|(w, m)| w <= m);
        let mut rng = SmallRng::seed_from_u64(seed);
        let gain = kway_refine(&csr, &mut part, &max, 8, &mut rng);
        let after_cut = CutMetrics::compute(&csr, &part).cut_weight;
        prop_assert_eq!(after_cut as i64, before_cut as i64 - gain);
        prop_assert!(gain >= 0, "refinement reported negative gain {}", gain);
        // if the start respected the ceilings, the result must too
        if weights_ok_before {
            let weights = part.shard_weights(csr.vertex_weights());
            for (w, m) in weights.iter().zip(&max) {
                prop_assert!(w <= m, "ceiling violated: {} > {}", w, m);
            }
        }
    }

    #[test]
    fn every_shard_id_is_valid_after_refinement(
        csr in graph_strategy(32),
        seed in 0u64..200,
    ) {
        let k = ShardCount::new(3).unwrap();
        let assignment: Vec<u16> = (0..csr.node_count()).map(|v| (v as u16) % 3).collect();
        let mut part = Partition::from_assignment(assignment, k).unwrap();
        let max = max_shard_weights(&csr, k, 2.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        kway_refine(&csr, &mut part, &max, 4, &mut rng);
        for v in 0..csr.node_count() {
            prop_assert!(part.shard_of(v) < ShardId::new(3));
        }
    }
}
