//! A windowed, decaying interaction graph for online repartitioning.
//!
//! The offline simulator rebuilds its reduced graph from a retained
//! event buffer at every repartition. A long-running service wants the
//! same R-METIS `window` semantics as a *maintained* structure: events
//! stream in, whole windows expire, and the partitioner can ask for the
//! current graph at any trigger point. Weights decay linearly with
//! window age (the newest window counts `depth×`, the oldest `1×`), so
//! a trigger reacts to where the traffic is now, not where it was a
//! week ago.

use std::collections::VecDeque;

use blockpart_graph::{GraphBuilder, Interaction};
use blockpart_types::{Address, Duration, ShardCount, ShardId, Timestamp};

use crate::state::activity_balance;

/// A sliding multi-window buffer of interactions with per-window decay.
///
/// # Examples
///
/// ```
/// use blockpart_graph::Interaction;
/// use blockpart_shard::WindowedGraph;
/// use blockpart_types::{Address, Duration, Timestamp};
///
/// let mut wg = WindowedGraph::new(Duration::hours(4), 7);
/// wg.record(Interaction::new(
///     Timestamp::from_secs(60),
///     Address::from_index(1),
///     Address::from_index(2),
/// ));
/// assert_eq!(wg.event_count(), 1);
/// let (csr, order, _ids) = wg.build().expect("non-empty");
/// assert_eq!(order.len(), 2);
/// assert_eq!(csr.node_count(), 2);
/// ```
#[derive(Debug)]
pub struct WindowedGraph {
    window: Duration,
    depth: usize,
    /// `(window start, events)` buckets in ascending time order.
    buckets: VecDeque<(Timestamp, Vec<Interaction>)>,
}

impl WindowedGraph {
    /// Creates a buffer of `depth` windows of length `window` (the
    /// R-METIS `window=7` configuration is `depth = 7`).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `depth` is zero.
    pub fn new(window: Duration, depth: usize) -> Self {
        assert!(!window.is_zero(), "window must be non-zero");
        assert!(depth > 0, "depth must be non-zero");
        WindowedGraph {
            window,
            depth,
            buckets: VecDeque::new(),
        }
    }

    /// The window length.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// How many windows the buffer retains.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Buffered events across all retained windows.
    pub fn event_count(&self) -> usize {
        self.buckets.iter().map(|(_, b)| b.len()).sum()
    }

    /// Appends one interaction. Events must arrive in non-decreasing
    /// time order; crossing a window boundary opens a new bucket and
    /// expires buckets older than `depth` windows.
    pub fn record(&mut self, event: Interaction) {
        let start = event.time.align_down(self.window);
        match self.buckets.back_mut() {
            Some((bucket_start, bucket)) if *bucket_start == start => bucket.push(event),
            _ => {
                self.buckets.push_back((start, vec![event]));
                self.expire(start);
            }
        }
    }

    /// Expires windows that fell out of the retained span as of the
    /// window starting at `newest`. [`record`](Self::record) calls this
    /// automatically; explicit calls let a driver advance over idle gaps.
    pub fn expire(&mut self, newest: Timestamp) {
        let span = Duration::from_secs(self.window.as_secs() * (self.depth as u64 - 1));
        let cutoff = newest - span;
        while self.buckets.front().is_some_and(|(s, _)| *s < cutoff) {
            self.buckets.pop_front();
        }
    }

    /// Builds the decayed reduced graph: CSR plus the address of every
    /// vertex (in deterministic first-touch order) and its stable id.
    /// Returns `None` when the buffer holds no events.
    pub fn build(&self) -> Option<(blockpart_graph::Csr, Vec<Address>, Vec<u64>)> {
        if self.event_count() == 0 {
            return None;
        }
        let newest = self.buckets.back().expect("non-empty").0;
        let mut builder = GraphBuilder::new();
        for (start, bucket) in &self.buckets {
            // linear decay: a window `age` windows old contributes
            // weight × (depth − age)
            let age = (newest.since(*start).as_secs() / self.window.as_secs()) as usize;
            let decay = (self.depth.saturating_sub(age)).max(1) as u64;
            for e in bucket {
                builder.touch(e.from, e.from_kind);
                builder.touch(e.to, e.to_kind);
                builder.add_interaction(e.from, e.to, e.weight * decay);
            }
        }
        let graph = builder.build();
        let order: Vec<Address> = graph.nodes().map(|n| n.address).collect();
        let ids: Vec<u64> = order.iter().map(|a| a.stable_hash()).collect();
        Some((graph.to_csr(), order, ids))
    }

    /// Dynamic edge-cut and activity balance of the newest window's
    /// traffic under `shard_of` — the quantities a
    /// [`RepartitionPolicy::Threshold`](crate::RepartitionPolicy) trigger
    /// compares against its thresholds.
    pub fn newest_window_metrics(
        &self,
        k: ShardCount,
        shard_of: impl Fn(Address) -> ShardId,
    ) -> (f64, f64) {
        let Some((_, bucket)) = self.buckets.back() else {
            return (0.0, 1.0);
        };
        let mut cut = 0u64;
        let mut total = 0u64;
        let mut activity = vec![0u64; k.as_usize()];
        for e in bucket {
            let (su, sv) = (shard_of(e.from), shard_of(e.to));
            activity[su.as_usize()] += e.weight;
            if e.from != e.to {
                activity[sv.as_usize()] += e.weight;
                total += e.weight;
                if su != sv {
                    cut += e.weight;
                }
            }
        }
        let cut_frac = if total == 0 {
            0.0
        } else {
            cut as f64 / total as f64
        };
        (cut_frac, activity_balance(&activity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn at(hours: u64, from: u64, to: u64) -> Interaction {
        Interaction::new(Timestamp::from_secs(hours * 3_600), addr(from), addr(to))
    }

    #[test]
    fn expires_windows_beyond_depth() {
        let mut wg = WindowedGraph::new(Duration::hours(1), 3);
        for h in 0..10 {
            wg.record(at(h, h, h + 1));
        }
        // only hours 7, 8, 9 remain (depth 3)
        assert_eq!(wg.event_count(), 3);
        let (_, order, _) = wg.build().unwrap();
        assert!(order.contains(&addr(7)));
        assert!(!order.contains(&addr(5)));
    }

    #[test]
    fn decay_weights_newer_windows_heavier() {
        let mut wg = WindowedGraph::new(Duration::hours(1), 2);
        wg.record(at(0, 1, 2)); // old window: decay 1
        wg.record(at(1, 3, 4)); // new window: decay 2
        let (csr, order, _) = wg.build().unwrap();
        let w_of = |a: Address| {
            let v = order.iter().position(|&x| x == a).unwrap();
            csr.weighted_degree(v)
        };
        assert_eq!(w_of(addr(1)), 1);
        assert_eq!(w_of(addr(3)), 2);
    }

    #[test]
    fn newest_window_metrics_track_assignment() {
        let mut wg = WindowedGraph::new(Duration::hours(1), 4);
        wg.record(at(0, 1, 2));
        wg.record(at(0, 3, 4));
        let k = ShardCount::TWO;
        // all on one shard: zero cut, maximally imbalanced activity
        let (cut, bal) = wg.newest_window_metrics(k, |_| ShardId::new(0));
        assert_eq!(cut, 0.0);
        assert_eq!(bal, 2.0);
        // split every edge: full cut, balanced
        let (cut, bal) = wg.newest_window_metrics(k, |a| ShardId::new((a.index() % 2) as u16));
        assert_eq!(cut, 1.0);
        assert_eq!(bal, 1.0);
    }

    #[test]
    fn empty_buffer_builds_nothing() {
        let wg = WindowedGraph::new(Duration::hours(1), 2);
        assert!(wg.build().is_none());
        let (cut, bal) = wg.newest_window_metrics(ShardCount::TWO, |_| ShardId::new(0));
        assert_eq!((cut, bal), (0.0, 1.0));
    }
}
