//! The runtime's measurement output: what a partition actually costs at
//! execution time.

use std::collections::BTreeMap;

use blockpart_metrics::{percentile_sorted, Table};
use blockpart_types::{ShardCount, ShardId};
use serde::{Deserialize, Serialize};

/// Per-shard execution counters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// The shard.
    pub shard: ShardId,
    /// Transactions committed with this shard as home.
    pub committed: u64,
    /// Of those, how many needed cross-shard coordination.
    pub cross_committed: u64,
    /// Virtual microseconds the execution unit was busy.
    pub busy_us: u64,
    /// `busy_us / makespan` — how loaded the shard's executor was.
    pub utilization: f64,
    /// Prepare rounds this shard coordinated that aborted.
    pub aborted_rounds: u64,
    /// Speculative executions the engine ran ahead of the commit point
    /// (0 under the serial engine; absent in pre-split reports).
    #[serde(default)]
    pub exec_speculated: u64,
    /// Cached speculations invalidated by an intervening write to their
    /// read/write footprint.
    #[serde(default)]
    pub exec_conflicts: u64,
    /// Transactions re-executed at their commit point because their
    /// speculation was invalidated or flushed.
    #[serde(default)]
    pub exec_re_executions: u64,
}

/// The outcome of one sharded execution run.
///
/// This is the execution-level counterpart of the paper's static
/// edge-cut/balance metrics: the same partition quality, expressed as
/// coordination cost — cross-shard ratio, 2PC aborts, commit latency and
/// delivered throughput.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RuntimeReport {
    /// Shard count of the run.
    pub k: ShardCount,
    /// Transactions offered to the system.
    pub total_txs: usize,
    /// Transactions that committed.
    pub committed: u64,
    /// Transactions that exhausted their 2PC retry budget.
    pub failed: u64,
    /// Transactions whose footprint spanned more than one shard.
    pub cross_shard_txs: usize,
    /// `cross_shard_txs / total_txs` (0 when the run is empty).
    pub cross_shard_ratio: f64,
    /// Prepare rounds broadcast (0 when every transaction is
    /// single-shard).
    pub prepare_rounds: u64,
    /// Prepare rounds that aborted.
    pub aborted_rounds: u64,
    /// `aborted_rounds` broken down by cause. `"lock-conflict"` rounds
    /// lost a lock race and will retry; `"retry-exhausted"` rounds were
    /// the terminal attempt of a transaction that then failed. Values
    /// sum to `aborted_rounds`.
    pub abort_causes: BTreeMap<String, u64>,
    /// `aborted_rounds / prepare_rounds` (0 when no rounds ran).
    pub abort_rate: f64,
    /// Single-shard executions deferred by a lock held locally.
    pub local_conflicts: u64,
    /// Executed touches outside the declared footprint (divergence of
    /// the sharded re-execution from the canonical access list).
    pub stray_touches: u64,
    /// Median commit latency (arrival → commit), microseconds.
    pub p50_commit_latency_us: u64,
    /// 99th-percentile commit latency, microseconds.
    pub p99_commit_latency_us: u64,
    /// First arrival → last commit, microseconds.
    pub makespan_us: u64,
    /// Committed transactions per virtual second.
    pub throughput_tps: f64,
    /// Speculative executions across all shards (0 under the serial
    /// engine; absent in pre-split reports).
    #[serde(default)]
    pub exec_speculated: u64,
    /// Speculations invalidated by an intervening write, across shards.
    #[serde(default)]
    pub exec_conflicts: u64,
    /// Commit-point re-executions after a wasted speculation, across
    /// shards.
    #[serde(default)]
    pub exec_re_executions: u64,
    /// Per-shard breakdown.
    pub per_shard: Vec<ShardReport>,
}

impl RuntimeReport {
    /// Computes the p50/p99 fields from raw commit latencies.
    pub(crate) fn latency_percentiles(latencies: &mut [u64]) -> (u64, u64) {
        if latencies.is_empty() {
            return (0, 0);
        }
        latencies.sort_unstable();
        let as_f64: Vec<f64> = latencies.iter().map(|&v| v as f64).collect();
        (
            percentile_sorted(&as_f64, 0.50) as u64,
            percentile_sorted(&as_f64, 0.99) as u64,
        )
    }

    /// One-line headline: the numbers a comparison table shows. When
    /// rounds aborted, the abort percentage carries its cause breakdown
    /// (`aborts=12.0% [lock-conflict=40 retry-exhausted=2]`).
    pub fn headline(&self) -> String {
        let causes = if self.abort_causes.is_empty() {
            String::new()
        } else {
            let parts: Vec<String> = self
                .abort_causes
                .iter()
                .map(|(cause, n)| format!("{cause}={n}"))
                .collect();
            format!(" [{}]", parts.join(" "))
        };
        format!(
            "k={} committed={}/{} cross={:.1}% aborts={:.1}%{} p50={}µs p99={}µs {:.0} tx/s",
            self.k.get(),
            self.committed,
            self.total_txs,
            self.cross_shard_ratio * 100.0,
            self.abort_rate * 100.0,
            causes,
            self.p50_commit_latency_us,
            self.p99_commit_latency_us,
            self.throughput_tps,
        )
    }

    /// Renders the per-shard breakdown as a table.
    pub fn shard_table(&self) -> Table {
        let mut t = Table::new(vec![
            "shard",
            "committed",
            "cross",
            "aborts",
            "busy-ms",
            "util",
        ]);
        for s in &self.per_shard {
            t.row(vec![
                s.shard.to_string(),
                s.committed.to_string(),
                s.cross_committed.to_string(),
                s.aborted_rounds.to_string(),
                format!("{:.1}", s.busy_us as f64 / 1e3),
                format!("{:.2}", s.utilization),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_latencies() {
        let mut l: Vec<u64> = (1..=100).collect();
        let (p50, p99) = RuntimeReport::latency_percentiles(&mut l);
        assert!((49..=51).contains(&p50), "p50 {p50}");
        assert!((98..=100).contains(&p99), "p99 {p99}");
        let (z50, z99) = RuntimeReport::latency_percentiles(&mut Vec::new());
        assert_eq!((z50, z99), (0, 0));
    }
}
