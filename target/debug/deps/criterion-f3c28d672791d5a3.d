/root/repo/target/debug/deps/criterion-f3c28d672791d5a3.d: third_party/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f3c28d672791d5a3.rmeta: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:
