/root/repo/target/debug/deps/figures-d7c568a4d4a1564b.d: tests/figures.rs

/root/repo/target/debug/deps/libfigures-d7c568a4d4a1564b.rmeta: tests/figures.rs

tests/figures.rs:
