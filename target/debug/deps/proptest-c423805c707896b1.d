/root/repo/target/debug/deps/proptest-c423805c707896b1.d: third_party/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-c423805c707896b1: third_party/proptest/src/lib.rs

third_party/proptest/src/lib.rs:
