/root/repo/target/debug/deps/blockpart_bench-2d9bc9247ca9774a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart_bench-2d9bc9247ca9774a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
