/root/repo/target/debug/deps/fig5-7e0dbdd2236fe6ac.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-7e0dbdd2236fe6ac: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
