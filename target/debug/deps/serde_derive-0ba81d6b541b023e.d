/root/repo/target/debug/deps/serde_derive-0ba81d6b541b023e.d: third_party/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-0ba81d6b541b023e: third_party/serde_derive/src/lib.rs

third_party/serde_derive/src/lib.rs:
