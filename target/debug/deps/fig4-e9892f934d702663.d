/root/repo/target/debug/deps/fig4-e9892f934d702663.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-e9892f934d702663.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
