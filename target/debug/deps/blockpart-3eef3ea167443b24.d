/root/repo/target/debug/deps/blockpart-3eef3ea167443b24.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart-3eef3ea167443b24.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
