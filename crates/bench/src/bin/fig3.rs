//! Regenerates **Fig. 3**: hashing vs METIS at two shards over the whole
//! history — static/dynamic edge-cut and balance per 4-hour window,
//! aggregated monthly for the console (full-resolution CSV on request via
//! `BLOCKPART_CSV=1`).
//!
//! The paper's shapes to look for: hashing's static balance pinned at ~1
//! with static edge-cut ~0.5; METIS's much lower edge-cut but dynamic
//! balance drifting toward 2 after the attack.

use blockpart_bench::{generate_history, seed_from_env};
use blockpart_core::experiments::{fig3_run, fig3_table};
use blockpart_core::Method;
use blockpart_types::ShardCount;

fn main() {
    let chain = generate_history();
    let result = fig3_run(&chain.log, seed_from_env());

    for method in [Method::Hash, Method::Metis] {
        println!("\n## Fig. 3 — {method} at k = 2 (monthly means of 4-hour windows)\n");
        let table = fig3_table(&result, method).expect("method was run");
        println!("{}", table.render_ascii());
    }

    if std::env::var("BLOCKPART_CSV").is_ok() {
        for method in [Method::Hash, Method::Metis] {
            let run = result.get(method, ShardCount::TWO).expect("ran");
            println!("\n# {method} per-window CSV: start_secs,static_cut,dynamic_cut,static_bal,dynamic_bal,repartitioned,moves");
            for w in &run.windows {
                println!(
                    "{},{:.4},{:.4},{:.4},{:.4},{},{}",
                    w.start.as_secs(),
                    w.static_edge_cut,
                    w.dynamic_edge_cut,
                    w.static_balance,
                    w.dynamic_balance,
                    w.repartitioned as u8,
                    w.moves
                );
            }
        }
    }
}
