//! End-to-end checks of the perf harness: the workload matrix produces
//! the documented stage set, the JSON document round-trips, and (on
//! multicore hosts) the parallel hot paths actually beat one worker.

use blockpart_bench::perf::{compare, run, PerfConfig, PerfReport};
use blockpart_graph::{Interaction, InteractionLog};
use blockpart_metrics::Json;
use blockpart_types::{Address, Timestamp};

fn micro_config() -> PerfConfig {
    PerfConfig {
        scale: 0.0001,
        trials: 1,
        warmup: 0,
        shard_counts: vec![2],
        ..PerfConfig::quick()
    }
}

#[test]
fn harness_emits_the_documented_matrix() {
    let report = run(&micro_config());

    // fixed stages
    for stage in [
        "chain-gen",
        "graph-build-serial",
        "graph-build",
        "csr-serial",
        "csr",
    ] {
        let row = report.find(stage, None, None).unwrap_or_else(|| {
            panic!("missing stage {stage}");
        });
        assert!(row.median_ms >= 0.0);
        assert!(row.txs_per_sec.unwrap_or(0.0) > 0.0, "{stage} throughput");
    }
    // the execution-engine pair: same block, serial vs Block-STM, k=1
    for stage in ["exec-serial", "exec-parallel"] {
        let row = report
            .find(stage, None, Some(1))
            .unwrap_or_else(|| panic!("missing stage {stage}"));
        assert!(row.txs_per_sec.unwrap_or(0.0) > 0.0, "{stage} throughput");
    }
    // kway pair and per-strategy stages at every configured k
    for &k in &report.config.shard_counts {
        assert!(report.find("kway-serial", Some("metis"), Some(k)).is_some());
        assert!(report.find("kway", Some("metis"), Some(k)).is_some());
        for strategy in blockpart_bench::perf::STRATEGIES {
            for stage in ["partition", "simulate", "replay"] {
                assert!(
                    report.find(stage, Some(strategy), Some(k)).is_some(),
                    "missing {stage}/{strategy}/{k}"
                );
            }
        }
    }

    // the out-of-core rows: external-memory CSR build plus LDG/Fennel
    // streaming partition straight from the spilled merge, with the peak
    // RSS high-water mark recorded on every row (linux)
    assert!(report.find("oocsr-build", None, None).is_some());
    for &k in &report.config.shard_counts {
        for strategy in ["ldg", "fennel"] {
            let row = report
                .find("oocsr-stream-partition", Some(strategy), Some(k))
                .unwrap_or_else(|| panic!("missing oocsr-stream-partition/{strategy}/{k}"));
            assert!(row.txs_per_sec.unwrap_or(0.0) > 0.0);
        }
    }
    if cfg!(target_os = "linux") {
        assert!(report.stages.iter().all(|s| s.peak_rss_bytes > 0));
    }

    // document round-trip, and a fresh run regresses against itself never
    let rendered = report.to_json().render_pretty();
    let parsed = PerfReport::from_json(&Json::parse(&rendered).unwrap()).unwrap();
    assert_eq!(parsed.stages, report.stages);
    let (regressions, missing) = compare(&report, &parsed, 0.25);
    assert!(regressions.is_empty());
    assert!(missing.is_empty());
}

#[test]
fn harness_is_deterministic_in_everything_but_time() {
    let a = run(&micro_config());
    let b = run(&micro_config());
    let keys = |r: &PerfReport| r.stages.iter().map(|s| s.key()).collect::<Vec<_>>();
    assert_eq!(keys(&a), keys(&b));
}

/// A large hub-and-spoke interaction log: enough parallel slack for the
/// sharded build to show a real speedup.
fn big_log(events: usize) -> InteractionLog {
    let mut log = InteractionLog::new();
    for i in 0..events as u64 {
        // 64 hubs, long tail of leaves; weights vary so rows stay uneven
        let hub = i % 64;
        let leaf = 64 + (i * 2_654_435_761) % 50_000;
        log.push(Interaction {
            weight: 1 + i % 7,
            ..Interaction::new(
                Timestamp::from_secs(i / 16),
                Address::from_index(hub),
                Address::from_index(leaf),
            )
        });
    }
    log
}

/// The acceptance check behind the BENCH.json speedup rows: with at
/// least two cores, the parallel graph build must clearly beat one
/// worker. Ignored by default because it is timing-sensitive; the CI
/// bench job (and anyone via `cargo test -- --ignored`) runs it.
#[test]
#[ignore = "timing-sensitive; run explicitly via cargo test -- --ignored"]
fn parallel_graph_build_beats_serial_on_multicore() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 2 {
        eprintln!("skipping: single-core host");
        return;
    }
    let log = big_log(600_000);
    let time = |workers: usize| {
        let start = std::time::Instant::now();
        let g = InteractionLog::graph_of_workers(log.events(), workers);
        (start.elapsed().as_secs_f64(), g)
    };
    let _ = time(1); // warm caches
    let (serial, g1) = time(1);
    let (parallel, gn) = time(cores.min(8));
    assert_eq!(g1.edge_count(), gn.edge_count());
    let speedup = serial / parallel;
    eprintln!("graph build speedup on {cores} cores: {speedup:.2}x");
    assert!(
        speedup > 1.3,
        "expected >1.3x on {cores} cores, measured {speedup:.2}x"
    );
}

/// The acceptance check behind the `exec-serial`/`exec-parallel` row
/// pair: with at least two cores, the Block-STM-style engine must beat
/// the serial engine on the same block — modestly, because the synthetic
/// VM's per-transaction work is small relative to scheduling overhead.
/// Ignored by default because it is timing-sensitive; the CI bench job
/// (and anyone via `cargo test -- --ignored`) runs it.
#[test]
#[ignore = "timing-sensitive; run explicitly via cargo test -- --ignored"]
fn parallel_execution_beats_serial_on_multicore() {
    use blockpart_bench::perf::EXEC_BLOCK_TXS;
    use blockpart_ethereum::evm::{ExecContext, GasSchedule};
    use blockpart_ethereum::exec::ExecRequest;
    use blockpart_ethereum::gen::{ChainGenerator, GeneratorConfig};
    use blockpart_ethereum::{ExecutionEngine, ParallelEngine, SerialEngine};

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 2 {
        eprintln!("skipping: single-core host");
        return;
    }
    let chain = ChainGenerator::new(GeneratorConfig::demo_scale(42).with_scale(0.0004)).generate();
    let block: Vec<ExecRequest> = chain
        .txs
        .iter()
        .take(EXEC_BLOCK_TXS)
        .enumerate()
        .map(|(i, rec)| {
            ExecRequest::new(
                rec.tx,
                ExecContext::new(rec.time, i as u64, rec.tx.gas_limit)
                    .with_schedule(GasSchedule::eip150()),
            )
        })
        .collect();
    let time = |engine: &dyn ExecutionEngine| {
        // median of 5: engine runs are fast enough to jitter
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let mut world = chain.chain.world().clone();
                let start = std::time::Instant::now();
                std::hint::black_box(engine.execute_block(&mut world, &block));
                start.elapsed().as_secs_f64()
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        samples[2]
    };
    let _ = time(&SerialEngine); // warm caches
    let serial = time(&SerialEngine);
    let parallel = time(&ParallelEngine::new());
    let speedup = serial / parallel;
    eprintln!("parallel execution speedup on {cores} cores: {speedup:.2}x");
    assert!(
        speedup > 1.05,
        "expected >1.05x on {cores} cores, measured {speedup:.2}x"
    );
}
