//! Initial partitioning of the coarsest graph: greedy graph growing
//! bisection, Fiduccia–Mattheyses-style refinement, recursive bisection.

use blockpart_graph::Csr;
use blockpart_types::ShardCount;
use rand::rngs::SmallRng;
use rand::Rng;

use super::MultilevelConfig;
use crate::partition::Partition;

/// Produces an initial k-way partition of `csr` by recursive bisection.
///
/// Each bisection splits the target shard count `k` into `⌈k/2⌉` and
/// `⌊k/2⌋` and aims for vertex-weight targets proportional to that split,
/// so uneven `k` still comes out balanced. Each bisection runs
/// `config.init_trials` greedy-graph-growing attempts refined with an FM
/// pass and keeps the best cut.
///
/// # Examples
///
/// ```
/// use blockpart_graph::Csr;
/// use blockpart_partition::multilevel::initial::recursive_bisection;
/// use blockpart_partition::MultilevelConfig;
/// use blockpart_types::ShardCount;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let edges: Vec<(u32, u32, u64)> = (0..15).map(|i| (i, i + 1, 1)).collect();
/// let csr = Csr::from_edges(16, &edges);
/// let mut rng = SmallRng::seed_from_u64(0);
/// let p = recursive_bisection(&csr, ShardCount::new(4).unwrap(), &MultilevelConfig::default(), &mut rng);
/// assert_eq!(p.len(), 16);
/// let sizes = p.shard_sizes();
/// assert!(sizes.iter().all(|&s| s >= 2), "sizes {sizes:?}");
/// ```
pub fn recursive_bisection(
    csr: &Csr,
    k: ShardCount,
    config: &MultilevelConfig,
    rng: &mut SmallRng,
) -> Partition {
    let n = csr.node_count();
    let mut assignment = vec![0u16; n];
    let all: Vec<u32> = (0..n as u32).collect();
    split(csr, &all, k.get(), 0, &mut assignment, config, rng);
    Partition::from_assignment(assignment, k).expect("labels bounded by k")
}

fn split(
    csr: &Csr,
    verts: &[u32],
    k: u16,
    offset: u16,
    assignment: &mut [u16],
    config: &MultilevelConfig,
    rng: &mut SmallRng,
) {
    if k <= 1 || verts.is_empty() {
        for &v in verts {
            assignment[v as usize] = offset;
        }
        return;
    }
    let k0 = k.div_ceil(2);
    let k1 = k - k0;
    let total: u64 = verts.iter().map(|&v| csr.vertex_weight(v as usize)).sum();
    let target0 = total * u64::from(k0) / u64::from(k);

    let sub = Subgraph::extract(csr, verts);
    let side = best_bisection(&sub, target0, config, rng);

    let (mut side0, mut side1) = (Vec::new(), Vec::new());
    for (i, &v) in verts.iter().enumerate() {
        if side[i] == 0 {
            side0.push(v);
        } else {
            side1.push(v);
        }
    }
    split(csr, &side0, k0, offset, assignment, config, rng);
    split(csr, &side1, k1, offset + k0, assignment, config, rng);
}

/// A vertex-induced subgraph with local indices.
struct Subgraph {
    csr: Csr,
}

impl Subgraph {
    fn extract(csr: &Csr, verts: &[u32]) -> Subgraph {
        let mut local = vec![u32::MAX; csr.node_count()];
        for (i, &v) in verts.iter().enumerate() {
            local[v as usize] = i as u32;
        }
        let mut xadj = Vec::with_capacity(verts.len() + 1);
        let mut adjncy = Vec::new();
        let mut adjwgt = Vec::new();
        let mut vwgt = Vec::with_capacity(verts.len());
        xadj.push(0);
        for &v in verts {
            for (u, w) in csr.neighbors(v as usize) {
                let lu = local[u as usize];
                if lu != u32::MAX {
                    adjncy.push(lu);
                    adjwgt.push(w);
                }
            }
            vwgt.push(csr.vertex_weight(v as usize));
            xadj.push(adjncy.len());
        }
        Subgraph {
            csr: Csr::from_parts(xadj, adjncy, adjwgt, vwgt),
        }
    }
}

/// Runs `config.init_trials` GGG+FM attempts and returns the side
/// assignment (0/1 per local vertex) with the smallest cut among those
/// within tolerance, or the best-balanced one if none meet it.
fn best_bisection(
    sub: &Subgraph,
    target0: u64,
    config: &MultilevelConfig,
    rng: &mut SmallRng,
) -> Vec<u8> {
    let csr = &sub.csr;
    let n = csr.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut best: Option<(u64, u64, Vec<u8>)> = None; // (cut, balance error, side)
    let trials = config.init_trials.max(1);
    // FM's pass is O(n²); on the rare occasions coarsening stalls and the
    // "coarsest" graph is large, skip FM here and let the O(V + E) k-way
    // refinement of the uncoarsening phase do the polishing.
    let run_fm = n <= 4096;
    for _ in 0..trials {
        let mut side = grow(csr, target0, rng);
        if run_fm {
            fm_refine(csr, &mut side, target0, config.imbalance, 4);
        }
        let cut = cut_weight(csr, &side);
        let w0: u64 = (0..n)
            .filter(|&v| side[v] == 0)
            .map(|v| csr.vertex_weight(v))
            .sum();
        let err = w0.abs_diff(target0);
        let better = match &best {
            None => true,
            Some((bc, be, _)) => (cut, err) < (*bc, *be),
        };
        if better {
            best = Some((cut, err, side));
        }
    }
    best.expect("at least one trial").2
}

/// Greedy graph growing: grow side 0 from a random seed by always pulling
/// the frontier vertex with the strongest connection to the grown region,
/// until the region reaches `target0` weight.
///
/// Uses a lazy max-heap over frontier connectivity, so a full grow is
/// `O((V + E) log V)` even on the large graphs that reach initial
/// partitioning when coarsening stalls.
fn grow(csr: &Csr, target0: u64, rng: &mut SmallRng) -> Vec<u8> {
    use std::collections::BinaryHeap;
    let n = csr.node_count();
    let mut side = vec![1u8; n];
    if n == 0 || target0 == 0 {
        return side;
    }
    let mut weight0 = 0u64;
    let mut conn = vec![0u64; n];
    let mut in_region = vec![false; n];
    // lazy heap of (connection snapshot, vertex); stale entries are
    // skipped on pop
    let mut heap: BinaryHeap<(u64, usize)> = BinaryHeap::new();
    // rotating fallback cursor for disconnected graphs (amortized O(n))
    let mut scan = 0usize;

    let mut current = rng.gen_range(0..n);
    loop {
        in_region[current] = true;
        side[current] = 0;
        weight0 += csr.vertex_weight(current);
        if weight0 >= target0 {
            break;
        }
        for (u, w) in csr.neighbors(current) {
            let u = u as usize;
            if !in_region[u] {
                conn[u] += w;
                heap.push((conn[u], u));
            }
        }
        let mut next = None;
        while let Some((snapshot, v)) = heap.pop() {
            if !in_region[v] && conn[v] == snapshot {
                next = Some(v);
                break;
            }
        }
        if next.is_none() {
            // disconnected: take the next unreached vertex in index order
            while scan < n && in_region[scan] {
                scan += 1;
            }
            if scan < n {
                next = Some(scan);
            }
        }
        match next {
            Some(v) => current = v,
            None => break,
        }
    }
    side
}

/// FM-style bisection refinement with vertex weights: single-vertex moves,
/// best-prefix commit, both sides kept within `imbalance` of their target.
///
/// Returns the committed gain.
pub(crate) fn fm_refine(
    csr: &Csr,
    side: &mut [u8],
    target0: u64,
    imbalance: f64,
    max_passes: usize,
) -> i64 {
    let n = csr.node_count();
    if n < 2 {
        return 0;
    }
    let total: u64 = csr.total_vertex_weight();
    let target1 = total - target0;
    let hi0 = ((target0 as f64) * imbalance).ceil() as u64;
    let hi1 = ((target1 as f64) * imbalance).ceil() as u64;

    let mut total_gain = 0i64;
    for _ in 0..max_passes {
        let pass_gain = fm_pass(csr, side, hi0, hi1);
        if pass_gain <= 0 {
            break;
        }
        total_gain += pass_gain;
    }
    total_gain
}

fn fm_pass(csr: &Csr, side: &mut [u8], hi0: u64, hi1: u64) -> i64 {
    let n = csr.node_count();
    let mut gain: Vec<i64> = (0..n)
        .map(|v| {
            let mut g = 0i64;
            for (u, w) in csr.neighbors(v) {
                if side[u as usize] == side[v] {
                    g -= w as i64;
                } else {
                    g += w as i64;
                }
            }
            g
        })
        .collect();
    let mut weights = [0u64, 0];
    for v in 0..n {
        weights[side[v] as usize] += csr.vertex_weight(v);
    }
    let hi = [hi0, hi1];

    let mut locked = vec![false; n];
    let mut moves: Vec<usize> = Vec::new();
    let mut gains: Vec<i64> = Vec::new();

    for _ in 0..n {
        // Best unlocked move that keeps the destination side within bound.
        let mut best: Option<(usize, i64)> = None;
        for v in 0..n {
            if locked[v] {
                continue;
            }
            let to = 1 - side[v] as usize;
            if weights[to] + csr.vertex_weight(v) > hi[to] {
                continue;
            }
            if best.is_none_or(|(_, g)| gain[v] > g) {
                best = Some((v, gain[v]));
            }
        }
        let Some((v, g)) = best else { break };
        let from = side[v] as usize;
        let to = 1 - from;
        weights[from] -= csr.vertex_weight(v);
        weights[to] += csr.vertex_weight(v);
        side[v] = to as u8;
        locked[v] = true;
        moves.push(v);
        gains.push(g);
        for (u, w) in csr.neighbors(v) {
            let u = u as usize;
            if !locked[u] {
                if side[u] == side[v] {
                    gain[u] -= 2 * w as i64;
                } else {
                    gain[u] += 2 * w as i64;
                }
            }
        }
    }

    // best prefix
    let mut best_total = 0i64;
    let mut best_len = 0usize;
    let mut running = 0i64;
    for (i, &g) in gains.iter().enumerate() {
        running += g;
        if running > best_total {
            best_total = running;
            best_len = i + 1;
        }
    }
    // roll back moves beyond the best prefix
    for &v in moves.iter().skip(best_len).rev() {
        side[v] = 1 - side[v];
    }
    best_total
}

fn cut_weight(csr: &Csr, side: &[u8]) -> u64 {
    csr.edges()
        .filter(|&(u, v, _)| side[u as usize] != side[v as usize])
        .map(|(_, _, w)| w)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(17)
    }

    fn two_cliques() -> Csr {
        Csr::from_edges(
            8,
            &[
                (0, 1, 5),
                (0, 2, 5),
                (0, 3, 5),
                (1, 2, 5),
                (1, 3, 5),
                (2, 3, 5),
                (4, 5, 5),
                (4, 6, 5),
                (4, 7, 5),
                (5, 6, 5),
                (5, 7, 5),
                (6, 7, 5),
                (3, 4, 1),
            ],
        )
    }

    #[test]
    fn bisection_finds_bridge() {
        let csr = two_cliques();
        let p = recursive_bisection(
            &csr,
            ShardCount::TWO,
            &MultilevelConfig::default(),
            &mut rng(),
        );
        let sizes = p.shard_sizes();
        assert_eq!(sizes, vec![4, 4]);
        let cut: u64 = csr
            .edges()
            .filter(|&(u, v, _)| p.shard_of(u as usize) != p.shard_of(v as usize))
            .map(|(_, _, w)| w)
            .sum();
        assert_eq!(cut, 1);
    }

    #[test]
    fn uneven_k_gets_proportional_targets() {
        // 30 unit vertices in a path, k = 3: each part ~10
        let edges: Vec<(u32, u32, u64)> = (0..29).map(|i| (i, i + 1, 1)).collect();
        let csr = Csr::from_edges(30, &edges);
        let p = recursive_bisection(
            &csr,
            ShardCount::new(3).unwrap(),
            &MultilevelConfig::default(),
            &mut rng(),
        );
        for &s in &p.shard_sizes() {
            assert!((7..=13).contains(&s), "sizes {:?}", p.shard_sizes());
        }
    }

    #[test]
    fn weighted_vertices_balance_by_weight() {
        // one huge vertex (weight 10) + ten unit vertices in a star
        let edges: Vec<(u32, u32, u64)> = (1..11).map(|i| (0, i, 1)).collect();
        let mut vwgt = vec![1u64; 11];
        vwgt[0] = 10;
        let base = Csr::from_edges(11, &edges);
        let csr = Csr::from_parts(
            (0..=11).map(|v| base_xadj(&base, v)).collect(),
            (0..11)
                .flat_map(|v| base.neighbors(v).map(|(u, _)| u))
                .collect(),
            (0..11)
                .flat_map(|v| base.neighbors(v).map(|(_, w)| w))
                .collect(),
            vwgt,
        );
        let p = recursive_bisection(
            &csr,
            ShardCount::TWO,
            &MultilevelConfig::default(),
            &mut rng(),
        );
        let weights = p.shard_weights(csr.vertex_weights());
        // total 20, target 10 each: the big vertex should sit alone-ish
        assert!(weights.iter().all(|&w| w <= 13), "weights {weights:?}");
    }

    fn base_xadj(csr: &Csr, v: usize) -> usize {
        if v == 0 {
            0
        } else {
            (0..v).map(|u| csr.degree(u)).sum()
        }
    }

    #[test]
    fn fm_refine_improves_bad_split() {
        let csr = two_cliques();
        let mut side = vec![0u8, 1, 0, 1, 0, 1, 0, 1];
        let gain = fm_refine(&csr, &mut side, 4, 1.1, 8);
        assert!(gain > 0);
        assert_eq!(cut_weight(&csr, &side), 1);
    }

    #[test]
    fn grow_reaches_target() {
        let csr = two_cliques();
        let side = grow(&csr, 4, &mut rng());
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert!(w0 >= 4, "grew only {w0}");
    }

    #[test]
    fn handles_singleton() {
        let csr = Csr::from_edges(1, &[]);
        let p = recursive_bisection(
            &csr,
            ShardCount::TWO,
            &MultilevelConfig::default(),
            &mut rng(),
        );
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn disconnected_components_distribute() {
        let csr = Csr::from_edges(8, &[(0, 1, 1), (2, 3, 1), (4, 5, 1), (6, 7, 1)]);
        let p = recursive_bisection(
            &csr,
            ShardCount::TWO,
            &MultilevelConfig::default(),
            &mut rng(),
        );
        let sizes = p.shard_sizes();
        assert!(sizes.iter().all(|&s| s == 4), "sizes {sizes:?}");
    }
}
