/root/repo/target/debug/examples/ico_dapp-3e0b4d55ab45dfd8.d: examples/ico_dapp.rs Cargo.toml

/root/repo/target/debug/examples/libico_dapp-3e0b4d55ab45dfd8.rmeta: examples/ico_dapp.rs Cargo.toml

examples/ico_dapp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
