//! The sharding simulator driver.

use std::collections::{HashMap, VecDeque};

use blockpart_graph::{GraphBuilder, Interaction, InteractionLog};
use blockpart_obs::{Collector, Noop, Record};
use blockpart_partition::{PartitionRequest, Partitioner};
use blockpart_types::{Address, Duration, ShardCount, Timestamp};
use serde::{Deserialize, Serialize};

use crate::delta::AssignmentDelta;
use crate::placement::PlacementRule;
use crate::policy::{RepartitionPolicy, RepartitionScope};
use crate::state::ShardedState;

/// Simulator configuration: shard count, measurement window, placement
/// rule, repartition policy and scope.
///
/// # Examples
///
/// ```
/// use blockpart_shard::{PlacementRule, RepartitionPolicy, RepartitionScope, SimulatorConfig};
/// use blockpart_types::{Duration, ShardCount};
///
/// let cfg = SimulatorConfig::new(ShardCount::TWO)
///     .with_placement(PlacementRule::MinCut)
///     .with_scope(RepartitionScope::Window)
///     .with_scope_window(Duration::weeks(2));
/// assert_eq!(cfg.window, Duration::hours(4));
/// ```
#[derive(Clone, Debug)]
pub struct SimulatorConfig {
    /// Number of shards.
    pub k: ShardCount,
    /// Measurement window (the paper samples every 4 hours).
    pub window: Duration,
    /// When to repartition.
    pub policy: RepartitionPolicy,
    /// How to place vertices that appear between repartitions.
    pub placement: PlacementRule,
    /// Which graph the partitioner sees.
    pub scope: RepartitionScope,
    /// Length of the reduced graph window when `scope` is `Window`.
    pub scope_window: Duration,
    /// Optional contract storage sizes (slots) for the state-relocation
    /// cost extension metric.
    pub contract_sizes: HashMap<Address, u64>,
}

impl SimulatorConfig {
    /// A configuration with the paper's defaults: 4-hour windows,
    /// two-week periodic repartitioning of the full graph, hash placement.
    pub fn new(k: ShardCount) -> Self {
        SimulatorConfig {
            k,
            window: Duration::hours(4),
            policy: RepartitionPolicy::default(),
            placement: PlacementRule::Hash,
            scope: RepartitionScope::Full,
            scope_window: Duration::weeks(2),
            contract_sizes: HashMap::new(),
        }
    }

    /// Sets the measurement window.
    pub fn with_window(mut self, window: Duration) -> Self {
        self.window = window;
        self
    }

    /// Sets the repartition policy.
    pub fn with_policy(mut self, policy: RepartitionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the placement rule.
    pub fn with_placement(mut self, placement: PlacementRule) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the repartition scope.
    pub fn with_scope(mut self, scope: RepartitionScope) -> Self {
        self.scope = scope;
        self
    }

    /// Sets the reduced-graph window length.
    pub fn with_scope_window(mut self, scope_window: Duration) -> Self {
        self.scope_window = scope_window;
        self
    }

    /// Supplies contract storage sizes for relocation accounting.
    pub fn with_contract_sizes(mut self, sizes: HashMap<Address, u64>) -> Self {
        self.contract_sizes = sizes;
        self
    }
}

/// The metrics recorded at the close of one measurement window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WindowRecord {
    /// Window start time.
    pub start: Timestamp,
    /// Interactions processed in the window.
    pub events: usize,
    /// Fraction of this window's interaction weight that crossed shards —
    /// the paper's per-window *dynamic edge-cut* (Fig. 3's jagged line).
    pub dynamic_edge_cut: f64,
    /// Balance of this window's activity across shards (Eq. 2 weighted).
    pub dynamic_balance: f64,
    /// Eq. 1 over the cumulative unweighted graph.
    pub static_edge_cut: f64,
    /// Eq. 2 over cumulative vertex counts.
    pub static_balance: f64,
    /// Cumulative weighted edge-cut (all history).
    pub cumulative_dynamic_edge_cut: f64,
    /// Cumulative weighted balance (all history).
    pub cumulative_dynamic_balance: f64,
    /// Whether a repartition fired at this window's close.
    pub repartitioned: bool,
    /// Vertices that changed shard at this window's close.
    pub moves: u64,
    /// Relocated state units (1 per account + storage slots per contract).
    pub relocated_units: u64,
}

/// The outcome of a full simulation run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimulationResult {
    /// Per-window records in time order.
    pub windows: Vec<WindowRecord>,
    /// Total vertices moved across all repartitions.
    pub total_moves: u64,
    /// Total relocated state units.
    pub total_relocated_units: u64,
    /// Number of repartitions that fired.
    pub repartitions: usize,
    /// Final vertex count of the cumulative graph.
    pub vertex_count: usize,
    /// Final edge count of the cumulative graph.
    pub edge_count: usize,
}

impl SimulationResult {
    /// Window records whose start falls in `[start, end)`.
    pub fn windows_in(&self, start: Timestamp, end: Timestamp) -> &[WindowRecord] {
        let lo = self.windows.partition_point(|w| w.start < start);
        let hi = self.windows.partition_point(|w| w.start < end);
        &self.windows[lo..hi]
    }

    /// Total moves in `[start, end)`.
    pub fn moves_in(&self, start: Timestamp, end: Timestamp) -> u64 {
        self.windows_in(start, end).iter().map(|w| w.moves).sum()
    }
}

/// Streams an [`InteractionLog`] through a sharded system.
///
/// See the [crate docs](crate) for the method-to-configuration table.
pub struct ShardSimulator {
    config: SimulatorConfig,
    partitioner: Box<dyn Partitioner>,
    state: ShardedState,
    recent: VecDeque<Interaction>,
}

impl std::fmt::Debug for ShardSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSimulator")
            .field("k", &self.config.k)
            .field("partitioner", &self.partitioner.name())
            .field("vertices", &self.state.vertex_count())
            .finish()
    }
}

/// Per-window accumulators.
#[derive(Default)]
struct WindowAccum {
    events: usize,
    cut_weight: u64,
    total_weight: u64,
    shard_activity: Vec<u64>,
}

impl WindowAccum {
    fn new(k: ShardCount) -> Self {
        WindowAccum {
            shard_activity: vec![0; k.as_usize()],
            ..WindowAccum::default()
        }
    }

    fn reset(&mut self) {
        self.events = 0;
        self.cut_weight = 0;
        self.total_weight = 0;
        self.shard_activity.iter_mut().for_each(|a| *a = 0);
    }

    fn dynamic_edge_cut(&self) -> f64 {
        if self.total_weight == 0 {
            0.0
        } else {
            self.cut_weight as f64 / self.total_weight as f64
        }
    }

    fn dynamic_balance(&self) -> f64 {
        let total: u64 = self.shard_activity.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let max = *self.shard_activity.iter().max().expect("k >= 1");
        max as f64 * self.shard_activity.len() as f64 / total as f64
    }
}

impl ShardSimulator {
    /// Creates a simulator with the given configuration and partitioner.
    pub fn new(config: SimulatorConfig, partitioner: Box<dyn Partitioner>) -> Self {
        let state = ShardedState::new(config.k);
        ShardSimulator {
            config,
            partitioner,
            state,
            recent: VecDeque::new(),
        }
    }

    /// The cumulative sharded state (for inspection after a run).
    pub fn state(&self) -> &ShardedState {
        &self.state
    }

    /// Consumes the simulator and returns its final sharded state, e.g.
    /// to hand the assignment to the execution runtime.
    pub fn into_state(self) -> ShardedState {
        self.state
    }

    /// Runs the whole log and returns per-window records plus totals.
    pub fn run(&mut self, log: &InteractionLog) -> SimulationResult {
        self.run_traced(log, &mut Noop)
    }

    /// Like [`run`](Self::run), but reports instrumentation to `obs`:
    /// wall-clock `detail` spans for the two halves of each repartition
    /// (`simulate/graph-assembly`, `simulate/partition`) plus the move
    /// application (`simulate/apply-moves`), and `sim/*` counters. The
    /// spans nest under the caller's `simulate` stage span in the
    /// self-profile table.
    pub fn run_traced<C: Collector>(
        &mut self,
        log: &InteractionLog,
        obs: &mut C,
    ) -> SimulationResult {
        self.run_stream_traced(log.events().iter().copied(), obs)
    }

    /// Runs a time-ordered event stream without requiring a resident
    /// [`InteractionLog`] — the out-of-core entry point, fed one event at
    /// a time from a segment-store reader.
    ///
    /// Byte-identical to [`run`](Self::run) over the same event sequence
    /// (the resident entry points delegate here). Memory contract: the
    /// simulator's own cumulative state (`O(V + E_distinct)`) plus, under
    /// `RepartitionScope::Window`, the `scope_window`-bounded recent-event
    /// deque — the full stream is never materialized.
    pub fn run_stream<I: IntoIterator<Item = Interaction>>(
        &mut self,
        events: I,
    ) -> SimulationResult {
        self.run_stream_traced(events, &mut Noop)
    }

    /// Like [`run_stream`](Self::run_stream) with instrumentation — see
    /// [`run_traced`](Self::run_traced).
    pub fn run_stream_traced<I, C>(&mut self, events: I, obs: &mut C) -> SimulationResult
    where
        I: IntoIterator<Item = Interaction>,
        C: Collector,
    {
        let mut result = SimulationResult::default();
        let mut iter = events.into_iter();
        let Some(first) = iter.next() else {
            return result;
        };
        let window = self.config.window;
        assert!(!window.is_zero(), "measurement window must be non-zero");

        let mut window_start = first.time.align_down(window);
        let mut accum = WindowAccum::new(self.config.k);
        let mut last_repartition = window_start;

        for event in std::iter::once(first).chain(iter) {
            let event = &event;
            while event.time >= window_start + window {
                let boundary = window_start + window;
                self.close_window(
                    window_start,
                    boundary,
                    &mut accum,
                    &mut last_repartition,
                    &mut result,
                    obs,
                );
                window_start = boundary;
            }
            self.process(event, &mut accum);
        }
        // close the final, partially-filled window
        let boundary = window_start + window;
        self.close_window(
            window_start,
            boundary,
            &mut accum,
            &mut last_repartition,
            &mut result,
            obs,
        );

        if obs.enabled() {
            obs.add("sim/windows", result.windows.len() as u64);
            obs.add("sim/repartitions", result.repartitions as u64);
            obs.add("sim/moves", result.total_moves);
            obs.gauge("sim/vertices", self.state.vertex_count() as f64);
            obs.gauge("sim/edges", self.state.edge_count() as f64);
        }
        result.vertex_count = self.state.vertex_count();
        result.edge_count = self.state.edge_count();
        result
    }

    fn process(&mut self, event: &Interaction, accum: &mut WindowAccum) {
        let (u, v, w) = (event.from, event.to, event.weight);
        // place new vertices (source first, then target with the source as
        // counterparty — the paper's min-cut rule co-locates them)
        if !self.state.contains(u) {
            let counterparty = self.state.contains(v).then_some(v);
            let shard = self.config.placement.place(&self.state, u, counterparty);
            self.state.insert_vertex(u, event.from_kind, shard);
        }
        if !self.state.contains(v) {
            let shard = self.config.placement.place(&self.state, v, Some(u));
            self.state.insert_vertex(v, event.to_kind, shard);
        }
        self.state.note_kind(u, event.from_kind);
        self.state.note_kind(v, event.to_kind);

        let su = self.state.shard_of(u).expect("just placed");
        let sv = self.state.shard_of(v).expect("just placed");
        accum.events += 1;
        accum.shard_activity[su.as_usize()] += w;
        if u != v {
            accum.shard_activity[sv.as_usize()] += w;
            accum.total_weight += w;
            if su != sv {
                accum.cut_weight += w;
            }
        }
        self.state.record_edge(u, v, w);

        if self.config.scope == RepartitionScope::Window {
            self.recent.push_back(*event);
        }
    }

    fn close_window<C: Collector>(
        &mut self,
        start: Timestamp,
        boundary: Timestamp,
        accum: &mut WindowAccum,
        last_repartition: &mut Timestamp,
        result: &mut SimulationResult,
        obs: &mut C,
    ) {
        let mut record = WindowRecord {
            start,
            events: accum.events,
            dynamic_edge_cut: accum.dynamic_edge_cut(),
            dynamic_balance: accum.dynamic_balance(),
            static_edge_cut: self.state.static_edge_cut(),
            static_balance: self.state.static_balance(),
            cumulative_dynamic_edge_cut: self.state.dynamic_edge_cut(),
            cumulative_dynamic_balance: self.state.dynamic_balance(),
            repartitioned: false,
            moves: 0,
            relocated_units: 0,
        };

        // prune the reduced-graph buffer
        if self.config.scope == RepartitionScope::Window {
            let cutoff = boundary - self.config.scope_window;
            while self.recent.front().is_some_and(|e| e.time < cutoff) {
                self.recent.pop_front();
            }
        }

        if self.config.policy.due(
            boundary,
            *last_repartition,
            record.dynamic_edge_cut,
            record.dynamic_balance,
        ) && self.state.vertex_count() > 0
        {
            let (moves, units) = self.repartition(obs);
            record.repartitioned = true;
            record.moves = moves;
            record.relocated_units = units;
            result.total_moves += moves;
            result.total_relocated_units += units;
            result.repartitions += 1;
            *last_repartition = boundary;
        }

        result.windows.push(record);
        accum.reset();
    }

    /// Runs the partitioner over the configured scope and applies the new
    /// assignment. Returns (moves, relocated state units).
    fn repartition<C: Collector>(&mut self, obs: &mut C) -> (u64, u64) {
        let t0 = obs.now_us();
        let (csr, order, ids, previous) = match self.config.scope {
            RepartitionScope::Full => self.state.full_graph(),
            RepartitionScope::Window => {
                let mut builder = GraphBuilder::new();
                for e in &self.recent {
                    builder.touch(e.from, e.from_kind);
                    builder.touch(e.to, e.to_kind);
                    builder.add_interaction(e.from, e.to, e.weight);
                }
                let graph = builder.build();
                if graph.is_empty() {
                    return (0, 0);
                }
                let order: Vec<Address> = graph.nodes().map(|n| n.address).collect();
                let ids: Vec<u64> = order.iter().map(|a| a.stable_hash()).collect();
                let previous = self.state.partition_of(&order);
                (graph.to_csr(), order, ids, previous)
            }
        };
        if obs.enabled() {
            let t1 = obs.now_us();
            obs.record(
                Record::span(t0, t1 - t0, "detail", "simulate/graph-assembly")
                    .with_arg("vertices", order.len())
                    .with_arg("edges", csr.edge_count()),
            );
        }

        let t1 = obs.now_us();
        let req = PartitionRequest::new(&csr, self.config.k)
            .with_stable_ids(&ids)
            .with_previous(&previous);
        let new_partition = self.partitioner.partition(&req);
        if obs.enabled() {
            let t2 = obs.now_us();
            obs.record(
                Record::span(t1, t2 - t1, "detail", "simulate/partition")
                    .with_arg("partitioner", self.partitioner.name())
                    .with_arg("vertices", order.len()),
            );
            obs.observe_us("sim/partition_us", t2 - t1);
        }

        let t2 = obs.now_us();
        // derive the move set from the assignment delta — the same type
        // the live migration service batches from — then apply it
        let index: HashMap<Address, usize> =
            order.iter().enumerate().map(|(i, &a)| (a, i)).collect();
        let delta = AssignmentDelta::between(
            order.iter().copied(),
            |a| self.state.shard_of(a).expect("scoped vertex is assigned"),
            |a| new_partition.shard_of(index[&a]),
        );
        let moves = delta.total_moved();
        let mut units = 0u64;
        for (address, _, to) in delta.moves() {
            let moved = self.state.move_vertex(address, to);
            debug_assert!(moved, "delta move must change the shard");
            units += 1 + self
                .config
                .contract_sizes
                .get(&address)
                .copied()
                .unwrap_or(0);
        }
        if obs.enabled() {
            let t3 = obs.now_us();
            obs.record(
                Record::span(t2, t3 - t2, "detail", "simulate/apply-moves")
                    .with_arg("moves", moves),
            );
        }
        (moves, units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpart_partition::{
        DistributedKl, HashPartitioner, MultilevelConfig, MultilevelPartitioner,
    };
    use blockpart_types::AccountKind;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    /// Two communities interacting internally every hour for `days` days,
    /// with rare cross-community edges.
    fn community_log(days: u64) -> InteractionLog {
        let mut log = InteractionLog::new();
        for h in 0..days * 24 {
            let t = Timestamp::from_secs(h * 3_600);
            let i = h % 10;
            // community A: addresses 0..10, community B: 100..110
            log.push(Interaction::new(t, addr(i), addr((i + 1) % 10)));
            log.push(Interaction::new(t, addr(100 + i), addr(100 + (i + 1) % 10)));
            if h % 50 == 0 {
                log.push(Interaction::new(t, addr(i), addr(100 + i)));
            }
        }
        log
    }

    #[test]
    fn streamed_run_matches_resident_run() {
        let log = community_log(20);
        for policy in [
            RepartitionPolicy::Never,
            RepartitionPolicy::Periodic {
                interval: Duration::weeks(1),
            },
        ] {
            let cfg = SimulatorConfig::new(ShardCount::TWO)
                .with_placement(PlacementRule::MinCut)
                .with_policy(policy);
            let mut resident = ShardSimulator::new(
                cfg.clone(),
                Box::new(MultilevelPartitioner::new(MultilevelConfig::default())),
            );
            let r1 = resident.run(&log);
            let mut streamed = ShardSimulator::new(
                cfg,
                Box::new(MultilevelPartitioner::new(MultilevelConfig::default())),
            );
            let r2 = streamed.run_stream(log.events().iter().copied());
            assert_eq!(r1, r2, "streamed run diverged from resident run");
        }
    }

    #[test]
    fn hash_method_has_zero_moves_and_fair_static_balance() {
        let log = community_log(30);
        let cfg = SimulatorConfig::new(ShardCount::TWO)
            .with_placement(PlacementRule::Hash)
            .with_policy(RepartitionPolicy::Never);
        let mut sim = ShardSimulator::new(cfg, Box::new(HashPartitioner::new()));
        let r = sim.run(&log);
        assert_eq!(r.total_moves, 0);
        assert_eq!(r.repartitions, 0);
        let last = r.windows.last().unwrap();
        assert!(last.static_balance < 1.6, "balance {}", last.static_balance);
        // hashing cuts roughly half of a locality-free graph's edges; the
        // community graph still has substantial cut
        assert!(last.static_edge_cut > 0.2);
    }

    #[test]
    fn metis_method_reduces_cut_after_repartition() {
        let log = community_log(30);
        let cfg = SimulatorConfig::new(ShardCount::TWO)
            .with_placement(PlacementRule::MinCut)
            .with_policy(RepartitionPolicy::Periodic {
                interval: Duration::weeks(1),
            });
        let mut sim = ShardSimulator::new(
            cfg,
            Box::new(MultilevelPartitioner::new(MultilevelConfig::default())),
        );
        let r = sim.run(&log);
        assert!(r.repartitions >= 3, "repartitions {}", r.repartitions);
        let last = r.windows.last().unwrap();
        // the two communities are nearly separable: cut should be tiny
        assert!(
            last.cumulative_dynamic_edge_cut < 0.2,
            "cut {}",
            last.cumulative_dynamic_edge_cut
        );
    }

    #[test]
    fn kl_method_moves_vertices_and_stays_balanced() {
        let log = community_log(30);
        let cfg = SimulatorConfig::new(ShardCount::TWO)
            .with_placement(PlacementRule::Hash)
            .with_policy(RepartitionPolicy::Periodic {
                interval: Duration::weeks(1),
            });
        let mut sim = ShardSimulator::new(cfg, Box::new(DistributedKl::with_seed(3)));
        let r = sim.run(&log);
        assert!(r.total_moves > 0);
        let last = r.windows.last().unwrap();
        assert!(
            last.dynamic_balance < 1.9,
            "balance {}",
            last.dynamic_balance
        );
    }

    #[test]
    fn threshold_policy_repartitions_less_than_periodic() {
        let log = community_log(60);
        let periodic = SimulatorConfig::new(ShardCount::TWO)
            .with_placement(PlacementRule::MinCut)
            .with_scope(RepartitionScope::Window)
            .with_policy(RepartitionPolicy::Periodic {
                interval: Duration::weeks(2),
            });
        let threshold = SimulatorConfig::new(ShardCount::TWO)
            .with_placement(PlacementRule::MinCut)
            .with_scope(RepartitionScope::Window)
            .with_policy(RepartitionPolicy::Threshold {
                edge_cut: 0.45,
                balance: 1.9,
                min_interval: Duration::weeks(2),
            });
        let ml = || Box::new(MultilevelPartitioner::new(MultilevelConfig::default()));
        let rp = ShardSimulator::new(periodic, ml()).run(&log);
        let rt = ShardSimulator::new(threshold, ml()).run(&log);
        assert!(
            rt.repartitions <= rp.repartitions,
            "threshold {} vs periodic {}",
            rt.repartitions,
            rp.repartitions
        );
    }

    #[test]
    fn window_scope_only_moves_window_vertices() {
        // community A is active only in week 1; community B only in week 3.
        let mut log = InteractionLog::new();
        for h in 0..7 * 24 {
            let t = Timestamp::from_secs(h * 3_600);
            let i = h % 10;
            log.push(Interaction::new(t, addr(i), addr((i + 1) % 10)));
        }
        for h in 14 * 24..21 * 24 {
            let t = Timestamp::from_secs(h * 3_600);
            let i = h % 10;
            log.push(Interaction::new(t, addr(100 + i), addr(100 + (i + 1) % 10)));
        }
        let cfg = SimulatorConfig::new(ShardCount::TWO)
            .with_placement(PlacementRule::Hash) // scatter so moves are needed
            .with_scope(RepartitionScope::Window)
            .with_scope_window(Duration::weeks(1))
            .with_policy(RepartitionPolicy::Periodic {
                interval: Duration::weeks(3),
            });
        let mut sim = ShardSimulator::new(
            cfg,
            Box::new(MultilevelPartitioner::new(MultilevelConfig::default())),
        );
        let before: Vec<Address> = (0..10).map(addr).collect();
        let r = sim.run(&log);
        assert!(r.repartitions >= 1);
        // the repartition happened at week 3 when only community B was in
        // the reduced window: community A keeps its hash placement
        let shards_a: Vec<_> = before.iter().map(|&a| sim.state().shard_of(a)).collect();
        let hash_expected: Vec<_> = before
            .iter()
            .map(|&a| {
                Some(HashPartitioner::shard_for_id(
                    a.stable_hash(),
                    ShardCount::TWO,
                ))
            })
            .collect();
        assert_eq!(shards_a, hash_expected);
    }

    #[test]
    fn windows_tile_the_log_duration() {
        let log = community_log(10);
        let cfg = SimulatorConfig::new(ShardCount::TWO).with_policy(RepartitionPolicy::Never);
        let mut sim = ShardSimulator::new(cfg, Box::new(HashPartitioner::new()));
        let r = sim.run(&log);
        // 10 days of 4-hour windows = 60 windows
        assert_eq!(r.windows.len(), 60);
        for pair in r.windows.windows(2) {
            assert_eq!(
                pair[1].start,
                pair[0].start + Duration::hours(4),
                "windows must tile"
            );
        }
        let events: usize = r.windows.iter().map(|w| w.events).sum();
        assert_eq!(events, log.len());
    }

    #[test]
    fn empty_log_yields_empty_result() {
        let cfg = SimulatorConfig::new(ShardCount::TWO);
        let mut sim = ShardSimulator::new(cfg, Box::new(HashPartitioner::new()));
        let r = sim.run(&InteractionLog::new());
        assert!(r.windows.is_empty());
        assert_eq!(r.total_moves, 0);
    }

    #[test]
    fn relocation_units_count_contract_storage() {
        // one contract with 100 slots, forced to move via a repartition
        let mut log = InteractionLog::new();
        let contract = addr(500);
        for h in 0..15 * 24 {
            let t = Timestamp::from_secs(h * 3_600);
            let mut e = Interaction::new(t, addr(h % 5), contract);
            e.to_kind = AccountKind::Contract;
            log.push(e);
        }
        let sizes: HashMap<Address, u64> = [(contract, 100u64)].into_iter().collect();
        let cfg = SimulatorConfig::new(ShardCount::TWO)
            .with_placement(PlacementRule::Hash)
            .with_contract_sizes(sizes)
            .with_policy(RepartitionPolicy::Periodic {
                interval: Duration::weeks(1),
            });
        let mut sim = ShardSimulator::new(
            cfg,
            Box::new(MultilevelPartitioner::new(MultilevelConfig::default())),
        );
        let r = sim.run(&log);
        if r.total_moves > 0 {
            // any contract move costs 101 units; account moves cost 1
            assert!(r.total_relocated_units >= r.total_moves);
        }
        // the star graph should end up with zero cut after repartition
        let last = r.windows.last().unwrap();
        assert!(last.cumulative_dynamic_edge_cut < 0.7);
    }

    #[test]
    fn result_window_queries() {
        let log = community_log(10);
        let cfg = SimulatorConfig::new(ShardCount::TWO).with_policy(RepartitionPolicy::Never);
        let mut sim = ShardSimulator::new(cfg, Box::new(HashPartitioner::new()));
        let r = sim.run(&log);
        let day1 = r.windows_in(Timestamp::EPOCH, Timestamp::from_secs(86_400));
        assert_eq!(day1.len(), 6);
        assert_eq!(
            r.moves_in(Timestamp::EPOCH, Timestamp::from_secs(u64::MAX)),
            0
        );
    }
}
