//! End-to-end integration: synthesize a chain, run all five methods, and
//! assert the paper's qualitative results hold on the synthetic workload.

use blockpart::core::{Method, Study};
use blockpart::ethereum::gen::{ChainGenerator, GeneratorConfig};
use blockpart::types::ShardCount;

fn k(n: u16) -> ShardCount {
    ShardCount::new(n).expect("non-zero")
}

/// One shared study over a 14-day test history, all methods, k ∈ {2, 8}.
fn run_study(seed: u64) -> blockpart::core::StudyResult {
    let chain = ChainGenerator::new(GeneratorConfig::test_scale(seed)).generate();
    Study::new(&chain.log)
        .methods(Method::ALL.to_vec())
        .shard_counts(vec![k(2), k(8)])
        .seed(seed)
        .run()
}

#[test]
fn paper_shapes_hold_end_to_end() {
    let result = run_study(17);

    // --- hashing: zero moves, near-perfect static balance -----------------
    for kk in [k(2), k(8)] {
        let hash = result.get(Method::Hash, kk).expect("ran");
        assert_eq!(hash.total_moves, 0, "hashing never moves vertices");
        assert_eq!(hash.repartitions, 0);
        let last = hash.windows.last().expect("windows");
        assert!(
            last.static_balance < 1.25,
            "hash static balance at {kk}: {}",
            last.static_balance
        );
    }

    // --- hashing edge-cut grows with k toward 1 - 1/k ----------------------
    let hash2 = result.get(Method::Hash, k(2)).expect("ran");
    let hash8 = result.get(Method::Hash, k(8)).expect("ran");
    let cut = |r: &blockpart::shard::SimulationResult| {
        r.windows
            .last()
            .expect("windows")
            .cumulative_dynamic_edge_cut
    };
    assert!(
        (0.40..=0.60).contains(&cut(hash2)),
        "hash k=2 cut should be ~0.5, got {}",
        cut(hash2)
    );
    assert!(
        (0.80..=0.95).contains(&cut(hash8)),
        "hash k=8 cut should be ~0.88, got {}",
        cut(hash8)
    );

    // --- METIS family cuts fewer edges than hashing -------------------------
    for kk in [k(2), k(8)] {
        let hash_cut = cut(result.get(Method::Hash, kk).expect("ran"));
        for m in [Method::Metis, Method::RMetis, Method::TrMetis] {
            let mcut = cut(result.get(m, kk).expect("ran"));
            assert!(
                mcut < hash_cut,
                "{m} at {kk}: cut {mcut} should beat hash {hash_cut}"
            );
        }
    }

    // --- edge-cut grows with k for every method ------------------------------
    for m in Method::ALL {
        let c2 = cut(result.get(m, k(2)).expect("ran"));
        let c8 = cut(result.get(m, k(8)).expect("ran"));
        assert!(c8 > c2, "{m}: cut should grow with k ({c2} -> {c8})");
    }

    // --- periodic methods move vertices --------------------------------------
    for m in [Method::Kl, Method::Metis, Method::RMetis] {
        let r = result.get(m, k(2)).expect("ran");
        assert!(r.total_moves > 0, "{m} should move vertices");
        assert!(r.repartitions > 0, "{m} should repartition");
    }
    // TR-METIS only fires when quality degrades past its thresholds; on a
    // healthy log it may legitimately never repartition — but it must
    // never repartition more than R-METIS.
    for kk in [k(2), k(8)] {
        let tr = result.get(Method::TrMetis, kk).expect("ran");
        let r = result.get(Method::RMetis, kk).expect("ran");
        assert!(
            tr.repartitions <= r.repartitions,
            "TR-METIS repartitions ({}) exceed R-METIS ({}) at {kk}",
            tr.repartitions,
            r.repartitions
        );
        assert!(tr.total_moves <= r.total_moves);
    }
}

#[test]
fn study_is_reproducible_across_processes_shape() {
    // the same seed gives identical totals (stronger determinism is
    // asserted in unit tests; this guards the cross-crate pipeline)
    let a = run_study(23);
    let b = run_study(23);
    for (ra, rb) in a.runs.iter().zip(&b.runs) {
        assert_eq!(ra.method, rb.method);
        assert_eq!(ra.k, rb.k);
        assert_eq!(ra.result.total_moves, rb.result.total_moves);
        assert_eq!(ra.result.vertex_count, rb.result.vertex_count);
        assert_eq!(ra.result.edge_count, rb.result.edge_count);
    }
}

#[test]
fn windows_account_for_every_interaction() {
    let chain = ChainGenerator::new(GeneratorConfig::test_scale(29)).generate();
    let result = Study::new(&chain.log)
        .methods(vec![Method::Hash])
        .shard_counts(vec![k(2)])
        .run();
    let hash = result.get(Method::Hash, k(2)).expect("ran");
    let windowed: usize = hash.windows.iter().map(|w| w.events).sum();
    assert_eq!(windowed, chain.log.len());
}

#[test]
fn relocation_units_exceed_moves_when_contracts_move() {
    // wire contract sizes from the generated world into the simulator
    let chain = ChainGenerator::new(GeneratorConfig::test_scale(31)).generate();
    let sizes: std::collections::HashMap<_, _> = chain
        .chain
        .world()
        .contract_storage_sizes()
        .map(|(a, s)| (a, s as u64))
        .collect();
    let config = Method::Metis
        .simulator_config(k(2))
        .with_contract_sizes(sizes);
    let mut sim = blockpart::shard::ShardSimulator::new(config, Method::Metis.partitioner(1));
    let r = sim.run(&chain.log);
    assert!(r.total_moves > 0);
    assert!(
        r.total_relocated_units >= r.total_moves,
        "every move relocates at least one unit"
    );
}
