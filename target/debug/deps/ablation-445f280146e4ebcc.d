/root/repo/target/debug/deps/ablation-445f280146e4ebcc.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-445f280146e4ebcc.rmeta: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
