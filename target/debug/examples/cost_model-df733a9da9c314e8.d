/root/repo/target/debug/examples/cost_model-df733a9da9c314e8.d: examples/cost_model.rs

/root/repo/target/debug/examples/cost_model-df733a9da9c314e8: examples/cost_model.rs

examples/cost_model.rs:
