/root/repo/target/debug/deps/extensions-a4eb69e244673591.d: tests/extensions.rs

/root/repo/target/debug/deps/libextensions-a4eb69e244673591.rmeta: tests/extensions.rs

tests/extensions.rs:
