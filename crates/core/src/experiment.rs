//! The unified experiment pipeline: workload → windowing → strategies ×
//! shard counts → offline simulation and/or 2PC runtime replay.
//!
//! [`Experiment`] collapses the two historical one-shot drivers
//! ([`Study`](crate::Study) and [`RuntimeStudy`](crate::RuntimeStudy),
//! both now thin shims over this type) into one builder:
//!
//! 1. **Workload source** — a pre-built [`SyntheticChain`], a bare
//!    [`InteractionLog`], or a [`GeneratorConfig`] the pipeline
//!    synthesizes at run time;
//! 2. **Strategies** — any [`StrategySpec`]s, usually resolved through a
//!    [`StrategyRegistry`](crate::StrategyRegistry);
//! 3. **Stages** — the offline partitioning simulation (edge-cut /
//!    balance / moves per 4-hour window) and, when a chain is available,
//!    the 2PC runtime replay of the chain on each strategy's final
//!    assignment. One simulator pass feeds both stages.
//!
//! The output is an [`ExperimentReport`] nesting the per-run
//! [`SimulationResult`] and [`RuntimeReport`] data; it renders as ASCII
//! tables or serializes to JSON for benches and CI diffing.
//!
//! # Examples
//!
//! ```
//! use blockpart_core::{Experiment, StrategyRegistry};
//! use blockpart_ethereum::gen::{ChainGenerator, GeneratorConfig};
//! use blockpart_types::ShardCount;
//!
//! let registry = StrategyRegistry::with_builtins();
//! let chain = ChainGenerator::new(GeneratorConfig::test_scale(5)).generate();
//! let report = Experiment::over_chain(&chain)
//!     .named_strategies(&registry, "hash,metis")
//!     .unwrap()
//!     .shard_counts(vec![ShardCount::TWO])
//!     .run();
//! let hash = report.offline("hash", ShardCount::TWO).unwrap();
//! assert_eq!(hash.total_moves, 0);
//! assert!(report.to_json().starts_with('{'));
//! ```

use std::sync::{mpsc, Arc};
use std::time::Instant;

use crossbeam::deque::{Steal, Stealer, Worker};

use blockpart_ethereum::gen::{ChainGenerator, GeneratorConfig};
use blockpart_ethereum::SyntheticChain;
use blockpart_graph::InteractionLog;
use blockpart_live::{LiveConfig, LiveRunner, MigrationReport};
use blockpart_metrics::{Json, Table};
use blockpart_obs::{perfetto, Collector, Record, Trace};
use blockpart_runtime::{Assignment, RuntimeReport, ShardedRuntime};
use blockpart_shard::{ShardSimulator, SimulationResult};
use blockpart_storage::{SegmentStore, DEFAULT_SEGMENT_EVENTS};
use blockpart_types::{Duration, ShardCount, SpillSession, StorageBackend};

use crate::scenario::{ScenarioRegistry, ScenarioSpec};
use crate::strategy::{spec_lookup_key, StrategyError, StrategyRegistry, StrategySpec};

/// A configured strategy and, when it was resolved from a spec string,
/// the requested spelling (kept for report lookups).
type ConfiguredStrategy = (Arc<dyn StrategySpec>, Option<String>);

/// The paper's five canonical strategies — the default when an
/// [`Experiment`] is run without configuring strategies.
fn default_strategies() -> Vec<ConfiguredStrategy> {
    StrategyRegistry::with_builtins()
        .canonical()
        .expect("built-in strategies resolve")
        .into_iter()
        .map(|s| (s, None))
        .collect()
}

/// Where an experiment's interactions (and, for replay, transactions)
/// come from.
enum WorkloadSource<'a> {
    /// A bare interaction log: offline simulation only.
    Log(&'a InteractionLog),
    /// A pre-built chain: offline simulation and runtime replay.
    Chain(&'a SyntheticChain),
    /// A generator configuration, synthesized when the experiment runs.
    Generator(GeneratorConfig),
}

/// The event source handed to each strategy × k pair: the resident log,
/// or a disk-backed segment store each pair streams independently.
enum EventFeed<'b> {
    /// Everything resident — the classic path.
    Resident(&'b InteractionLog),
    /// A sealed on-disk segment store; each pair opens its own
    /// sequential readers, so the full log is never materialized.
    Store(&'b SegmentStore),
}

/// One completed pipeline run: a strategy at a shard count.
#[derive(Clone, Debug)]
pub struct ExperimentRun {
    /// The strategy's display name ([`StrategySpec::name`]).
    pub strategy: String,
    /// The spec string this run was configured from, when it was
    /// resolved by name (e.g. the alias `p-metis` whose display name is
    /// `R-METIS`). Report lookups match it as well as the display name.
    pub requested: Option<String>,
    /// The shard count.
    pub k: ShardCount,
    /// Offline per-window metrics (present unless offline was disabled).
    pub offline: Option<SimulationResult>,
    /// 2PC replay measurements (present when replay was enabled).
    pub runtime: Option<RuntimeReport>,
    /// Live repartitioning measurements (present when the live stage
    /// was enabled): triggered migrations executed through the 2PC
    /// runtime while the transaction stream flows.
    pub live: Option<MigrationReport>,
}

/// Results of an [`Experiment`], indexable by strategy name and shard
/// count. Name lookup uses the registry's normalization (case- and
/// `-`/`_`-insensitive).
#[derive(Clone, Debug, Default)]
pub struct ExperimentReport {
    /// The seed the experiment ran with.
    pub seed: u64,
    /// The measurement window.
    pub window: Duration,
    /// The scenario the workload was generated under, when the
    /// experiment ran a generator workload with a configured
    /// [`ScenarioSpec`] (the friendly organic chain otherwise).
    pub scenario: Option<String>,
    /// All runs, strategy-major in configuration order.
    pub runs: Vec<ExperimentRun>,
    /// Merged observability trace, present when tracing was enabled
    /// ([`Experiment::trace`]): pipeline/pair wall spans in process 0
    /// (one thread lane per pair) plus each replay's virtual-clock 2PC
    /// trace retagged into its own process lane.
    pub trace: Option<Trace>,
}

impl ExperimentReport {
    fn run_of(&self, strategy: &str, k: ShardCount) -> Option<&ExperimentRun> {
        let key = spec_lookup_key(strategy);
        self.runs.iter().find(|r| {
            r.k == k
                && (spec_lookup_key(&r.strategy) == key
                    || r.requested.as_deref().map(spec_lookup_key) == Some(key.clone()))
        })
    }

    /// The offline simulation result for `strategy` at `k`, if present.
    pub fn offline(&self, strategy: &str, k: ShardCount) -> Option<&SimulationResult> {
        self.run_of(strategy, k).and_then(|r| r.offline.as_ref())
    }

    /// The runtime replay report for `strategy` at `k`, if present.
    pub fn runtime(&self, strategy: &str, k: ShardCount) -> Option<&RuntimeReport> {
        self.run_of(strategy, k).and_then(|r| r.runtime.as_ref())
    }

    /// The live repartitioning report for `strategy` at `k`, if present.
    pub fn live(&self, strategy: &str, k: ShardCount) -> Option<&MigrationReport> {
        self.run_of(strategy, k).and_then(|r| r.live.as_ref())
    }

    /// Renders the offline stage as the per-strategy aggregate table
    /// (the Fig. 5 columns: mean dynamic edge-cut, normalized balance,
    /// moves, repartitions).
    pub fn offline_table(&self) -> Table {
        let mut t = Table::new(vec![
            "strategy",
            "k",
            "dyn-edge-cut",
            "norm-dyn-balance",
            "moves",
            "reparts",
        ]);
        for r in &self.runs {
            let Some(sim) = &r.offline else { continue };
            let (cut, bal) = mean_window_metrics(sim);
            let normalized = normalized_balance(bal, r.k.as_usize());
            t.row(vec![
                r.strategy.clone(),
                r.k.get().to_string(),
                format!("{cut:.3}"),
                format!("{normalized:.3}"),
                sim.total_moves.to_string(),
                sim.repartitions.to_string(),
            ]);
        }
        t
    }

    /// Renders the replay stage as the runtime comparison table.
    pub fn runtime_table(&self) -> Table {
        let mut t = Table::new(vec![
            "strategy",
            "k",
            "committed",
            "failed",
            "cross-%",
            "abort-%",
            "p50-ms",
            "p99-ms",
            "tx/s",
        ]);
        for r in &self.runs {
            let Some(rep) = &r.runtime else { continue };
            t.row(vec![
                r.strategy.clone(),
                r.k.get().to_string(),
                rep.committed.to_string(),
                rep.failed.to_string(),
                format!("{:.1}", rep.cross_shard_ratio * 100.0),
                format!("{:.1}", rep.abort_rate * 100.0),
                format!("{:.2}", rep.p50_commit_latency_us as f64 / 1e3),
                format!("{:.2}", rep.p99_commit_latency_us as f64 / 1e3),
                format!("{:.0}", rep.throughput_tps),
            ]);
        }
        t
    }

    /// Renders the live stage as the migration comparison table.
    pub fn live_table(&self) -> Table {
        let mut t = Table::new(vec![
            "strategy",
            "k",
            "migrations",
            "accounts",
            "bytes",
            "mig-ms",
            "during-p99-ms",
            "committed",
            "failed",
        ]);
        for r in &self.runs {
            let Some(live) = &r.live else { continue };
            t.row(vec![
                r.strategy.clone(),
                r.k.get().to_string(),
                live.migrations().to_string(),
                live.accounts_moved().to_string(),
                live.bytes_moved().to_string(),
                format!("{:.2}", live.migration_wall_us() as f64 / 1e3),
                format!("{:.2}", live.worst_during_p99_us() as f64 / 1e3),
                live.total_committed().to_string(),
                live.total_failed().to_string(),
            ]);
        }
        t
    }

    /// The trace as a Chrome/Perfetto `trace_event` JSON document, when
    /// tracing was enabled.
    pub fn trace_perfetto(&self) -> Option<Json> {
        self.trace.as_ref().map(perfetto::to_perfetto)
    }

    /// Flat text dump of the collected metrics, when tracing was
    /// enabled.
    pub fn metrics_text(&self) -> Option<String> {
        self.trace.as_ref().map(Trace::metrics_text)
    }

    /// Serializes the report as compact JSON.
    pub fn to_json(&self) -> String {
        self.json_value().render()
    }

    /// Serializes the report as indented JSON (diff-friendly).
    pub fn to_json_pretty(&self) -> String {
        self.json_value().render_pretty()
    }

    fn json_value(&self) -> Json {
        let mut pairs = vec![
            ("schema".to_string(), Json::from("blockpart.experiment/1")),
            ("seed".to_string(), Json::from(self.seed)),
            (
                "window_hours".to_string(),
                Json::from(self.window.as_secs() as f64 / 3_600.0),
            ),
        ];
        if let Some(scenario) = &self.scenario {
            pairs.push(("scenario".to_string(), Json::from(scenario.as_str())));
        }
        pairs.push((
            "runs".to_string(),
            Json::arr(self.runs.iter().map(|r| {
                let mut pairs = vec![
                    ("strategy".to_string(), Json::from(r.strategy.as_str())),
                    ("k".to_string(), Json::from(r.k.get())),
                ];
                if let Some(sim) = &r.offline {
                    pairs.push(("offline".to_string(), offline_json(sim)));
                }
                if let Some(rep) = &r.runtime {
                    pairs.push(("runtime".to_string(), runtime_json(rep)));
                }
                if let Some(live) = &r.live {
                    pairs.push(("live".to_string(), live.json()));
                }
                Json::Obj(pairs)
            })),
        ));
        Json::Obj(pairs)
    }
}

/// Finds worker `me`'s next task: its own deque first, then a stealing
/// sweep over its peers (starting just after itself, so thieves spread
/// out). Returns `None` only when every queue is drained.
fn next_task(local: &Worker<usize>, stealers: &[Stealer<usize>], me: usize) -> Option<usize> {
    if let Some(i) = local.pop() {
        return Some(i);
    }
    loop {
        let mut retry = false;
        for offset in 1..stealers.len() {
            match stealers[(me + offset) % stealers.len()].steal() {
                Steal::Success(i) => return Some(i),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

/// Mean per-window dynamic edge-cut and balance over active windows —
/// the aggregation behind both this report's offline table and the
/// Fig. 5 rows in [`crate::experiments`].
pub(crate) fn mean_window_metrics(sim: &SimulationResult) -> (f64, f64) {
    let active: Vec<_> = sim.windows.iter().filter(|w| w.events > 0).collect();
    let n = active.len().max(1) as f64;
    (
        active.iter().map(|w| w.dynamic_edge_cut).sum::<f64>() / n,
        active.iter().map(|w| w.dynamic_balance).sum::<f64>() / n,
    )
}

/// Normalizes a mean dynamic balance as `(b − 1)/(k − 1)` so different
/// shard counts are comparable (the paper's Fig. 5 y-axis).
pub(crate) fn normalized_balance(mean_balance: f64, k: usize) -> f64 {
    if k <= 1 {
        0.0
    } else {
        ((mean_balance - 1.0) / (k as f64 - 1.0)).max(0.0)
    }
}

fn offline_json(sim: &SimulationResult) -> Json {
    let (cut, bal) = mean_window_metrics(sim);
    let mut pairs = vec![
        ("windows".to_string(), Json::from(sim.windows.len())),
        ("total_moves".to_string(), Json::from(sim.total_moves)),
        (
            "total_relocated_units".to_string(),
            Json::from(sim.total_relocated_units),
        ),
        ("repartitions".to_string(), Json::from(sim.repartitions)),
        ("vertex_count".to_string(), Json::from(sim.vertex_count)),
        ("edge_count".to_string(), Json::from(sim.edge_count)),
        ("mean_dynamic_edge_cut".to_string(), Json::from(cut)),
        ("mean_dynamic_balance".to_string(), Json::from(bal)),
    ];
    if let Some(last) = sim.windows.last() {
        pairs.push((
            "final_static_edge_cut".to_string(),
            Json::from(last.static_edge_cut),
        ));
        pairs.push((
            "final_static_balance".to_string(),
            Json::from(last.static_balance),
        ));
        pairs.push((
            "cumulative_dynamic_edge_cut".to_string(),
            Json::from(last.cumulative_dynamic_edge_cut),
        ));
    }
    Json::Obj(pairs)
}

fn runtime_json(rep: &RuntimeReport) -> Json {
    Json::obj([
        ("k", Json::from(rep.k.get())),
        ("total_txs", Json::from(rep.total_txs)),
        ("committed", Json::from(rep.committed)),
        ("failed", Json::from(rep.failed)),
        ("cross_shard_txs", Json::from(rep.cross_shard_txs)),
        ("cross_shard_ratio", Json::from(rep.cross_shard_ratio)),
        ("prepare_rounds", Json::from(rep.prepare_rounds)),
        ("aborted_rounds", Json::from(rep.aborted_rounds)),
        ("abort_rate", Json::from(rep.abort_rate)),
        ("local_conflicts", Json::from(rep.local_conflicts)),
        ("stray_touches", Json::from(rep.stray_touches)),
        (
            "p50_commit_latency_us",
            Json::from(rep.p50_commit_latency_us),
        ),
        (
            "p99_commit_latency_us",
            Json::from(rep.p99_commit_latency_us),
        ),
        ("makespan_us", Json::from(rep.makespan_us)),
        ("throughput_tps", Json::from(rep.throughput_tps)),
        ("exec_speculated", Json::from(rep.exec_speculated)),
        ("exec_conflicts", Json::from(rep.exec_conflicts)),
        ("exec_re_executions", Json::from(rep.exec_re_executions)),
        (
            "per_shard",
            Json::arr(rep.per_shard.iter().map(|s| {
                Json::obj([
                    ("shard", Json::from(s.shard.as_u16())),
                    ("committed", Json::from(s.committed)),
                    ("cross_committed", Json::from(s.cross_committed)),
                    ("busy_us", Json::from(s.busy_us)),
                    ("utilization", Json::from(s.utilization)),
                ])
            })),
        ),
    ])
}

/// Configures and runs the unified pipeline: workload source → graph
/// windowing → strategies × shard counts → offline simulation and/or
/// 2PC runtime replay.
///
/// Strategy × shard-count pairs execute in parallel (a worker pool
/// bounded by the machine's available parallelism) and are individually
/// deterministic: the same workload, strategies, shard counts and seed
/// always produce the same report regardless of thread scheduling.
pub struct Experiment<'a> {
    workload: WorkloadSource<'a>,
    /// `None` until configured: [`run`](Experiment::run) defaults to the
    /// five canonical paper strategies (resolved lazily so the common
    /// explicitly-configured path never builds an unused registry).
    /// Each spec may carry the spec string it was resolved from.
    strategies: Option<Vec<ConfiguredStrategy>>,
    shard_counts: Vec<ShardCount>,
    /// The scenario applied to a generator workload (friendly chain
    /// when unset). One chain is generated per [`run`](Experiment::run)
    /// and shared by every strategy × k pair.
    scenario: Option<Arc<dyn ScenarioSpec>>,
    window: Duration,
    seed: u64,
    offline: bool,
    replay: bool,
    live: bool,
    trace: bool,
    net_latency_us: Option<u64>,
    inter_arrival_us: Option<u64>,
    /// The intra-shard execution engine for the replay and live stages
    /// (`None` = each strategy's own [`RuntimeConfig`] default, i.e. the
    /// serial engine).
    exec: Option<blockpart_ethereum::ExecHandle>,
    /// Where the pipeline's heavy data lives. With
    /// [`StorageBackend::Spill`], a generator workload without replay or
    /// live stages is synthesized straight into an on-disk segment store
    /// (the full interaction log is never resident) and the offline
    /// simulation streams it back; replay and live stages route 2PC
    /// state shipping through an on-disk spool. Results are
    /// byte-identical to the in-memory backend.
    storage: StorageBackend,
}

impl std::fmt::Debug for Experiment<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field(
                "strategies",
                &self
                    .strategies
                    .iter()
                    .flatten()
                    .map(|(s, _)| s.name())
                    .collect::<Vec<_>>(),
            )
            .field("shard_counts", &self.shard_counts)
            .field("offline", &self.offline)
            .field("replay", &self.replay)
            .finish()
    }
}

impl<'a> Experiment<'a> {
    fn with_workload(workload: WorkloadSource<'a>, replay: bool) -> Self {
        Experiment {
            workload,
            strategies: None,
            shard_counts: [2u16, 4, 8]
                .iter()
                .map(|&k| ShardCount::new(k).expect("non-zero"))
                .collect(),
            scenario: None,
            window: Duration::hours(4),
            seed: 0x45_58_50, // "EXP"
            offline: true,
            replay,
            live: false,
            trace: false,
            net_latency_us: None,
            inter_arrival_us: None,
            exec: None,
            storage: StorageBackend::InMemory,
        }
    }

    /// An experiment over a bare interaction log (offline stage only —
    /// there are no transactions to replay). Defaults: the five paper
    /// strategies, k ∈ {2, 4, 8}, 4-hour windows.
    pub fn over_log(log: &'a InteractionLog) -> Self {
        Experiment::with_workload(WorkloadSource::Log(log), false)
    }

    /// An experiment over a pre-built synthetic chain. Same defaults as
    /// [`over_log`](Self::over_log); enable the 2PC stage with
    /// [`replay`](Self::replay).
    pub fn over_chain(chain: &'a SyntheticChain) -> Self {
        Experiment::with_workload(WorkloadSource::Chain(chain), false)
    }

    /// An experiment that synthesizes its chain from `config` when run.
    pub fn from_generator(config: GeneratorConfig) -> Self {
        Experiment::with_workload(WorkloadSource::Generator(config), false)
    }

    /// Replaces the strategy list.
    pub fn strategies(mut self, strategies: Vec<Arc<dyn StrategySpec>>) -> Self {
        self.strategies = Some(strategies.into_iter().map(|s| (s, None)).collect());
        self
    }

    /// Adds one strategy (to the canonical five when none were
    /// configured yet).
    pub fn strategy(mut self, strategy: Arc<dyn StrategySpec>) -> Self {
        self.strategies
            .get_or_insert_with(default_strategies)
            .push((strategy, None));
        self
    }

    /// Replaces the strategy list by resolving a comma-separated spec
    /// string (e.g. `"hash,r-metis[window=7]"` or `"all"`) against
    /// `registry`. Each run remembers its spec string, so report
    /// lookups accept the requested spelling (aliases included) as well
    /// as the display name.
    pub fn named_strategies(
        mut self,
        registry: &StrategyRegistry,
        specs: &str,
    ) -> Result<Self, StrategyError> {
        self.strategies = Some(
            registry
                .resolve_list_with_sources(specs)?
                .into_iter()
                .map(|(spec, source)| (spec, Some(source)))
                .collect(),
        );
        Ok(self)
    }

    /// Replaces the shard counts.
    pub fn shard_counts(mut self, shard_counts: Vec<ShardCount>) -> Self {
        self.shard_counts = shard_counts;
        self
    }

    /// Applies an adversarial scenario to a generator workload: the
    /// chain is synthesized through the scenario's injectors (once per
    /// run — every strategy × k pair scores the same chain) and the
    /// report carries the scenario's name.
    ///
    /// Requires a generator workload; [`run`](Self::run) panics when a
    /// scenario is configured over a pre-built chain or bare log.
    pub fn scenario(mut self, scenario: Arc<dyn ScenarioSpec>) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Resolves `spec` (`name` or `name[key=value;...]`, `+`-composable)
    /// against `registry` and applies it via
    /// [`scenario`](Self::scenario).
    pub fn named_scenario(
        self,
        registry: &ScenarioRegistry,
        spec: &str,
    ) -> Result<Self, StrategyError> {
        Ok(self.scenario(registry.compose(spec)?))
    }

    /// Overrides the measurement window.
    pub fn window(mut self, window: Duration) -> Self {
        self.window = window;
        self
    }

    /// Overrides the seed fed to partitioners and the replay runtime.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables the offline metrics stage (on by default).
    /// The partitioning simulation itself always runs — replay needs its
    /// final assignment — but with `offline(false)` the report omits the
    /// per-window data.
    pub fn offline(mut self, offline: bool) -> Self {
        self.offline = offline;
        self
    }

    /// Enables the 2PC runtime replay stage (off by default).
    ///
    /// Requires a chain workload; [`run`](Self::run) panics on a
    /// log-only experiment with replay enabled.
    pub fn replay(mut self, replay: bool) -> Self {
        self.replay = replay;
        self
    }

    /// Enables the live repartitioning stage (off by default): the
    /// chain's transaction stream is driven through a
    /// [`LiveRunner`] — windowed graph, the strategy's trigger policy,
    /// and real 2PC state migrations — and each run carries the
    /// resulting [`MigrationReport`].
    ///
    /// Requires a chain workload, like [`replay`](Self::replay).
    pub fn live(mut self, live: bool) -> Self {
        self.live = live;
        self
    }

    /// Enables observability tracing (off by default). The report then
    /// carries a merged [`Trace`]: wall-clock stage spans per pair
    /// (`simulate`, `replay`, plus the simulator's `detail`
    /// sub-spans), each replay's deterministic virtual-clock 2PC trace
    /// in its own Perfetto process lane, and a metrics registry scoped
    /// `{strategy}/k{n}/`.
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Overrides the replay's one-way inter-shard network latency (µs)
    /// for every strategy, on top of [`StrategySpec::runtime_config`].
    pub fn net_latency_us(mut self, latency: u64) -> Self {
        self.net_latency_us = Some(latency);
        self
    }

    /// Overrides the replay's offered-load arrival gap (µs) for every
    /// strategy.
    pub fn inter_arrival_us(mut self, gap: u64) -> Self {
        self.inter_arrival_us = Some(gap);
        self
    }

    /// Overrides the intra-shard execution engine used by the replay and
    /// live stages for every strategy (the serial engine when unset).
    /// Resolve one by name with [`EngineRegistry`](crate::EngineRegistry)
    /// or pass a handle built directly. Engines are parity-guaranteed:
    /// only the additive `exec_*` report counters may differ.
    pub fn with_exec(mut self, exec: blockpart_ethereum::ExecHandle) -> Self {
        self.exec = Some(exec);
        self
    }

    /// Selects the storage backend (see [`Experiment::storage`]'s field
    /// docs; [`StorageBackend::InMemory`] by default). The CLI threads
    /// `--spill-dir` / `--mem-budget` (or `BLOCKPART_MEM_BUDGET` /
    /// `BLOCKPART_SPILL_DIR`) into this.
    pub fn storage(mut self, backend: StorageBackend) -> Self {
        self.storage = backend;
        self
    }

    /// Runs every strategy × shard-count pair and collects the report.
    ///
    /// # Panics
    ///
    /// Panics if replay is enabled on a log-only workload, or if the
    /// configured strategy or shard-count list is empty (a misconfigured
    /// caller should not silently run nothing).
    pub fn run(self) -> ExperimentReport {
        // One epoch for the whole pipeline so every pair's wall spans
        // line up on a single timeline.
        let epoch = self.trace.then(Instant::now);
        let mut root = match epoch {
            Some(e) => {
                let mut t = Trace::new_at(e);
                t.name_process(0, "experiment pipeline (wall µs)");
                t.name_thread(0, 0, "pipeline");
                t
            }
            None => Trace::disabled(),
        };

        assert!(
            self.scenario.is_none() || matches!(self.workload, WorkloadSource::Generator(_)),
            "a scenario requires a generator workload (use Experiment::from_generator)"
        );
        let generated;
        let streamed;
        let mut session: Option<SpillSession> = None;
        let gen_start = root.now_us();
        // A generator workload whose only consumer is the offline stage
        // can be synthesized straight to disk: the interaction log is
        // never resident. Replay/live need the chain's world and
        // transaction stream, so they keep the resident path (and route
        // state shipping through a spool instead).
        let stream_gen = self.storage.is_spill()
            && self.scenario.is_none()
            && !self.replay
            && !self.live
            && matches!(self.workload, WorkloadSource::Generator(_));
        let (feed, chain): (EventFeed<'_>, Option<&SyntheticChain>) = match &self.workload {
            WorkloadSource::Log(log) => (EventFeed::Resident(log), None),
            WorkloadSource::Chain(chain) => (EventFeed::Resident(&chain.log), Some(chain)),
            WorkloadSource::Generator(config) if stream_gen => {
                let spill_root = self.storage.spill_dir().expect("spill backend has a root");
                let s = SpillSession::create(spill_root).expect("create spill session");
                let mut writer =
                    SegmentStore::writer(s.path().join("events"), DEFAULT_SEGMENT_EVENTS)
                        .expect("open segment writer");
                ChainGenerator::new(config.clone())
                    .generate_into(&mut writer)
                    .expect("stream chain into segment store");
                let store = writer.finish().expect("seal segment store");
                if root.enabled() {
                    let dur = root.now_us() - gen_start;
                    root.record(
                        Record::span(gen_start, dur, "stage", "chain-gen")
                            .with_arg("interactions", store.event_count())
                            .with_arg("segments", store.segment_count()),
                    );
                }
                session = Some(s);
                streamed = store;
                (EventFeed::Store(&streamed), None)
            }
            WorkloadSource::Generator(config) => {
                generated = match &self.scenario {
                    Some(scenario) => scenario.build(config),
                    None => ChainGenerator::new(config.clone()).generate(),
                };
                if root.enabled() {
                    let dur = root.now_us() - gen_start;
                    let mut record = Record::span(gen_start, dur, "stage", "chain-gen")
                        .with_arg("txs", generated.txs.len())
                        .with_arg("interactions", generated.log.len());
                    if let Some(scenario) = &self.scenario {
                        record = record.with_arg("scenario", scenario.name());
                    }
                    root.record(record);
                }
                (EventFeed::Resident(&generated.log), Some(&generated))
            }
        };
        if session.is_none() && self.storage.is_spill() && (self.replay || self.live) {
            let spill_root = self.storage.spill_dir().expect("spill backend has a root");
            session = Some(SpillSession::create(spill_root).expect("create spill session"));
        }
        let spool_root = session.as_ref().map(|s| s.path().to_path_buf());
        assert!(
            !self.replay || chain.is_some(),
            "runtime replay requires a chain workload (use Experiment::over_chain or \
             Experiment::from_generator)"
        );
        assert!(
            !self.live || chain.is_some(),
            "the live stage requires a chain workload (use Experiment::over_chain or \
             Experiment::from_generator)"
        );

        let strategies = match &self.strategies {
            Some(s) => s.clone(),
            None => default_strategies(),
        };
        assert!(
            !strategies.is_empty(),
            "experiment configured with an empty strategy list"
        );
        assert!(
            !self.shard_counts.is_empty(),
            "experiment configured with an empty shard-count list"
        );
        let mut pairs: Vec<(&Arc<dyn StrategySpec>, &Option<String>, ShardCount)> = Vec::new();
        for (spec, requested) in &strategies {
            for &k in &self.shard_counts {
                pairs.push((spec, requested, k));
            }
        }

        // Work-stealing fan-out over a bounded worker set: a replay pair
        // holds a full per-shard copy of the world state, so
        // one-thread-per-pair would multiply peak memory by the pair
        // count on large grids (`BLOCKPART_THREADS` caps the bound, via
        // resolve_workers, for memory-constrained hosts). Each worker
        // owns a local deque seeded round-robin; when it drains (pair
        // costs are wildly uneven — HASH at k=2 versus a METIS replay at
        // k=8) it steals from its peers, so no thread idles while work
        // remains. Results carry their pair index, so the report order —
        // and every number in it — is independent of which thread ran
        // what.
        let workers = blockpart_types::resolve_workers(0).min(pairs.len().max(1));
        let queues: Vec<Worker<usize>> = (0..workers).map(|_| Worker::new_fifo()).collect();
        for (i, _) in pairs.iter().enumerate() {
            queues[i % workers].push(i);
        }
        let stealers: Vec<Stealer<usize>> = queues.iter().map(|q| q.stealer()).collect();
        let (tx, rx) = mpsc::channel::<(usize, ExperimentRun, Option<Trace>)>();
        let this = &self;
        let (feed, spool_root) = (&feed, spool_root.as_deref());
        crossbeam::thread::scope(|scope| {
            for (me, local) in queues.iter().enumerate() {
                let tx = tx.clone();
                let (stealers, pairs) = (&stealers, &pairs);
                scope.spawn(move |_| {
                    while let Some(i) = next_task(local, stealers, me) {
                        let (spec, requested, k) = pairs[i];
                        let (mut run, sub) = this.run_pair(
                            spec.as_ref(),
                            k,
                            feed,
                            chain,
                            spool_root,
                            i as u32,
                            epoch,
                        );
                        run.requested = requested.clone();
                        tx.send((i, run, sub)).expect("collector outlives workers");
                    }
                });
            }
        })
        .expect("experiment worker panicked");
        drop(tx);

        let mut slots: Vec<Option<(ExperimentRun, Option<Trace>)>> = Vec::new();
        slots.resize_with(pairs.len(), || None);
        for (i, run, sub) in rx {
            slots[i] = Some((run, sub));
        }
        let mut runs = Vec::with_capacity(pairs.len());
        for slot in slots {
            let (run, sub) = slot.expect("run completed");
            if let Some(sub) = sub {
                root.merge(sub);
            }
            runs.push(run);
        }
        if let Some(session) = session {
            // a panicking run never reaches this: the session's Drop
            // keeps the directory and logs its path for inspection
            session.finish().expect("remove spill session");
        }
        ExperimentReport {
            seed: self.seed,
            window: self.window,
            scenario: self.scenario.as_ref().map(|s| s.name().to_string()),
            runs,
            trace: self.trace.then_some(root),
        }
    }

    /// One strategy at one shard count: simulate, then optionally replay
    /// the chain on the simulation's final assignment.
    ///
    /// When tracing (`epoch` set), the pair collects its wall spans on
    /// thread lane `pair + 1` of process 0 (lane 0 is the pipeline
    /// itself) and slots the replay's virtual trace into process
    /// `pair + 1`.
    #[allow(clippy::too_many_arguments)]
    fn run_pair(
        &self,
        spec: &dyn StrategySpec,
        k: ShardCount,
        feed: &EventFeed<'_>,
        chain: Option<&SyntheticChain>,
        spool_root: Option<&std::path::Path>,
        pair: u32,
        epoch: Option<Instant>,
    ) -> (ExperimentRun, Option<Trace>) {
        let mut obs = match epoch {
            Some(e) => Trace::new_at(e),
            None => Trace::disabled(),
        };
        let label = format!("{} k={}", spec.name(), k.get());
        let prefix = format!("{}/k{}/", spec.name(), k.get());
        if obs.enabled() {
            obs.set_lane(0, pair + 1);
            obs.name_thread(0, pair + 1, label.clone());
            obs.set_metric_prefix(prefix.clone());
        }

        let config = spec.simulator_config(k).with_window(self.window);
        let mut sim = ShardSimulator::new(config, spec.build_partitioner(self.seed));
        let sim_start = obs.now_us();
        let result = match feed {
            EventFeed::Resident(log) => sim.run_traced(log, &mut obs),
            EventFeed::Store(store) => {
                let rows = store.iter().expect("open segment stream");
                sim.run_stream_traced(rows.map(|r| r.expect("read segment event")), &mut obs)
            }
        };
        if obs.enabled() {
            let dur = obs.now_us() - sim_start;
            obs.record(
                Record::span(sim_start, dur, "stage", "simulate").with_arg("pair", label.clone()),
            );
        }

        let runtime = if self.replay {
            let chain = chain.expect("checked in run()");
            let assignment = Assignment::from_map(sim.into_state().assignment_map(), k);
            let mut cfg = spec.runtime_config(k).with_seed(self.seed);
            cfg.k = k; // the pipeline owns the shard count
            if let Some(latency) = self.net_latency_us {
                cfg = cfg.with_net_latency_us(latency);
            }
            if let Some(gap) = self.inter_arrival_us {
                cfg = cfg.with_inter_arrival_us(gap);
            }
            if let Some(exec) = &self.exec {
                cfg = cfg.with_exec(exec.clone());
            }
            if let Some(spool) = spool_root {
                cfg = cfg.with_state_spool_dir(spool.join(format!("spool-replay-{pair}")));
            }
            let runtime = ShardedRuntime::new(cfg, assignment);
            if obs.enabled() {
                let replay_start = obs.now_us();
                let (rep, mut virt) = runtime.run_traced(chain.chain.world(), &chain.txs);
                let dur = obs.now_us() - replay_start;
                obs.record(
                    Record::span(replay_start, dur, "stage", "replay")
                        .with_arg("pair", label.clone()),
                );
                virt.retag_process(pair + 1);
                virt.name_process(pair + 1, format!("{label} replay (virtual µs)"));
                virt.prefix_metrics(&prefix);
                obs.merge(virt);
                Some(rep)
            } else {
                Some(runtime.run(chain.chain.world(), &chain.txs))
            }
        } else {
            None
        };
        let live = if self.live {
            let chain = chain.expect("checked in run()");
            let live_start = obs.now_us();
            // the strategy's own trigger/scope settings drive the live
            // loop: retention depth = reduced-graph span in windows
            let sim_cfg = spec.simulator_config(k);
            let depth = (sim_cfg.scope_window.as_secs() / self.window.as_secs()).max(1) as usize;
            let mut runtime_cfg = spec.runtime_config(k).with_seed(self.seed);
            runtime_cfg.k = k;
            if let Some(latency) = self.net_latency_us {
                runtime_cfg = runtime_cfg.with_net_latency_us(latency);
            }
            if let Some(gap) = self.inter_arrival_us {
                runtime_cfg = runtime_cfg.with_inter_arrival_us(gap);
            }
            if let Some(exec) = &self.exec {
                runtime_cfg = runtime_cfg.with_exec(exec.clone());
            }
            if let Some(spool) = spool_root {
                runtime_cfg =
                    runtime_cfg.with_state_spool_dir(spool.join(format!("spool-live-{pair}")));
            }
            let cfg = LiveConfig::new(k)
                .with_window(self.window)
                .with_depth(depth)
                .with_policy(sim_cfg.policy)
                .with_runtime(runtime_cfg)
                .with_label(spec.name());
            let mut runner = LiveRunner::new(cfg, spec.build_partitioner(self.seed));
            let report = runner.run(chain.chain.world(), &chain.txs).report;
            if obs.enabled() {
                let dur = obs.now_us() - live_start;
                obs.record(
                    Record::span(live_start, dur, "stage", "live")
                        .with_arg("pair", label.clone())
                        .with_arg("migrations", report.migrations()),
                );
            }
            Some(report)
        } else {
            None
        };
        let run = ExperimentRun {
            strategy: spec.name().to_string(),
            requested: None, // filled in by run() from the pair table
            k,
            offline: self.offline.then_some(result),
            runtime,
            live,
        };
        (run, epoch.map(|_| obs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpart_graph::Interaction;
    use blockpart_types::{Address, Timestamp};

    fn log() -> InteractionLog {
        let mut log = InteractionLog::new();
        for d in 0..30u64 {
            for h in 0..24 {
                let t = Timestamp::from_secs(d * 86_400 + h * 3_600);
                let i = (d * 24 + h) % 20;
                log.push(Interaction::new(
                    t,
                    Address::from_index(i),
                    Address::from_index((i + 1) % 20),
                ));
            }
        }
        log
    }

    #[test]
    fn offline_experiment_over_log() {
        let log = log();
        let registry = StrategyRegistry::with_builtins();
        let report = Experiment::over_log(&log)
            .named_strategies(&registry, "hash,metis")
            .unwrap()
            .shard_counts(vec![ShardCount::TWO])
            .run();
        assert_eq!(report.runs.len(), 2);
        let hash = report.offline("HASH", ShardCount::TWO).expect("hash ran");
        assert_eq!(hash.total_moves, 0);
        assert!(report.runtime("hash", ShardCount::TWO).is_none());
        assert!(report.offline("kl", ShardCount::TWO).is_none());
        assert_eq!(report.offline_table().len(), 2);
        assert_eq!(report.runtime_table().len(), 0);
    }

    #[test]
    fn parallel_runs_are_deterministic() {
        let log = log();
        let registry = StrategyRegistry::with_builtins();
        let run = || {
            Experiment::over_log(&log)
                .named_strategies(&registry, "kl,metis,tr-metis")
                .unwrap()
                .shard_counts(vec![ShardCount::TWO])
                .seed(42)
                .run()
        };
        let (a, b) = (run(), run());
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            assert_eq!(ra.strategy, rb.strategy);
            let (sa, sb) = (ra.offline.as_ref().unwrap(), rb.offline.as_ref().unwrap());
            assert_eq!(sa.total_moves, sb.total_moves);
            assert_eq!(sa.windows, sb.windows);
        }
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn json_shape_is_stable() {
        let log = log();
        let registry = StrategyRegistry::with_builtins();
        let report = Experiment::over_log(&log)
            .named_strategies(&registry, "hash")
            .unwrap()
            .shard_counts(vec![ShardCount::TWO])
            .run();
        let json = report.to_json();
        for field in [
            "\"schema\":\"blockpart.experiment/1\"",
            "\"strategy\":\"HASH\"",
            "\"k\":2",
            "\"total_moves\":0",
            "\"mean_dynamic_edge_cut\":",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        let pretty = report.to_json_pretty();
        assert!(pretty.contains("\n  \"runs\": ["));
    }

    #[test]
    fn parameterized_spec_strings_round_trip_as_lookup_keys() {
        let log = log();
        let registry = StrategyRegistry::with_builtins();
        let report = Experiment::over_log(&log)
            .named_strategies(&registry, "r-metis[window=7]")
            .unwrap()
            .shard_counts(vec![ShardCount::TWO])
            .run();
        assert_eq!(report.runs[0].strategy, "R-METIS[window=7]");
        for key in [
            "r-metis[window=7]",
            "R_METIS[ window = 7 ]",
            "R-METIS[window=7]",
        ] {
            assert!(report.offline(key, ShardCount::TWO).is_some(), "{key}");
        }
        assert!(report.offline("r-metis", ShardCount::TWO).is_none());
        assert!(report
            .offline("r-metis[window=8]", ShardCount::TWO)
            .is_none());
    }

    #[test]
    fn spill_backend_matches_in_memory_backend() {
        let registry = StrategyRegistry::with_builtins();
        let cfg = GeneratorConfig::test_scale(9).with_scale(0.01);
        let run = |backend: StorageBackend| {
            Experiment::from_generator(cfg.clone())
                .named_strategies(&registry, "hash,ldg")
                .unwrap()
                .shard_counts(vec![ShardCount::TWO])
                .seed(7)
                .storage(backend)
                .run()
        };
        let resident = run(StorageBackend::InMemory);
        let spill_root = std::env::temp_dir().join("blockpart-core-test-spill");
        let spilled = run(StorageBackend::spill(&spill_root, 64 * 1024));
        assert_eq!(resident.to_json(), spilled.to_json());
        // the spill session cleaned up after itself
        let leftovers = std::fs::read_dir(&spill_root)
            .map(|d| d.count())
            .unwrap_or(0);
        assert_eq!(leftovers, 0, "spill session not removed");
        std::fs::remove_dir_all(&spill_root).ok();
    }

    #[test]
    fn spooled_replay_matches_resident_replay() {
        let chain = ChainGenerator::new(GeneratorConfig::test_scale(5)).generate();
        let registry = StrategyRegistry::with_builtins();
        let run = |backend: StorageBackend| {
            Experiment::over_chain(&chain)
                .named_strategies(&registry, "hash")
                .unwrap()
                .shard_counts(vec![ShardCount::TWO])
                .replay(true)
                .storage(backend)
                .run()
        };
        let resident = run(StorageBackend::InMemory);
        let spill_root = std::env::temp_dir().join("blockpart-core-test-spool");
        let spooled = run(StorageBackend::spill(&spill_root, 1 << 20));
        assert_eq!(resident.to_json(), spooled.to_json());
        std::fs::remove_dir_all(&spill_root).ok();
    }

    #[test]
    #[should_panic(expected = "replay requires a chain")]
    fn replay_needs_a_chain() {
        let log = log();
        let _ = Experiment::over_log(&log).replay(true).run();
    }

    #[test]
    #[should_panic(expected = "live stage requires a chain")]
    fn live_needs_a_chain() {
        let log = log();
        let _ = Experiment::over_log(&log).live(true).run();
    }

    #[test]
    fn live_stage_measures_migrations() {
        let chain = ChainGenerator::new(GeneratorConfig::test_scale(5)).generate();
        let registry = StrategyRegistry::with_builtins();
        // a 2-day cadence fires inside the 5-day toy chain; hash never
        // stages a move
        let report = Experiment::over_chain(&chain)
            .named_strategies(&registry, "hash,metis[interval=2]")
            .unwrap()
            .shard_counts(vec![ShardCount::TWO])
            .live(true)
            .run();
        let hash = report.live("hash", ShardCount::TWO).expect("live ran");
        assert_eq!(hash.migrations(), 0);
        let metis = report
            .live("metis[interval=2]", ShardCount::TWO)
            .expect("live ran");
        assert!(metis.migrations() >= 1, "{}", metis.headline());
        assert!(metis.accounts_moved() > 0);
        assert_eq!(report.live_table().len(), 2);
        assert!(report.to_json().contains("\"blockpart.live/1\""));
    }

    #[test]
    fn default_covers_paper_grid() {
        let log = log();
        let e = Experiment::over_log(&log);
        assert!(e.strategies.is_none(), "defaults resolve lazily");
        assert_eq!(e.shard_counts.len(), 3);
        assert_eq!(default_strategies().len(), 5);
        // .strategy() on an unconfigured experiment extends the five
        let e = e.strategy(default_strategies().remove(0).0);
        assert_eq!(e.strategies.as_ref().map(Vec::len), Some(6));
    }

    #[test]
    fn alias_spellings_find_their_runs() {
        let log = log();
        let registry = StrategyRegistry::with_builtins();
        let report = Experiment::over_log(&log)
            .named_strategies(&registry, "p-metis")
            .unwrap()
            .shard_counts(vec![ShardCount::TWO])
            .run();
        assert_eq!(report.runs[0].strategy, "R-METIS");
        // both the requested alias and the display name resolve
        assert!(report.offline("p-metis", ShardCount::TWO).is_some());
        assert!(report.offline("r-metis", ShardCount::TWO).is_some());
    }

    #[test]
    fn scenario_workloads_report_their_name() {
        let registry = StrategyRegistry::with_builtins();
        let scenarios = ScenarioRegistry::with_builtins();
        let cfg = GeneratorConfig::test_scale(5).with_scale(0.005);
        let report = Experiment::from_generator(cfg)
            .named_scenario(&scenarios, "hub-burst[contracts=2]")
            .unwrap()
            .named_strategies(&registry, "hash")
            .unwrap()
            .shard_counts(vec![ShardCount::TWO])
            .run();
        assert_eq!(report.scenario.as_deref(), Some("hub-burst[contracts=2]"));
        assert!(report
            .to_json()
            .contains("\"scenario\":\"hub-burst[contracts=2]\""));
        // without a scenario the field is absent
        let plain = Experiment::over_log(&log())
            .named_strategies(&registry, "hash")
            .unwrap()
            .shard_counts(vec![ShardCount::TWO])
            .run();
        assert_eq!(plain.scenario, None);
        assert!(!plain.to_json().contains("\"scenario\""));
    }

    #[test]
    #[should_panic(expected = "scenario requires a generator workload")]
    fn scenario_needs_a_generator() {
        let chain = ChainGenerator::new(GeneratorConfig::test_scale(5)).generate();
        let scenarios = ScenarioRegistry::with_builtins();
        let _ = Experiment::over_chain(&chain)
            .named_scenario(&scenarios, "friendly")
            .unwrap()
            .run();
    }

    #[test]
    #[should_panic(expected = "empty strategy list")]
    fn empty_strategies_panic_instead_of_running_nothing() {
        let log = log();
        let _ = Experiment::over_log(&log).strategies(Vec::new()).run();
    }

    #[test]
    #[should_panic(expected = "empty shard-count list")]
    fn empty_shard_counts_panic_instead_of_running_nothing() {
        let log = log();
        let _ = Experiment::over_log(&log).shard_counts(Vec::new()).run();
    }
}
