//! The live repartitioning service: an online loop around the engine.
//!
//! The offline pipeline answers "which partitioning method is best" by
//! replaying a finished chain. This crate runs the same machinery as a
//! *long-running system*: blocks stream into a windowed, decaying
//! interaction graph ([`WindowedGraph`]); a [`RepartitionPolicy`] watches
//! the newest window's dynamic edge-cut and balance; when it fires, the
//! partitioner re-partitions the reduced graph in the background and the
//! resulting assignment delta is executed as an actual state migration
//! through the 2PC runtime ([`LiveSession`]) — locks held, bytes shipped,
//! installs occupying execution units — while the foreground transaction
//! stream keeps flowing. The [`MigrationReport`] records what that cost:
//! accounts and bytes moved, migration wall-clock, and the foreground's
//! throughput and latency before, during and after each migration.
//!
//! The paper measures repartitioning by vertices moved and leaves the
//! price of *moving* them to future work (§VI: "how to checkpoint the
//! state of an account on a blockchain and restore it on a different
//! blockchain"); this service makes that price a first-class measurement.
//!
//! # Examples
//!
//! ```
//! use blockpart_ethereum::World;
//! use blockpart_live::{LiveConfig, LiveRunner};
//! use blockpart_partition::HashPartitioner;
//! use blockpart_types::ShardCount;
//!
//! let mut runner = LiveRunner::new(
//!     LiveConfig::new(ShardCount::TWO),
//!     Box::new(HashPartitioner::new()),
//! );
//! let run = runner.run(&World::new(), &[]);
//! assert_eq!(run.report.migrations(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use blockpart_ethereum::{ExecutedTx, World};
use blockpart_graph::Interaction;
use blockpart_metrics::{Json, Table};
use blockpart_partition::{Partition, PartitionRequest, Partitioner};
use blockpart_runtime::{
    Assignment, LiveSession, MigrationConfig, MigrationStats, RuntimeConfig, SegmentReport,
};
use blockpart_shard::{RepartitionPolicy, WindowedGraph};
use blockpart_types::{Duration, ShardCount, Timestamp};
use serde::{Deserialize, Serialize};

/// Configuration of the live loop: measurement window, graph retention,
/// trigger policy, and the engine/migration tuning underneath.
///
/// # Examples
///
/// ```
/// use blockpart_live::LiveConfig;
/// use blockpart_types::{Duration, ShardCount};
///
/// let cfg = LiveConfig::new(ShardCount::TWO).with_window(Duration::hours(1));
/// assert_eq!(cfg.window, Duration::hours(1));
/// assert_eq!(cfg.depth, 7);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LiveConfig {
    /// Number of shards.
    pub k: ShardCount,
    /// Measurement/segment window length (the paper's 4-hour windows).
    pub window: Duration,
    /// Windows retained in the decaying reduced graph (R-METIS
    /// `window=7` semantics: the newest window weighs `depth×`).
    pub depth: usize,
    /// When to re-run the partitioner. The default threshold trigger is
    /// the TR-METIS setting with a one-day refractory period — a live
    /// service reacts in hours, not the offline study's fortnights.
    pub policy: RepartitionPolicy,
    /// Engine tuning for the 2PC replay of each segment.
    pub runtime: RuntimeConfig,
    /// Batching and pacing of migration traffic.
    pub migration: MigrationConfig,
    /// Collect the full virtual-clock trace (retrieve it via
    /// [`LiveRun::session`] and [`LiveSession::finish`]).
    pub traced: bool,
    /// Report label; the partitioner's method name when absent.
    pub label: Option<String>,
}

impl LiveConfig {
    /// The default live configuration at `k` shards: 4-hour windows,
    /// depth 7, TR-METIS thresholds with a one-day refractory period.
    pub fn new(k: ShardCount) -> Self {
        LiveConfig {
            k,
            window: Duration::hours(4),
            depth: 7,
            policy: RepartitionPolicy::Threshold {
                edge_cut: 0.5,
                balance: 2.0,
                min_interval: Duration::days(1),
            },
            runtime: RuntimeConfig::new(k),
            migration: MigrationConfig::default(),
            traced: false,
            label: None,
        }
    }

    /// Overrides the window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_window(mut self, window: Duration) -> Self {
        assert!(!window.is_zero(), "window must be non-zero");
        self.window = window;
        self
    }

    /// Overrides the graph retention depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "depth must be non-zero");
        self.depth = depth;
        self
    }

    /// Overrides the repartition trigger policy.
    pub fn with_policy(mut self, policy: RepartitionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the engine tuning.
    ///
    /// # Panics
    ///
    /// Panics if `runtime` spans a different shard count than the live
    /// configuration.
    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> Self {
        assert_eq!(runtime.k, self.k, "shard counts disagree");
        self.runtime = runtime;
        self
    }

    /// Overrides migration batching/pacing.
    pub fn with_migration(mut self, migration: MigrationConfig) -> Self {
        self.migration = migration;
        self
    }

    /// Enables or disables full tracing.
    pub fn with_tracing(mut self, traced: bool) -> Self {
        self.traced = traced;
        self
    }

    /// Overrides the report's strategy label (e.g. the resolved spec
    /// name `TR-METIS` instead of the bare partitioner name `metis`).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }
}

/// One measurement window of a live run: the foreground's cost plus the
/// trigger inputs measured at the window's close.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LiveWindow {
    /// Window start (block time).
    pub start: Timestamp,
    /// Foreground transactions offered.
    pub txs: usize,
    /// Foreground transactions committed.
    pub committed: u64,
    /// Foreground transactions dropped after exhausting retries.
    pub failed: u64,
    /// Foreground transactions whose footprint spanned shards.
    pub cross_shard_txs: usize,
    /// Foreground 2PC rounds aborted.
    pub aborted_rounds: u64,
    /// Foreground commits per virtual second.
    pub throughput_tps: f64,
    /// Median foreground commit latency (virtual µs).
    pub p50_us: u64,
    /// Tail foreground commit latency (virtual µs).
    pub p99_us: u64,
    /// Dynamic edge-cut of this window's traffic at its close.
    pub window_cut: f64,
    /// Activity balance of this window's traffic at its close.
    pub window_balance: f64,
    /// Accounts staged to move at this window's close (the migration
    /// itself executes during the *next* window).
    pub staged_moves: u64,
    /// Migration cost, when a staged rebalance executed in this window.
    pub migration: Option<MigrationStats>,
}

impl LiveWindow {
    fn from_segment(start: Timestamp, seg: &SegmentReport) -> Self {
        LiveWindow {
            start,
            txs: seg.txs,
            committed: seg.committed,
            failed: seg.failed,
            cross_shard_txs: seg.cross_shard_txs,
            aborted_rounds: seg.aborted_rounds,
            throughput_tps: seg.throughput_tps,
            p50_us: seg.p50_commit_latency_us,
            p99_us: seg.p99_commit_latency_us,
            window_cut: 0.0,
            window_balance: 1.0,
            staged_moves: 0,
            migration: seg.migration.clone(),
        }
    }

    fn phase(&self) -> Phase {
        Phase {
            throughput_tps: self.throughput_tps,
            p50_us: self.p50_us,
            p99_us: self.p99_us,
        }
    }
}

/// A foreground performance snapshot (one window's throughput and
/// latency), used for before/during/after comparisons.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Foreground commits per virtual second.
    pub throughput_tps: f64,
    /// Median foreground commit latency (virtual µs).
    pub p50_us: u64,
    /// Tail foreground commit latency (virtual µs).
    pub p99_us: u64,
}

/// One executed migration with the foreground's performance in the
/// windows around it.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MigrationEpisode {
    /// Start of the window during which the migration executed.
    pub window: Timestamp,
    /// What the migration cost inside the engine.
    pub stats: MigrationStats,
    /// The window before the migration (absent when the run began with
    /// one).
    pub before: Option<Phase>,
    /// The window the migration executed in.
    pub during: Phase,
    /// The window after the migration (absent when the run ended on one).
    pub after: Option<Phase>,
}

/// The measured outcome of a live run. See the [module docs](self).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MigrationReport {
    /// The partitioner's method name.
    pub strategy: String,
    /// Number of shards.
    pub k: u16,
    /// Per-window measurements, in time order.
    pub windows: Vec<LiveWindow>,
    /// One entry per executed migration, in time order.
    pub episodes: Vec<MigrationEpisode>,
}

impl MigrationReport {
    fn new(strategy: String, k: ShardCount, windows: Vec<LiveWindow>) -> Self {
        let episodes = windows
            .iter()
            .enumerate()
            .filter_map(|(i, w)| {
                w.migration.as_ref().map(|stats| MigrationEpisode {
                    window: w.start,
                    stats: stats.clone(),
                    before: i.checked_sub(1).map(|p| windows[p].phase()),
                    during: w.phase(),
                    after: windows.get(i + 1).map(LiveWindow::phase),
                })
            })
            .collect();
        MigrationReport {
            strategy,
            k: k.get(),
            windows,
            episodes,
        }
    }

    /// How many migrations executed.
    pub fn migrations(&self) -> usize {
        self.episodes.len()
    }

    /// Total foreground transactions committed.
    pub fn total_committed(&self) -> u64 {
        self.windows.iter().map(|w| w.committed).sum()
    }

    /// Total foreground transactions dropped.
    pub fn total_failed(&self) -> u64 {
        self.windows.iter().map(|w| w.failed).sum()
    }

    /// Total accounts whose owning shard changed.
    pub fn accounts_moved(&self) -> u64 {
        self.episodes.iter().map(|e| e.stats.accounts).sum()
    }

    /// Total state bytes shipped between shards.
    pub fn bytes_moved(&self) -> u64 {
        self.episodes.iter().map(|e| e.stats.bytes).sum()
    }

    /// Summed migration wall-clock (virtual µs, barrier to last ack).
    pub fn migration_wall_us(&self) -> u64 {
        self.episodes.iter().map(|e| e.stats.wall_us).sum()
    }

    /// The worst during-migration tail latency across episodes.
    pub fn worst_during_p99_us(&self) -> u64 {
        self.episodes
            .iter()
            .map(|e| e.during.p99_us)
            .max()
            .unwrap_or(0)
    }

    /// A one-line summary of the run.
    pub fn headline(&self) -> String {
        format!(
            "LIVE {} k={}: {} windows, {} committed ({} failed), {} migrations \
             moving {} accounts / {} bytes in {:.1} ms, worst during-migration p99 {} µs",
            self.strategy,
            self.k,
            self.windows.len(),
            self.total_committed(),
            self.total_failed(),
            self.migrations(),
            self.accounts_moved(),
            self.bytes_moved(),
            self.migration_wall_us() as f64 / 1e3,
            self.worst_during_p99_us(),
        )
    }

    /// The per-window measurement table.
    pub fn window_table(&self) -> Table {
        let mut t = Table::new(vec![
            "window",
            "txs",
            "committed",
            "cross",
            "aborts",
            "tps",
            "p50_us",
            "p99_us",
            "cut",
            "balance",
            "staged",
            "moved",
            "mig_bytes",
        ]);
        for w in &self.windows {
            t.row(vec![
                format!("{}h", w.start.as_secs() / 3_600),
                w.txs.to_string(),
                w.committed.to_string(),
                w.cross_shard_txs.to_string(),
                w.aborted_rounds.to_string(),
                format!("{:.0}", w.throughput_tps),
                w.p50_us.to_string(),
                w.p99_us.to_string(),
                format!("{:.3}", w.window_cut),
                format!("{:.3}", w.window_balance),
                w.staged_moves.to_string(),
                w.migration
                    .as_ref()
                    .map_or_else(|| "-".into(), |m| m.accounts.to_string()),
                w.migration
                    .as_ref()
                    .map_or_else(|| "-".into(), |m| m.bytes.to_string()),
            ]);
        }
        t
    }

    /// The per-migration before/during/after table.
    pub fn episode_table(&self) -> Table {
        let mut t = Table::new(vec![
            "window",
            "accounts",
            "bytes",
            "batches",
            "wall_ms",
            "tps before",
            "tps during",
            "tps after",
            "p99 before",
            "p99 during",
            "p99 after",
        ]);
        let tps = |p: &Option<Phase>| {
            p.map_or_else(|| "-".into(), |p| format!("{:.0}", p.throughput_tps))
        };
        let p99 = |p: &Option<Phase>| p.map_or_else(|| "-".into(), |p| p.p99_us.to_string());
        for e in &self.episodes {
            t.row(vec![
                format!("{}h", e.window.as_secs() / 3_600),
                e.stats.accounts.to_string(),
                e.stats.bytes.to_string(),
                e.stats.batches.to_string(),
                format!("{:.1}", e.stats.wall_us as f64 / 1e3),
                tps(&e.before),
                format!("{:.0}", e.during.throughput_tps),
                tps(&e.after),
                p99(&e.before),
                e.during.p99_us.to_string(),
                p99(&e.after),
            ]);
        }
        t
    }

    /// The machine-readable form of the report.
    pub fn json(&self) -> Json {
        let phase = |p: &Phase| {
            Json::obj([
                ("tps", Json::from(p.throughput_tps)),
                ("p50_us", Json::from(p.p50_us)),
                ("p99_us", Json::from(p.p99_us)),
            ])
        };
        let opt_phase = |p: &Option<Phase>| p.as_ref().map_or(Json::Null, &phase);
        Json::obj([
            ("schema", Json::from("blockpart.live/1")),
            ("strategy", Json::from(self.strategy.as_str())),
            ("k", Json::from(u64::from(self.k))),
            (
                "windows",
                Json::arr(self.windows.iter().map(|w| {
                    Json::obj([
                        ("start_s", Json::from(w.start.as_secs())),
                        ("txs", Json::from(w.txs as u64)),
                        ("committed", Json::from(w.committed)),
                        ("failed", Json::from(w.failed)),
                        ("cross_shard_txs", Json::from(w.cross_shard_txs as u64)),
                        ("aborted_rounds", Json::from(w.aborted_rounds)),
                        ("tps", Json::from(w.throughput_tps)),
                        ("p50_us", Json::from(w.p50_us)),
                        ("p99_us", Json::from(w.p99_us)),
                        ("cut", Json::from(w.window_cut)),
                        ("balance", Json::from(w.window_balance)),
                        ("staged_moves", Json::from(w.staged_moves)),
                        (
                            "migration",
                            w.migration.as_ref().map_or(Json::Null, |m| {
                                Json::obj([
                                    ("batches", Json::from(m.batches)),
                                    ("accounts", Json::from(m.accounts)),
                                    ("bytes", Json::from(m.bytes)),
                                    ("wall_us", Json::from(m.wall_us)),
                                ])
                            }),
                        ),
                    ])
                })),
            ),
            (
                "episodes",
                Json::arr(self.episodes.iter().map(|e| {
                    Json::obj([
                        ("window_s", Json::from(e.window.as_secs())),
                        ("accounts", Json::from(e.stats.accounts)),
                        ("bytes", Json::from(e.stats.bytes)),
                        ("batches", Json::from(e.stats.batches)),
                        ("wall_us", Json::from(e.stats.wall_us)),
                        ("before", opt_phase(&e.before)),
                        ("during", phase(&e.during)),
                        ("after", opt_phase(&e.after)),
                    ])
                })),
            ),
            (
                "totals",
                Json::obj([
                    ("committed", Json::from(self.total_committed())),
                    ("failed", Json::from(self.total_failed())),
                    ("migrations", Json::from(self.migrations() as u64)),
                    ("accounts_moved", Json::from(self.accounts_moved())),
                    ("bytes_moved", Json::from(self.bytes_moved())),
                    ("migration_wall_us", Json::from(self.migration_wall_us())),
                    (
                        "worst_during_p99_us",
                        Json::from(self.worst_during_p99_us()),
                    ),
                ]),
            ),
        ])
    }
}

/// A finished live run: the report plus the still-open session, for
/// state-conservation checks ([`LiveSession::resident_addresses`]) and
/// trace retrieval ([`LiveSession::finish`]).
pub struct LiveRun {
    /// The measured outcome.
    pub report: MigrationReport,
    /// The session the run drove, with its final per-shard worlds.
    pub session: LiveSession,
}

/// The online repartitioning loop: stream in, windowed graph, trigger,
/// background re-partition, live migration. See the [module docs](self).
pub struct LiveRunner {
    cfg: LiveConfig,
    partitioner: Box<dyn Partitioner>,
}

impl LiveRunner {
    /// Creates a runner driving `partitioner` under `cfg`.
    pub fn new(cfg: LiveConfig, partitioner: Box<dyn Partitioner>) -> Self {
        LiveRunner { cfg, partitioner }
    }

    /// Runs `stream` (time-sorted executed transactions) against shard
    /// slices of `world`, starting from hash placement.
    ///
    /// Each block-time window becomes one engine segment. At a window's
    /// close the decayed reduced graph's metrics feed the trigger
    /// policy; a due re-partition is staged and executes as a live
    /// migration at the next segment's epoch barrier. A migration
    /// staged by the final window drains in one extra empty segment so
    /// every staged move is executed and measured.
    ///
    /// # Panics
    ///
    /// Panics if `stream` is not sorted by `time`.
    pub fn run(&mut self, world: &World, stream: &[ExecutedTx]) -> LiveRun {
        assert!(
            stream.windows(2).all(|w| w[0].time <= w[1].time),
            "stream must be time-sorted"
        );
        let k = self.cfg.k;
        let mut session = if self.cfg.traced {
            LiveSession::new_traced(self.cfg.runtime.clone(), Assignment::hashed(k), world)
        } else {
            LiveSession::new(self.cfg.runtime.clone(), Assignment::hashed(k), world)
        };
        let mut graph = WindowedGraph::new(self.cfg.window, self.cfg.depth);
        let mut last_repart = Timestamp::EPOCH;
        let mut windows: Vec<LiveWindow> = Vec::new();

        let mut rest = stream;
        while let Some(first) = rest.first() {
            let start = first.time.align_down(self.cfg.window);
            let close = start + self.cfg.window;
            let len = rest.partition_point(|e| e.time < close);
            let (group, tail) = rest.split_at(len);
            rest = tail;

            // one window = one segment; a migration staged at the
            // previous close executes at this segment's barrier
            let seg = session.run_segment(group, &self.cfg.migration);
            let mut window = LiveWindow::from_segment(start, &seg);

            for e in group {
                graph.record(Interaction::new(e.time, e.tx.from, e.tx.to));
            }
            graph.expire(start);
            let assignment = session.assignment();
            let (cut, balance) = graph.newest_window_metrics(k, |a| assignment.shard_of(a));
            window.window_cut = cut;
            window.window_balance = balance;

            if self.cfg.policy.due(close, last_repart, cut, balance) && !session.migration_pending()
            {
                if let Some(next) = self.repartition(&graph, &session) {
                    window.staged_moves = session.stage_rebalance(next);
                    last_repart = close;
                }
            }
            windows.push(window);
        }

        // drain: execute a migration staged by the final window
        if session.migration_pending() {
            let start = windows.last().map_or(Timestamp::EPOCH, |w| w.start) + self.cfg.window;
            let seg = session.run_segment(&[], &self.cfg.migration);
            let mut window = LiveWindow::from_segment(start, &seg);
            let assignment = session.assignment();
            let (cut, balance) = graph.newest_window_metrics(k, |a| assignment.shard_of(a));
            window.window_cut = cut;
            window.window_balance = balance;
            windows.push(window);
        }

        let label = self
            .cfg
            .label
            .clone()
            .unwrap_or_else(|| self.partitioner.name().to_string());
        LiveRun {
            report: MigrationReport::new(label, k, windows),
            session,
        }
    }

    /// Re-partitions the decayed reduced graph and overlays the result
    /// onto the session's current routing. Returns `None` when the
    /// buffer holds no events.
    fn repartition(&mut self, graph: &WindowedGraph, session: &LiveSession) -> Option<Assignment> {
        let (csr, order, ids) = graph.build()?;
        let previous: Vec<u16> = order
            .iter()
            .map(|&a| session.assignment().shard_of(a).as_u16())
            .collect();
        let previous = Partition::from_assignment(previous, self.cfg.k).expect("shards in range");
        let req = PartitionRequest::new(&csr, self.cfg.k)
            .with_stable_ids(&ids)
            .with_previous(&previous);
        let partition = self.partitioner.partition(&req);
        let mut map: HashMap<_, _> = session.assignment().mapped().collect();
        for (v, &address) in order.iter().enumerate() {
            map.insert(address, partition.shard_of(v));
        }
        Some(Assignment::from_map(map, self.cfg.k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpart_ethereum::{Receipt, Transaction, TxPayload, TxStatus};
    use blockpart_partition::{MultilevelConfig, MultilevelPartitioner};
    use blockpart_types::{Address, Gas, Wei};

    fn transfer(from: Address, to: Address, secs: u64) -> ExecutedTx {
        let tx = Transaction {
            from,
            to,
            value: Wei::new(1),
            gas_limit: Gas::new(30_000),
            payload: TxPayload::Transfer,
        };
        let receipt = Receipt {
            status: TxStatus::Success,
            gas_used: Gas::new(21_000),
            calls: Vec::new(),
            created: Vec::new(),
        };
        ExecutedTx::new(Timestamp::from_secs(secs), tx, &receipt)
    }

    /// Two four-user communities transacting internally for `hours`
    /// hours: hash placement scatters them, so the window cut trips the
    /// threshold trigger and the partitioner pulls each community onto
    /// one shard.
    fn community_stream(world: &mut World, hours: u64) -> (Vec<Address>, Vec<ExecutedTx>) {
        let users: Vec<Address> = (0..8).map(|_| world.new_user(Wei::new(10_000))).collect();
        let mut stream = Vec::new();
        for h in 0..hours {
            for m in 0..12 {
                let t = h * 3_600 + m * 300;
                let i = (h + m) as usize;
                // community A = users 0..4, community B = users 4..8
                stream.push(transfer(users[i % 4], users[(i + 1) % 4], t));
                stream.push(transfer(users[4 + i % 4], users[4 + (i + 1) % 4], t + 60));
            }
        }
        (users, stream)
    }

    fn test_config() -> LiveConfig {
        LiveConfig::new(ShardCount::TWO)
            .with_window(Duration::hours(1))
            .with_depth(4)
            .with_policy(RepartitionPolicy::Threshold {
                edge_cut: 0.3,
                balance: 2.5,
                min_interval: Duration::hours(1),
            })
    }

    fn metis(seed: u64) -> Box<dyn Partitioner> {
        Box::new(MultilevelPartitioner::new(MultilevelConfig {
            seed,
            ..MultilevelConfig::default()
        }))
    }

    #[test]
    fn trigger_fires_and_migration_executes() {
        let mut world = World::new();
        let (_, stream) = community_stream(&mut world, 6);
        let mut runner = LiveRunner::new(test_config(), metis(7));
        let run = runner.run(&world, &stream);
        let report = &run.report;
        assert!(report.migrations() >= 1, "{}", report.headline());
        assert!(report.accounts_moved() > 0);
        assert!(report.bytes_moved() > 0);
        assert!(report.migration_wall_us() > 0);
        assert_eq!(report.total_committed(), stream.len() as u64);
        assert_eq!(report.total_failed(), 0);
        // conservation: every account holds state on exactly one shard
        let resident = run.session.resident_addresses();
        assert_eq!(resident.len(), 8);
        // the re-partition actually reduced the window cut
        let last = report.windows.last().unwrap();
        let first = report.windows.first().unwrap();
        assert!(
            last.window_cut < first.window_cut,
            "cut {} → {}",
            first.window_cut,
            last.window_cut
        );
    }

    #[test]
    fn never_policy_never_migrates() {
        let mut world = World::new();
        let (_, stream) = community_stream(&mut world, 3);
        let cfg = test_config().with_policy(RepartitionPolicy::Never);
        let mut runner = LiveRunner::new(cfg, metis(7));
        let run = runner.run(&world, &stream);
        assert_eq!(run.report.migrations(), 0);
        assert!(run.report.windows.iter().all(|w| w.staged_moves == 0));
        assert_eq!(run.report.total_committed(), stream.len() as u64);
    }

    #[test]
    fn report_renders_tables_and_json() {
        let mut world = World::new();
        let (_, stream) = community_stream(&mut world, 6);
        let mut runner = LiveRunner::new(test_config(), metis(7));
        let report = runner.run(&world, &stream).report;
        assert_eq!(report.window_table().len(), report.windows.len());
        assert_eq!(report.episode_table().len(), report.episodes.len());
        assert!(report.headline().contains("LIVE"));
        let json = report.json().render();
        assert!(json.contains("\"blockpart.live/1\""));
        assert!(json.contains("\"episodes\""));
        // every episode has a before window (run never starts migrating)
        assert!(report.episodes.iter().all(|e| e.before.is_some()));
    }

    #[test]
    fn report_is_identical_across_worker_counts() {
        let mut world = World::new();
        let (_, stream) = community_stream(&mut world, 6);
        let mut reports = Vec::new();
        for threshold in [usize::MAX, 0] {
            let cfg = test_config()
                .with_runtime(
                    RuntimeConfig::new(ShardCount::TWO).with_parallel_batch_threshold(threshold),
                )
                .with_tracing(true);
            let mut runner = LiveRunner::new(cfg, metis(7));
            let run = runner.run(&world, &stream);
            let resident = run.session.resident_addresses();
            reports.push((run.report.json().render(), resident));
        }
        assert_eq!(reports[0], reports[1], "serial vs parallel drive");
    }
}
