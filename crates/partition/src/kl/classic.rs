//! The classic Kernighan–Lin bisection heuristic (Bell System Technical
//! Journal, 1970).

use blockpart_graph::Csr;

use crate::partition::Partition;

/// Runs one Kernighan–Lin improvement pass over a bisection.
///
/// The pass greedily picks vertex *pairs* (one from each side) whose swap
/// maximizes the cut reduction, tentatively swaps and locks them, and at
/// the end commits the prefix of swaps with the best cumulative gain.
/// Returns the total gain committed (0 when the pass found no improving
/// prefix). Swapping pairs preserves the side sizes exactly, which is the
/// hallmark of KL (as opposed to FM's single-vertex moves).
///
/// This is `O(p · n²)` for `p` committed pairs and meant for modest graphs
/// (the coarsest level of a multilevel scheme, tests, ablations).
///
/// # Panics
///
/// Panics if `partition` is not a bisection (`k != 2`) or its length does
/// not match `csr`.
///
/// # Examples
///
/// ```
/// use blockpart_graph::Csr;
/// use blockpart_partition::kl::kl_bisection_pass;
/// use blockpart_partition::Partition;
/// use blockpart_types::ShardCount;
///
/// // Two cliques bridged by one edge, but started with a bad split.
/// let csr = Csr::from_edges(
///     4,
///     &[(0, 1, 5), (2, 3, 5), (1, 2, 1)],
/// );
/// let mut p = Partition::from_assignment(vec![0, 1, 0, 1], ShardCount::TWO).unwrap();
/// let gain = kl_bisection_pass(&csr, &mut p);
/// assert!(gain > 0);
/// assert_eq!(p.shard_of(0), p.shard_of(1));
/// assert_eq!(p.shard_of(2), p.shard_of(3));
/// ```
pub fn kl_bisection_pass(csr: &Csr, partition: &mut Partition) -> i64 {
    assert_eq!(partition.shard_count().get(), 2, "KL requires a bisection");
    assert_eq!(
        partition.len(),
        csr.node_count(),
        "partition length mismatch"
    );
    let n = csr.node_count();
    if n < 2 {
        return 0;
    }

    // side[v] in {0,1}; D[v] = external - internal connection weight.
    let mut side: Vec<u8> = partition.as_slice().iter().map(|&s| s as u8).collect();
    let mut d = compute_d(csr, &side);
    let mut locked = vec![false; n];

    // Tentative swap sequence with cumulative gains.
    let mut swaps: Vec<(usize, usize)> = Vec::new();
    let mut gains: Vec<i64> = Vec::new();
    let max_pairs = n / 2;

    for _ in 0..max_pairs {
        // Find the unlocked pair (a on side 0, b on side 1) maximizing
        // D[a] + D[b] - 2 w(a,b).
        let mut best: Option<(usize, usize, i64)> = None;
        for a in 0..n {
            if locked[a] || side[a] != 0 {
                continue;
            }
            for b in 0..n {
                if locked[b] || side[b] != 1 {
                    continue;
                }
                let w_ab = edge_weight(csr, a, b);
                let gain = d[a] + d[b] - 2 * w_ab as i64;
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((a, b, gain));
                }
            }
        }
        let Some((a, b, gain)) = best else { break };
        swaps.push((a, b));
        gains.push(gain);
        locked[a] = true;
        locked[b] = true;
        // Tentatively swap sides and update D for unlocked vertices.
        side[a] = 1;
        side[b] = 0;
        update_d_after_swap(csr, &mut d, &side, &locked, a, b);
    }

    // Best prefix.
    let mut best_prefix = 0usize;
    let mut best_total = 0i64;
    let mut running = 0i64;
    for (i, &g) in gains.iter().enumerate() {
        running += g;
        if running > best_total {
            best_total = running;
            best_prefix = i + 1;
        }
    }
    if best_total <= 0 {
        return 0;
    }
    // Commit: apply only the best prefix of swaps to the real partition.
    for &(a, b) in &swaps[..best_prefix] {
        let sa = partition.shard_of(a);
        let sb = partition.shard_of(b);
        partition.assign(a, sb);
        partition.assign(b, sa);
    }
    best_total
}

/// Repeats [`kl_bisection_pass`] until a pass yields no gain, returning the
/// total gain. `max_passes` bounds the work.
///
/// # Panics
///
/// Panics under the same conditions as [`kl_bisection_pass`].
pub fn refine_bisection(csr: &Csr, partition: &mut Partition, max_passes: usize) -> i64 {
    let mut total = 0;
    for _ in 0..max_passes {
        let gain = kl_bisection_pass(csr, partition);
        if gain == 0 {
            break;
        }
        total += gain;
    }
    total
}

fn compute_d(csr: &Csr, side: &[u8]) -> Vec<i64> {
    (0..csr.node_count())
        .map(|v| {
            let mut external = 0i64;
            let mut internal = 0i64;
            for (u, w) in csr.neighbors(v) {
                if side[u as usize] == side[v] {
                    internal += w as i64;
                } else {
                    external += w as i64;
                }
            }
            external - internal
        })
        .collect()
}

fn update_d_after_swap(csr: &Csr, d: &mut [i64], side: &[u8], locked: &[bool], a: usize, b: usize) {
    // After a and b switched sides, recompute D for their unlocked
    // neighbours from scratch (cheap relative to the pair search).
    for v in csr
        .neighbors(a)
        .chain(csr.neighbors(b))
        .map(|(u, _)| u as usize)
    {
        if !locked[v] {
            let mut external = 0i64;
            let mut internal = 0i64;
            for (u, w) in csr.neighbors(v) {
                if side[u as usize] == side[v] {
                    internal += w as i64;
                } else {
                    external += w as i64;
                }
            }
            d[v] = external - internal;
        }
    }
}

fn edge_weight(csr: &Csr, a: usize, b: usize) -> u64 {
    csr.neighbors(a)
        .find(|&(u, _)| u as usize == b)
        .map_or(0, |(_, w)| w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CutMetrics;
    use blockpart_types::ShardCount;

    fn two_cliques() -> Csr {
        // cliques {0,1,2} and {3,4,5}, one bridge 2-3
        Csr::from_edges(
            6,
            &[
                (0, 1, 4),
                (1, 2, 4),
                (0, 2, 4),
                (3, 4, 4),
                (4, 5, 4),
                (3, 5, 4),
                (2, 3, 1),
            ],
        )
    }

    #[test]
    fn recovers_natural_bisection_from_bad_start() {
        let csr = two_cliques();
        // interleaved (worst) start
        let mut p = Partition::from_assignment(vec![0, 1, 0, 1, 0, 1], ShardCount::TWO).unwrap();
        let before = CutMetrics::compute(&csr, &p).cut_weight;
        let gain = refine_bisection(&csr, &mut p, 10);
        let after = CutMetrics::compute(&csr, &p).cut_weight;
        assert_eq!(before - after, gain as u64);
        assert_eq!(after, 1); // only the bridge remains cut
    }

    #[test]
    fn preserves_side_sizes() {
        let csr = two_cliques();
        let mut p = Partition::from_assignment(vec![0, 1, 0, 1, 0, 1], ShardCount::TWO).unwrap();
        refine_bisection(&csr, &mut p, 10);
        assert_eq!(p.shard_sizes(), vec![3, 3]);
    }

    #[test]
    fn no_gain_on_optimal_partition() {
        let csr = two_cliques();
        let mut p = Partition::from_assignment(vec![0, 0, 0, 1, 1, 1], ShardCount::TWO).unwrap();
        assert_eq!(kl_bisection_pass(&csr, &mut p), 0);
        assert_eq!(
            p,
            Partition::from_assignment(vec![0, 0, 0, 1, 1, 1], ShardCount::TWO).unwrap()
        );
    }

    #[test]
    fn handles_tiny_graphs() {
        let csr = Csr::from_edges(1, &[]);
        let mut p = Partition::all_on_first(1, ShardCount::TWO);
        assert_eq!(kl_bisection_pass(&csr, &mut p), 0);
        let empty = Csr::from_edges(0, &[]);
        let mut pe = Partition::all_on_first(0, ShardCount::TWO);
        assert_eq!(kl_bisection_pass(&empty, &mut pe), 0);
    }

    #[test]
    #[should_panic(expected = "bisection")]
    fn rejects_kway() {
        let csr = Csr::from_edges(2, &[(0, 1, 1)]);
        let mut p = Partition::all_on_first(2, ShardCount::new(3).unwrap());
        let _ = kl_bisection_pass(&csr, &mut p);
    }

    #[test]
    fn gain_never_negative() {
        // a case where any single swap is bad: gain must be 0, partition kept
        let csr = Csr::from_edges(4, &[(0, 1, 10), (2, 3, 10)]);
        let mut p = Partition::from_assignment(vec![0, 0, 1, 1], ShardCount::TWO).unwrap();
        let before = p.clone();
        assert_eq!(kl_bisection_pass(&csr, &mut p), 0);
        assert_eq!(p, before);
    }
}
