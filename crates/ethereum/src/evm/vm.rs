//! The EVM-lite interpreter.

use blockpart_types::{AccountKind, Address, Gas, Timestamp, Wei};

use crate::evm::{GasSchedule, Op};
use crate::exec::VmState;
use crate::program::{ContractTemplate, Program};
use crate::transaction::{CallKind, CallRecord, Receipt, Transaction, TxPayload, TxStatus};

/// Maximum operand-stack depth.
pub const STACK_LIMIT: usize = 64;

/// Maximum nested call depth (transaction → contract → contract → …).
pub const CALL_DEPTH_LIMIT: usize = 4;

/// Errors raised while interpreting a program.
///
/// A contained error fails the *current frame* (a nested call returns 0 to
/// its caller, like the real EVM); only gas exhaustion propagates, because
/// gas is shared across frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmError {
    /// An instruction needed more stack items than were present.
    StackUnderflow,
    /// The operand stack exceeded [`STACK_LIMIT`].
    StackOverflow,
    /// The shared gas budget ran out.
    OutOfGas,
    /// A jump targeted an instruction index outside the program.
    BadJump,
    /// The program executed `REVERT`.
    Reverted,
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            VmError::StackUnderflow => "stack underflow",
            VmError::StackOverflow => "stack overflow",
            VmError::OutOfGas => "out of gas",
            VmError::BadJump => "jump target out of bounds",
            VmError::Reverted => "execution reverted",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for VmError {}

/// Per-transaction execution environment.
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::evm::{ExecContext, GasSchedule};
/// use blockpart_types::{Gas, Timestamp};
///
/// let ctx = ExecContext::new(Timestamp::from_secs(100), 7, Gas::new(500_000));
/// assert_eq!(ctx.gas_limit.get(), 500_000);
/// assert_eq!(ctx.schedule, GasSchedule::eip150());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ExecContext {
    /// The enclosing block's timestamp.
    pub time: Timestamp,
    /// Seed for the deterministic `RAND` opcode.
    pub entropy: u64,
    /// Gas budget for the whole transaction.
    pub gas_limit: Gas,
    /// Per-opcode prices in force (fork-dependent).
    pub schedule: GasSchedule,
}

impl ExecContext {
    /// Creates a context with the default (post-EIP-150) gas schedule.
    pub fn new(time: Timestamp, entropy: u64, gas_limit: Gas) -> Self {
        ExecContext {
            time,
            entropy,
            gas_limit,
            schedule: GasSchedule::default(),
        }
    }

    /// Overrides the gas schedule (for pre-fork eras).
    pub fn with_schedule(mut self, schedule: GasSchedule) -> Self {
        self.schedule = schedule;
        self
    }
}

/// The EVM-lite virtual machine. Stateless: all mutation happens on the
/// [`VmState`] passed to [`Vm::execute`] — a [`World`](crate::World)
/// directly, or a recording
/// [`OverlayView`](crate::exec::OverlayView) when executing
/// speculatively.
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::evm::{ExecContext, Vm};
/// use blockpart_ethereum::{ContractTemplate, Transaction, TxPayload, World};
/// use blockpart_types::{Gas, Timestamp, Wei};
///
/// let mut world = World::new();
/// let user = world.new_user(Wei::new(1_000_000));
/// let dest = world.new_user(Wei::ZERO);
/// let wallet = world.create_contract(ContractTemplate::Wallet, user, dest.index());
/// let tx = Transaction {
///     from: user,
///     to: wallet,
///     value: Wei::new(50),
///     gas_limit: Gas::new(100_000),
///     payload: TxPayload::Call { arg: dest.index() },
/// };
/// let ctx = ExecContext::new(Timestamp::from_secs(1), 3, tx.gas_limit);
/// let receipt = Vm::execute(&mut world, &tx, &ctx);
/// assert!(receipt.is_success());
/// // two edges: user -> wallet (transaction), wallet -> dest (transfer)
/// assert_eq!(receipt.calls.len(), 2);
/// assert_eq!(world.balance(dest), Wei::new(50));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Vm;

/// Mutable interpreter state shared across call frames.
struct ExecState {
    gas_used: u64,
    gas_limit: u64,
    time: Timestamp,
    rand_state: u64,
    schedule: GasSchedule,
    calls: Vec<CallRecord>,
    created: Vec<Address>,
}

impl ExecState {
    fn charge(&mut self, gas: Gas) -> Result<(), VmError> {
        self.gas_used += gas.get();
        if self.gas_used > self.gas_limit {
            self.gas_used = self.gas_limit;
            Err(VmError::OutOfGas)
        } else {
            Ok(())
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*: deterministic per-transaction entropy stream.
        let mut x = self.rand_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rand_state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

impl Vm {
    /// Executes `tx` against `world`, returning the receipt.
    ///
    /// The first call record is always the top-level transaction edge.
    /// Failed transactions keep their side effects up to the failure point
    /// (a simplification — the paper's graph counts interactions, not
    /// rollbacks) and consume gas.
    pub fn execute<S: VmState>(world: &mut S, tx: &Transaction, ctx: &ExecContext) -> Receipt {
        let mut state = ExecState {
            gas_used: 0,
            gas_limit: ctx.gas_limit.get(),
            time: ctx.time,
            rand_state: ctx.entropy | 1,
            schedule: ctx.schedule,
            calls: Vec::new(),
            created: Vec::new(),
        };
        world.bump_nonce(tx.from);
        if state.charge(Gas::new(ctx.schedule.tx_base)).is_err() {
            return Receipt {
                status: TxStatus::Failed,
                gas_used: Gas::new(state.gas_used),
                calls: Vec::new(),
                created: Vec::new(),
            };
        }

        let status = match tx.payload {
            TxPayload::Transfer => {
                state.calls.push(CallRecord {
                    from: tx.from,
                    to: tx.to,
                    from_kind: AccountKind::ExternallyOwned,
                    to_kind: world.kind(tx.to),
                    value: tx.value,
                    kind: CallKind::Transaction,
                });
                world.transfer(tx.from, tx.to, tx.value);
                TxStatus::Success
            }
            TxPayload::Call { arg } => {
                state.calls.push(CallRecord {
                    from: tx.from,
                    to: tx.to,
                    from_kind: AccountKind::ExternallyOwned,
                    to_kind: world.kind(tx.to),
                    value: tx.value,
                    kind: CallKind::Transaction,
                });
                world.transfer(tx.from, tx.to, tx.value);
                if let Some(program) = world.program_of(tx.to) {
                    match run(
                        world, &program, tx.to, tx.from, tx.value, arg, 0, &mut state,
                    ) {
                        Ok(_) => TxStatus::Success,
                        Err(_) => TxStatus::Failed,
                    }
                } else {
                    TxStatus::Success
                }
            }
            TxPayload::Create { template, arg } => {
                let template = ContractTemplate::from_id(template % 6)
                    .expect("template id taken modulo table size");
                let contract = world.create_contract(template, tx.from, arg);
                state.calls.push(CallRecord {
                    from: tx.from,
                    to: contract,
                    from_kind: AccountKind::ExternallyOwned,
                    to_kind: AccountKind::Contract,
                    value: tx.value,
                    kind: CallKind::Create,
                });
                state.created.push(contract);
                world.transfer(tx.from, contract, tx.value);
                let _ = state.charge(state.schedule.cost(&Op::Create));
                TxStatus::Success
            }
        };

        Receipt {
            status,
            gas_used: Gas::new(state.gas_used),
            calls: state.calls,
            created: state.created,
        }
    }
}

/// Interprets `program` in the frame of contract `self_addr`.
#[allow(clippy::too_many_arguments)]
fn run<S: VmState>(
    world: &mut S,
    program: &Program,
    self_addr: Address,
    caller: Address,
    value: Wei,
    arg: u64,
    depth: usize,
    state: &mut ExecState,
) -> Result<u64, VmError> {
    let ops = program.ops();
    let mut stack: Vec<u64> = vec![arg];
    let mut pc = 0usize;

    macro_rules! pop {
        () => {
            stack.pop().ok_or(VmError::StackUnderflow)?
        };
    }
    macro_rules! push {
        ($v:expr) => {{
            if stack.len() >= STACK_LIMIT {
                return Err(VmError::StackOverflow);
            }
            stack.push($v);
        }};
    }

    while pc < ops.len() {
        let op = ops[pc];
        state.charge(state.schedule.cost(&op))?;
        pc += 1;
        match op {
            Op::Stop => return Ok(stack.pop().unwrap_or(0)),
            Op::Revert => return Err(VmError::Reverted),
            Op::Push(x) => push!(x),
            Op::Pop => {
                pop!();
            }
            Op::Add => {
                let b = pop!();
                let a = pop!();
                push!(a.wrapping_add(b));
            }
            Op::Sub => {
                let b = pop!();
                let a = pop!();
                push!(a.saturating_sub(b));
            }
            Op::Mul => {
                let b = pop!();
                let a = pop!();
                push!(a.wrapping_mul(b));
            }
            Op::Div => {
                let b = pop!();
                let a = pop!();
                push!(a.checked_div(b).unwrap_or(0));
            }
            Op::Mod => {
                let b = pop!();
                let a = pop!();
                push!(if b == 0 { 0 } else { a % b });
            }
            Op::Dup(n) => {
                let idx = stack
                    .len()
                    .checked_sub(1 + n as usize)
                    .ok_or(VmError::StackUnderflow)?;
                let v = stack[idx];
                push!(v);
            }
            Op::Swap(n) => {
                let top = stack.len().checked_sub(1).ok_or(VmError::StackUnderflow)?;
                let other = stack
                    .len()
                    .checked_sub(1 + n as usize)
                    .ok_or(VmError::StackUnderflow)?;
                stack.swap(top, other);
            }
            Op::Caller => push!(caller.index()),
            Op::CallValue => push!(value.get()),
            Op::SelfAddr => push!(self_addr.index()),
            Op::BlockTime => push!(state.time.as_secs()),
            Op::Rand => {
                let r = state.next_rand();
                push!(r);
            }
            Op::Balance => {
                let a = pop!();
                push!(world.balance(Address::from_index(a)).get());
            }
            Op::SLoad => {
                let key = pop!();
                push!(world.storage_load(self_addr, key));
            }
            Op::SStore => {
                let val = pop!();
                let key = pop!();
                world.storage_store(self_addr, key, val);
            }
            Op::Transfer => {
                let val = pop!();
                let to_idx = pop!();
                let to = Address::from_index(to_idx);
                state.calls.push(CallRecord {
                    from: self_addr,
                    to,
                    from_kind: AccountKind::Contract,
                    to_kind: world.kind(to),
                    value: Wei::new(val),
                    kind: CallKind::Transfer,
                });
                world.transfer(self_addr, to, Wei::new(val));
            }
            Op::Call => {
                let call_arg = pop!();
                let call_value = pop!();
                let to_idx = pop!();
                let to = Address::from_index(to_idx);
                state.calls.push(CallRecord {
                    from: self_addr,
                    to,
                    from_kind: AccountKind::Contract,
                    to_kind: world.kind(to),
                    value: Wei::new(call_value),
                    kind: CallKind::Call,
                });
                world.transfer(self_addr, to, Wei::new(call_value));
                let ret = match world.program_of(to) {
                    Some(callee) if depth + 1 < CALL_DEPTH_LIMIT => {
                        match run(
                            world,
                            &callee,
                            to,
                            self_addr,
                            Wei::new(call_value),
                            call_arg,
                            depth + 1,
                            state,
                        ) {
                            Ok(v) => v.max(1),
                            Err(VmError::OutOfGas) => return Err(VmError::OutOfGas),
                            Err(_) => 0, // contained failure, like EVM CALL
                        }
                    }
                    _ => 1, // plain transfer target or depth limit hit
                };
                push!(ret);
            }
            Op::Create => {
                let endow = pop!();
                let template_id = pop!();
                let template = ContractTemplate::from_id(template_id % 6)
                    .expect("template id taken modulo table size");
                let ctor_arg = state.next_rand();
                let child = world.create_contract(template, self_addr, ctor_arg);
                state.calls.push(CallRecord {
                    from: self_addr,
                    to: child,
                    from_kind: AccountKind::Contract,
                    to_kind: AccountKind::Contract,
                    value: Wei::new(endow),
                    kind: CallKind::Create,
                });
                state.created.push(child);
                world.transfer(self_addr, child, Wei::new(endow));
                push!(child.index());
            }
            Op::Jump(target) => {
                if target as usize >= ops.len() {
                    return Err(VmError::BadJump);
                }
                pc = target as usize;
            }
            Op::JumpI(target) => {
                let cond = pop!();
                if cond != 0 {
                    if target as usize >= ops.len() {
                        return Err(VmError::BadJump);
                    }
                    pc = target as usize;
                }
            }
            Op::Log => {
                pop!();
            }
        }
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::World;

    fn setup() -> (World, Address) {
        let mut world = World::new();
        let user = world.new_user(Wei::new(10_000_000));
        (world, user)
    }

    fn ctx() -> ExecContext {
        ExecContext::new(Timestamp::from_secs(1_000), 0xfeed, Gas::new(1_000_000))
    }

    fn call_tx(from: Address, to: Address, value: u64, arg: u64) -> Transaction {
        Transaction {
            from,
            to,
            value: Wei::new(value),
            gas_limit: Gas::new(1_000_000),
            payload: TxPayload::Call { arg },
        }
    }

    #[test]
    fn plain_transfer_emits_single_edge() {
        let (mut world, user) = setup();
        let other = world.new_user(Wei::ZERO);
        let tx = Transaction {
            from: user,
            to: other,
            value: Wei::new(10),
            gas_limit: Gas::new(50_000),
            payload: TxPayload::Transfer,
        };
        let r = Vm::execute(&mut world, &tx, &ctx());
        assert!(r.is_success());
        assert_eq!(r.calls.len(), 1);
        assert_eq!(r.calls[0].kind, CallKind::Transaction);
        assert_eq!(r.gas_used, Gas::new(GasSchedule::default().tx_base));
        assert_eq!(world.balance(other), Wei::new(10));
    }

    #[test]
    fn token_call_touches_storage_only() {
        let (mut world, user) = setup();
        let recipient = world.new_user(Wei::ZERO);
        let token = world.create_contract(ContractTemplate::Token, user, user.index());
        let r = Vm::execute(
            &mut world,
            &call_tx(user, token, 0, recipient.index()),
            &ctx(),
        );
        assert!(r.is_success());
        assert_eq!(r.calls.len(), 1); // no internal calls
                                      // recipient's balance slot was incremented
        assert_eq!(world.storage_load(token, recipient.index()), 1);
        assert!(r.gas_used.get() > GasSchedule::default().tx_base);
    }

    #[test]
    fn crowdsale_fans_out() {
        let (mut world, user) = setup();
        let beneficiary = world.new_user(Wei::ZERO);
        let token = world.create_contract(ContractTemplate::Token, user, user.index());
        let sale = world.create_contract(ContractTemplate::Crowdsale, user, 0);
        // wire the sale: slot 0 = beneficiary, slot 1 = token
        world.storage_store(sale, 0, beneficiary.index());
        world.storage_store(sale, 1, token.index());

        let r = Vm::execute(&mut world, &call_tx(user, sale, 500, 0), &ctx());
        assert!(r.is_success(), "receipt: {r:?}");
        // edges: user->sale (tx), sale->beneficiary (transfer), sale->token (call)
        let kinds: Vec<CallKind> = r.calls.iter().map(|c| c.kind).collect();
        assert_eq!(
            kinds,
            vec![CallKind::Transaction, CallKind::Transfer, CallKind::Call]
        );
        assert_eq!(world.balance(beneficiary), Wei::new(500));
        // raised accumulator
        assert_eq!(world.storage_load(sale, 2), 500);
        // token minted to the contributor
        assert_eq!(world.storage_load(token, user.index()), 1);
    }

    #[test]
    fn factory_creates_children() {
        let (mut world, user) = setup();
        let factory = world.create_contract(
            ContractTemplate::Factory,
            user,
            ContractTemplate::Registry.id(),
        );
        let before = world.contract_count();
        let r = Vm::execute(&mut world, &call_tx(user, factory, 0, 0), &ctx());
        assert!(r.is_success());
        assert_eq!(world.contract_count(), before + 1);
        assert_eq!(r.created.len(), 1);
        let child = r.created[0];
        assert_eq!(
            world.contract(child).unwrap().template,
            ContractTemplate::Registry
        );
        assert_eq!(world.storage_load(factory, 1), 1); // child counter
        assert!(r
            .calls
            .iter()
            .any(|c| c.kind == CallKind::Create && c.to == child));
    }

    #[test]
    fn game_pays_out_eventually() {
        let (mut world, user) = setup();
        let game = world.create_contract(ContractTemplate::Game, user, user.index());
        let mut payouts = 0;
        for i in 0..64 {
            let c = ExecContext {
                entropy: i,
                ..ctx()
            };
            let r = Vm::execute(&mut world, &call_tx(user, game, 100, 0), &c);
            assert!(r.is_success());
            payouts += r
                .calls
                .iter()
                .filter(|c| c.kind == CallKind::Transfer)
                .count();
        }
        // ~1 in 4 rolls pays out
        assert!((4..30).contains(&payouts), "payouts: {payouts}");
        // the last winner slot holds the caller
        assert_eq!(world.storage_load(game, 0), user.index());
    }

    #[test]
    fn out_of_gas_fails_transaction() {
        let (mut world, user) = setup();
        let token = world.create_contract(ContractTemplate::Token, user, 0);
        let tx = Transaction {
            gas_limit: Gas::new(GasSchedule::default().tx_base + 10), // enough for base, not for SSTOREs
            ..call_tx(user, token, 0, 5)
        };
        let c = ExecContext {
            gas_limit: tx.gas_limit,
            ..ctx()
        };
        let r = Vm::execute(&mut world, &tx, &c);
        assert_eq!(r.status, TxStatus::Failed);
        assert_eq!(r.gas_used, tx.gas_limit); // all gas consumed
        assert_eq!(r.calls.len(), 1); // top-level edge still present
    }

    #[test]
    fn gas_below_base_cost_fails_immediately() {
        let (mut world, user) = setup();
        let other = world.new_user(Wei::ZERO);
        let tx = Transaction {
            from: user,
            to: other,
            value: Wei::new(1),
            gas_limit: Gas::new(100),
            payload: TxPayload::Transfer,
        };
        let c = ExecContext {
            gas_limit: tx.gas_limit,
            ..ctx()
        };
        let r = Vm::execute(&mut world, &tx, &c);
        assert_eq!(r.status, TxStatus::Failed);
        assert!(r.calls.is_empty());
    }

    #[test]
    fn create_transaction_deploys() {
        let (mut world, user) = setup();
        let tx = Transaction {
            from: user,
            to: Address::ZERO,
            value: Wei::new(5),
            gas_limit: Gas::new(100_000),
            payload: TxPayload::Create {
                template: ContractTemplate::Wallet.id(),
                arg: user.index(),
            },
        };
        let r = Vm::execute(&mut world, &tx, &ctx());
        assert!(r.is_success());
        assert_eq!(r.created.len(), 1);
        let wallet = r.created[0];
        assert!(world.is_contract(wallet));
        assert_eq!(world.balance(wallet), Wei::new(5));
        assert_eq!(r.calls[0].kind, CallKind::Create);
    }

    #[test]
    fn call_depth_is_limited() {
        // a crowdsale whose "token" is another crowdsale pointing back at
        // it: without a depth limit this would recurse forever.
        let (mut world, user) = setup();
        let a = world.create_contract(ContractTemplate::Crowdsale, user, 0);
        let b = world.create_contract(ContractTemplate::Crowdsale, user, 0);
        world.storage_store(a, 0, user.index());
        world.storage_store(a, 1, b.index());
        world.storage_store(b, 0, user.index());
        world.storage_store(b, 1, a.index());
        let r = Vm::execute(&mut world, &call_tx(user, a, 10, 0), &ctx());
        assert!(r.is_success());
        // depth limit bounds the number of call edges
        assert!(
            r.calls.len() <= 2 * CALL_DEPTH_LIMIT + 2,
            "{}",
            r.calls.len()
        );
    }

    #[test]
    fn rand_is_deterministic_per_entropy() {
        let (mut world, user) = setup();
        let game = world.create_contract(ContractTemplate::Game, user, 0);
        let mut w2 = world.clone();
        let r1 = Vm::execute(&mut world, &call_tx(user, game, 1, 0), &ctx());
        let r2 = Vm::execute(&mut w2, &call_tx(user, game, 1, 0), &ctx());
        assert_eq!(r1, r2);
    }

    #[test]
    fn nonce_increments() {
        let (mut world, user) = setup();
        let other = world.new_user(Wei::ZERO);
        let tx = Transaction {
            from: user,
            to: other,
            value: Wei::ZERO,
            gas_limit: Gas::new(30_000),
            payload: TxPayload::Transfer,
        };
        Vm::execute(&mut world, &tx, &ctx());
        Vm::execute(&mut world, &tx, &ctx());
        // nonce lives in account state; verify indirectly through balance
        // bookkeeping not changing and no panic; direct check:
        // (account state is private — nonce covered via state tests)
    }
}
