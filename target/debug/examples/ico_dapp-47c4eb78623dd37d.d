/root/repo/target/debug/examples/ico_dapp-47c4eb78623dd37d.d: examples/ico_dapp.rs

/root/repo/target/debug/examples/ico_dapp-47c4eb78623dd37d: examples/ico_dapp.rs

examples/ico_dapp.rs:
