//! One entry point per paper figure, each returning renderable data.
//!
//! | figure | function | what it reproduces |
//! |--------|----------|--------------------|
//! | Fig. 1 | [`fig1_growth`] | vertex/edge growth per month |
//! | Fig. 2 | [`fig2_dot`] | an account/contract subgraph in DOT |
//! | Fig. 3 | [`fig3_run`] | hash & METIS per-window series at k=2 |
//! | Fig. 4 | [`fig4_cells`] | box/violin stats per method, k and 2017 period |
//! | Fig. 5 | [`fig5_rows`] | per-method aggregates vs shard count |

use std::collections::HashSet;

use blockpart_graph::{algos, GraphBuilder, InteractionLog};
use blockpart_metrics::calendar::{label_of, month_index, month_start};
use blockpart_metrics::{FiveNumber, Table};
use blockpart_types::{Address, ShardCount, Timestamp};

use crate::methods::Method;
use crate::study::{Study, StudyResult};

/// One monthly sample of Fig. 1's growth curves.
#[derive(Clone, Debug, PartialEq)]
pub struct GrowthPoint {
    /// Month offset since genesis (0 = August 2015).
    pub month: usize,
    /// The paper's axis label (`08.15` …).
    pub label: String,
    /// Cumulative distinct vertices (accounts + contracts).
    pub nodes: usize,
    /// Cumulative distinct directed edges.
    pub edges: usize,
    /// Cumulative interactions (edge weight).
    pub interactions: u64,
}

/// Computes the cumulative vertex/edge counts at every month boundary —
/// the two curves of Fig. 1.
///
/// # Examples
///
/// ```
/// use blockpart_core::experiments::fig1_growth;
/// use blockpart_graph::{Interaction, InteractionLog};
/// use blockpart_types::{Address, Timestamp};
///
/// let mut log = InteractionLog::new();
/// log.push(Interaction::new(
///     Timestamp::from_secs(0),
///     Address::from_index(1),
///     Address::from_index(2),
/// ));
/// let growth = fig1_growth(&log);
/// assert_eq!(growth.last().unwrap().nodes, 2);
/// ```
pub fn fig1_growth(log: &InteractionLog) -> Vec<GrowthPoint> {
    let mut points = Vec::new();
    let mut nodes: HashSet<Address> = HashSet::new();
    let mut edges: HashSet<(Address, Address)> = HashSet::new();
    let mut interactions = 0u64;
    let mut current_month = 0usize;

    let mut sample = |month: usize, nodes: usize, edges: usize, interactions: u64| {
        points.push(GrowthPoint {
            month,
            label: label_of(month_start(month)),
            nodes,
            edges,
            interactions,
        });
    };

    for e in log.events() {
        let m = month_index(e.time);
        while current_month < m {
            sample(current_month, nodes.len(), edges.len(), interactions);
            current_month += 1;
        }
        nodes.insert(e.from);
        nodes.insert(e.to);
        if e.from != e.to {
            edges.insert((e.from, e.to));
        }
        interactions += e.weight;
    }
    sample(current_month, nodes.len(), edges.len(), interactions);
    points
}

/// Renders growth points (with Fig. 1's fork markers) as a table.
pub fn fig1_table(points: &[GrowthPoint], markers: &[(&str, Timestamp)]) -> Table {
    let mut t = Table::new(vec!["month", "nodes", "edges", "interactions", "event"]);
    for p in points {
        let event = markers
            .iter()
            .filter(|&&(_, at)| month_index(at) == p.month)
            .map(|&(name, _)| name)
            .collect::<Vec<_>>()
            .join("+");
        t.row(vec![
            p.label.clone(),
            p.nodes.to_string(),
            p.edges.to_string(),
            p.interactions.to_string(),
            event,
        ]);
    }
    t
}

/// Extracts a Fig. 2-style presentation subgraph: the `hops`-neighbourhood
/// of the busiest *contract* within `[start, end)`, rendered as DOT
/// (accounts solid, contracts dashed, weighted edges labelled).
///
/// Returns `None` if the window contains no contract.
pub fn fig2_dot(
    log: &InteractionLog,
    start: Timestamp,
    end: Timestamp,
    hops: usize,
) -> Option<String> {
    let graph = log.graph_window(start, end);
    let seed = graph
        .nodes()
        .filter(|n| n.kind.is_contract())
        .max_by_key(|n| (n.weight, std::cmp::Reverse(n.id)))?;
    let csr = graph.to_csr();
    let hood = algos::neighborhood(&csr, seed.id.index(), hops);
    let keep: HashSet<usize> = hood.into_iter().collect();

    // induced subgraph
    let mut b = GraphBuilder::new();
    for n in graph.nodes().filter(|n| keep.contains(&n.id.index())) {
        b.touch(n.address, n.kind);
    }
    for e in graph.edges() {
        if keep.contains(&e.source.index()) && keep.contains(&e.target.index()) {
            b.add_interaction(graph.address(e.source), graph.address(e.target), e.weight);
        }
    }
    Some(blockpart_graph::io::to_dot(&b.build()))
}

/// Runs the Fig. 3 configuration: HASH and METIS at two shards, returning
/// the full study result (per-window series for both methods).
pub fn fig3_run(log: &InteractionLog, seed: u64) -> StudyResult {
    Study::new(log)
        .methods(vec![Method::Hash, Method::Metis])
        .shard_counts(vec![ShardCount::TWO])
        .seed(seed)
        .run()
}

/// Renders one method's Fig. 3 series as a monthly-aggregated table
/// (means of the 4-hour samples per month, repartition count).
pub fn fig3_table(result: &StudyResult, method: Method) -> Option<Table> {
    let run = result.get(method, ShardCount::TWO)?;
    let mut t = Table::new(vec![
        "month",
        "static-cut",
        "dynamic-cut",
        "static-bal",
        "dynamic-bal",
        "reparts",
    ]);
    let Some(last) = run.windows.last() else {
        return Some(t);
    };
    let last_month = month_index(last.start);
    for m in 0..=last_month {
        let (lo, hi) = (month_start(m), month_start(m + 1));
        let ws: Vec<_> = run
            .windows
            .iter()
            .filter(|w| w.start >= lo && w.start < hi)
            .collect();
        if ws.is_empty() {
            continue;
        }
        let mean = |f: &dyn Fn(&blockpart_shard::WindowRecord) -> f64| {
            ws.iter().map(|w| f(w)).sum::<f64>() / ws.len() as f64
        };
        let reparts = ws.iter().filter(|w| w.repartitioned).count();
        t.row(vec![
            label_of(lo),
            format!("{:.3}", mean(&|w| w.static_edge_cut)),
            format!("{:.3}", mean(&|w| w.dynamic_edge_cut)),
            format!("{:.3}", mean(&|w| w.static_balance)),
            format!("{:.3}", mean(&|w| w.dynamic_balance)),
            reparts.to_string(),
        ]);
    }
    Some(t)
}

/// One box of the paper's Fig. 4: a method at a shard count within one
/// 2017 period.
#[derive(Clone, Debug)]
pub struct Fig4Cell {
    /// The method.
    pub method: Method,
    /// The shard count.
    pub k: ShardCount,
    /// The period's label (`01.17 - 06.17` …).
    pub period: String,
    /// Distribution of per-window dynamic edge-cut.
    pub edge_cut: FiveNumber,
    /// Distribution of per-window dynamic balance.
    pub balance: FiveNumber,
    /// Total vertex moves in the period.
    pub moves: u64,
}

/// The paper's four 2017 evaluation periods, as `(start, end, label)`.
pub fn fig4_periods() -> Vec<(Timestamp, Timestamp, String)> {
    let p = |a: usize, b: usize| {
        (
            month_start(a),
            month_start(b),
            format!(
                "{} - {}",
                label_of(month_start(a)),
                label_of(month_start(b))
            ),
        )
    };
    // months since genesis: 01.17 = 17, 06.17 = 22, 09.17 = 25, 12.17 = 28,
    // 01.18 = 29 (the paper's data ends in early January 2018)
    vec![p(17, 22), p(22, 25), p(25, 28), p(28, 29)]
}

/// Computes every Fig. 4 box from a study result.
///
/// Windows with no events are excluded from the distributions (the paper's
/// samples are 4-hour windows with traffic).
pub fn fig4_cells(
    result: &StudyResult,
    periods: &[(Timestamp, Timestamp, String)],
) -> Vec<Fig4Cell> {
    let mut cells = Vec::new();
    for run in &result.runs {
        for (start, end, label) in periods {
            let windows = run.result.windows_in(*start, *end);
            let cuts: Vec<f64> = windows
                .iter()
                .filter(|w| w.events > 0)
                .map(|w| w.dynamic_edge_cut)
                .collect();
            let balances: Vec<f64> = windows
                .iter()
                .filter(|w| w.events > 0)
                .map(|w| w.dynamic_balance)
                .collect();
            let (Some(edge_cut), Some(balance)) =
                (FiveNumber::of(&cuts), FiveNumber::of(&balances))
            else {
                continue;
            };
            cells.push(Fig4Cell {
                method: run.method,
                k: run.k,
                period: label.clone(),
                edge_cut,
                balance,
                moves: run.result.moves_in(*start, *end),
            });
        }
    }
    cells
}

/// Renders Fig. 4 cells for one shard count as a table.
pub fn fig4_table(cells: &[Fig4Cell], k: ShardCount) -> Table {
    let mut t = Table::new(vec![
        "period", "method", "cut-q1", "cut-med", "cut-q3", "bal-q1", "bal-med", "bal-q3", "moves",
    ]);
    for c in cells.iter().filter(|c| c.k == k) {
        t.row(vec![
            c.period.clone(),
            c.method.label().to_string(),
            format!("{:.3}", c.edge_cut.q1),
            format!("{:.3}", c.edge_cut.median),
            format!("{:.3}", c.edge_cut.q3),
            format!("{:.3}", c.balance.q1),
            format!("{:.3}", c.balance.median),
            format!("{:.3}", c.balance.q3),
            c.moves.to_string(),
        ]);
    }
    t
}

/// One point series of Fig. 5: a method at a shard count over the whole
/// history.
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// The method.
    pub method: Method,
    /// The shard count.
    pub k: ShardCount,
    /// Mean per-window dynamic edge-cut over the full run.
    pub dynamic_edge_cut: f64,
    /// Mean per-window dynamic balance, normalized as `(b − 1)/(k − 1)`
    /// so different `k` are comparable (the paper's Fig. 5 y-axis).
    pub normalized_balance: f64,
    /// Total vertex moves over the full run.
    pub moves: u64,
    /// Number of repartitions.
    pub repartitions: usize,
}

/// Computes the Fig. 5 aggregates from a (typically all-methods ×
/// {2,4,8}) study result.
pub fn fig5_rows(result: &StudyResult) -> Vec<Fig5Row> {
    result
        .runs
        .iter()
        .map(|run| {
            let (mean_cut, mean_bal) = crate::experiment::mean_window_metrics(&run.result);
            Fig5Row {
                method: run.method,
                k: run.k,
                dynamic_edge_cut: mean_cut,
                normalized_balance: crate::experiment::normalized_balance(
                    mean_bal,
                    run.k.as_usize(),
                ),
                moves: run.result.total_moves,
                repartitions: run.result.repartitions,
            }
        })
        .collect()
}

/// Renders Fig. 5 rows as a table.
pub fn fig5_table(rows: &[Fig5Row]) -> Table {
    let mut t = Table::new(vec![
        "method",
        "k",
        "dyn-edge-cut",
        "norm-dyn-balance",
        "moves",
        "reparts",
    ]);
    for r in rows {
        t.row(vec![
            r.method.label().to_string(),
            r.k.get().to_string(),
            format!("{:.3}", r.dynamic_edge_cut),
            format!("{:.3}", r.normalized_balance),
            r.moves.to_string(),
            r.repartitions.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpart_graph::Interaction;
    use blockpart_types::AccountKind;

    fn tiny_log(days: u64) -> InteractionLog {
        let mut log = InteractionLog::new();
        for h in 0..days * 24 {
            let t = Timestamp::from_secs(h * 3_600);
            let i = h % 8;
            let mut e = Interaction::new(t, Address::from_index(i), Address::from_index(50));
            e.to_kind = AccountKind::Contract;
            log.push(e);
            log.push(Interaction::new(
                t,
                Address::from_index(i),
                Address::from_index((i + 1) % 8),
            ));
        }
        log
    }

    #[test]
    fn growth_is_monotone() {
        let log = tiny_log(70); // > 2 months
        let growth = fig1_growth(&log);
        assert!(growth.len() >= 3);
        for pair in growth.windows(2) {
            assert!(pair[1].nodes >= pair[0].nodes);
            assert!(pair[1].edges >= pair[0].edges);
            assert!(pair[1].interactions >= pair[0].interactions);
        }
        assert_eq!(growth[0].label, "08.15");
        let table = fig1_table(&growth, &[("Homestead", month_start(1))]);
        assert!(table.render_ascii().contains("Homestead"));
    }

    #[test]
    fn fig2_extracts_contract_neighborhood() {
        let log = tiny_log(3);
        let dot = fig2_dot(&log, Timestamp::EPOCH, Timestamp::from_secs(86_400 * 3), 1)
            .expect("contract exists");
        assert!(dot.contains("digraph"));
        assert!(dot.contains("style=dashed")); // the contract vertex
    }

    #[test]
    fn fig2_none_without_contracts() {
        let mut log = InteractionLog::new();
        log.push(Interaction::new(
            Timestamp::EPOCH,
            Address::from_index(0),
            Address::from_index(1),
        ));
        assert!(fig2_dot(&log, Timestamp::EPOCH, Timestamp::from_secs(10), 2).is_none());
    }

    #[test]
    fn fig3_produces_both_series() {
        let log = tiny_log(20);
        let result = fig3_run(&log, 1);
        assert!(fig3_table(&result, Method::Hash).is_some());
        let metis = fig3_table(&result, Method::Metis).unwrap();
        assert!(!metis.is_empty());
        assert!(fig3_table(&result, Method::Kl).is_none()); // not in the run
    }

    #[test]
    fn fig4_periods_match_paper_axis() {
        let p = fig4_periods();
        assert_eq!(p.len(), 4);
        assert_eq!(p[0].2, "01.17 - 06.17");
        assert_eq!(p[3].2, "12.17 - 01.18");
    }

    #[test]
    fn fig4_cells_cover_active_periods() {
        let log = tiny_log(30);
        let result = Study::new(&log)
            .methods(vec![Method::Hash])
            .shard_counts(vec![ShardCount::TWO])
            .run();
        // the tiny log lives in month 0, so use a matching period
        let periods = vec![(
            Timestamp::EPOCH,
            Timestamp::from_secs(40 * 86_400),
            "test".to_string(),
        )];
        let cells = fig4_cells(&result, &periods);
        assert_eq!(cells.len(), 1);
        assert!(cells[0].edge_cut.max <= 1.0);
        let table = fig4_table(&cells, ShardCount::TWO);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn fig5_rows_aggregate_all_runs() {
        let log = tiny_log(20);
        let result = Study::new(&log)
            .methods(vec![Method::Hash, Method::Metis])
            .shard_counts(vec![ShardCount::TWO, ShardCount::new(4).unwrap()])
            .run();
        let rows = fig5_rows(&result);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.dynamic_edge_cut >= 0.0 && r.dynamic_edge_cut <= 1.0);
            assert!(r.normalized_balance >= 0.0);
        }
        let hash_row = rows.iter().find(|r| r.method == Method::Hash).unwrap();
        assert_eq!(hash_row.moves, 0);
        let table = fig5_table(&rows);
        assert_eq!(table.len(), 4);
    }
}
