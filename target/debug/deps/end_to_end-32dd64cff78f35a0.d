/root/repo/target/debug/deps/end_to_end-32dd64cff78f35a0.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-32dd64cff78f35a0: tests/end_to_end.rs

tests/end_to_end.rs:
