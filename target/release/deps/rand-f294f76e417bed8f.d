/root/repo/target/release/deps/rand-f294f76e417bed8f.d: third_party/rand/src/lib.rs

/root/repo/target/release/deps/librand-f294f76e417bed8f.rlib: third_party/rand/src/lib.rs

/root/repo/target/release/deps/librand-f294f76e417bed8f.rmeta: third_party/rand/src/lib.rs

third_party/rand/src/lib.rs:
