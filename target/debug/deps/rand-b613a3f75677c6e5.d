/root/repo/target/debug/deps/rand-b613a3f75677c6e5.d: third_party/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-b613a3f75677c6e5.rmeta: third_party/rand/src/lib.rs Cargo.toml

third_party/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
