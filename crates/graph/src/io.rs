//! Trace and graph serialization: the plain-text interaction trace format
//! (mirroring the paper's published dataset) and DOT export for subgraph
//! figures.
//!
//! The trace format is one interaction per line:
//!
//! ```text
//! # time  from  to  weight  from_kind  to_kind
//! 3600 0x00..01 0x00..02 3 a c
//! ```
//!
//! where `a` marks an externally-owned account and `c` a contract. Lines
//! starting with `#` and blank lines are ignored.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};

use blockpart_types::{AccountKind, Address, Timestamp};

use crate::event::{Interaction, InteractionLog};
use crate::graph::Graph;

/// Errors produced while reading a trace.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line did not match the expected format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ReadTraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            ReadTraceError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for ReadTraceError {
    fn from(e: std::io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

/// Writes `log` in the plain-text trace format.
///
/// Accepts any [`Write`]r by value; pass `&mut writer` to keep ownership.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
///
/// # Examples
///
/// ```
/// # fn main() -> std::io::Result<()> {
/// use blockpart_graph::io::write_trace;
/// use blockpart_graph::{Interaction, InteractionLog};
/// use blockpart_types::{Address, Timestamp};
///
/// let mut log = InteractionLog::new();
/// log.push(Interaction::new(
///     Timestamp::from_secs(1),
///     Address::from_index(0),
///     Address::from_index(1),
/// ));
/// let mut buf = Vec::new();
/// write_trace(&mut buf, &log)?;
/// assert!(String::from_utf8(buf).unwrap().contains("0x"));
/// # Ok(())
/// # }
/// ```
pub fn write_trace<W: Write>(writer: W, log: &InteractionLog) -> std::io::Result<()> {
    write_trace_events(writer, log.events().iter().copied())
}

/// Writes an event stream in the plain-text trace format without
/// requiring a resident [`InteractionLog`].
///
/// Memory contract: `O(1)` — each event is formatted and written as it is
/// pulled from the iterator, so a generator or a
/// disk-resident segment store can be exported at any scale.
/// [`write_trace`] is this function applied to a resident log.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_trace_events<W: Write>(
    mut writer: W,
    events: impl IntoIterator<Item = Interaction>,
) -> std::io::Result<()> {
    writeln!(writer, "# time from to weight from_kind to_kind")?;
    for e in events {
        writeln!(
            writer,
            "{} {} {} {} {} {}",
            e.time.as_secs(),
            e.from,
            e.to,
            e.weight,
            kind_char(e.from_kind),
            kind_char(e.to_kind),
        )?;
    }
    Ok(())
}

/// Reads a plain-text trace written by [`write_trace`].
///
/// Accepts any [`Read`]er by value; pass `&mut reader` to keep ownership.
///
/// # Errors
///
/// Returns [`ReadTraceError::Io`] on I/O failure and
/// [`ReadTraceError::Parse`] on malformed lines (wrong field count, bad
/// numbers, bad addresses, out-of-order timestamps).
pub fn read_trace<R: Read>(reader: R) -> Result<InteractionLog, ReadTraceError> {
    let mut log = InteractionLog::new();
    for event in read_trace_events(reader) {
        log.push(event?);
    }
    Ok(log)
}

/// Streams a plain-text trace one event at a time without materializing
/// an [`InteractionLog`].
///
/// Memory contract: `O(1)` — one line resident at a time, so arbitrarily
/// large traces parse under a fixed budget. Ordering is still enforced:
/// an out-of-order timestamp surfaces as [`ReadTraceError::Parse`] on the
/// offending line. [`read_trace`] is this function collected into a log.
///
/// # Examples
///
/// ```
/// use blockpart_graph::io::read_trace_events;
///
/// let text = "# header\n10 0x0000000000000000000000000000000000000001 \
///             0x0000000000000000000000000000000000000002 1 a a\n";
/// let events: Result<Vec<_>, _> = read_trace_events(text.as_bytes()).collect();
/// assert_eq!(events.unwrap().len(), 1);
/// ```
pub fn read_trace_events<R: Read>(reader: R) -> TraceEvents<R> {
    TraceEvents {
        lines: BufReader::new(reader).lines(),
        lineno: 0,
        last_time: None,
    }
}

/// The streaming iterator returned by [`read_trace_events`].
pub struct TraceEvents<R: Read> {
    lines: std::io::Lines<BufReader<R>>,
    lineno: usize,
    last_time: Option<Timestamp>,
}

impl<R: Read> TraceEvents<R> {
    fn parse_line(&mut self, line: &str) -> Result<Option<Interaction>, ReadTraceError> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let lineno = self.lineno;
        let parse = |msg: &str| ReadTraceError::Parse {
            line: lineno,
            message: msg.to_string(),
        };
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 6 {
            return Err(parse(&format!("expected 6 fields, found {}", fields.len())));
        }
        let time = Timestamp::from_secs(fields[0].parse().map_err(|_| parse("invalid timestamp"))?);
        if let Some(last) = self.last_time {
            if time < last {
                return Err(parse("timestamps must be non-decreasing"));
            }
        }
        self.last_time = Some(time);
        let from = parse_address(fields[1]).ok_or_else(|| parse("invalid from address"))?;
        let to = parse_address(fields[2]).ok_or_else(|| parse("invalid to address"))?;
        let weight: u64 = fields[3].parse().map_err(|_| parse("invalid weight"))?;
        let from_kind = parse_kind(fields[4]).ok_or_else(|| parse("invalid from kind"))?;
        let to_kind = parse_kind(fields[5]).ok_or_else(|| parse("invalid to kind"))?;
        Ok(Some(Interaction {
            time,
            from,
            to,
            weight,
            from_kind,
            to_kind,
        }))
    }
}

impl<R: Read> Iterator for TraceEvents<R> {
    type Item = Result<Interaction, ReadTraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.lines.next()? {
                Ok(l) => l,
                Err(e) => return Some(Err(ReadTraceError::Io(e))),
            };
            self.lineno += 1;
            match self.parse_line(&line) {
                Ok(Some(event)) => return Some(Ok(event)),
                Ok(None) => continue,
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

/// Renders `graph` in Graphviz DOT, in the style of the paper's Fig. 2:
/// accounts as solid ellipses, contracts as dashed boxes, edges labelled
/// with their weight when greater than one.
///
/// # Examples
///
/// ```
/// use blockpart_graph::{io::to_dot, GraphBuilder};
/// use blockpart_types::{AccountKind, Address};
///
/// let mut b = GraphBuilder::new();
/// b.touch(Address::from_index(2), AccountKind::Contract);
/// b.add_interaction(Address::from_index(1), Address::from_index(2), 3);
/// let dot = to_dot(&b.build());
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("label=\"3\""));
/// ```
pub fn to_dot(graph: &Graph) -> String {
    let mut out = String::from("digraph blockchain {\n  rankdir=LR;\n");
    for node in graph.nodes() {
        let style = if node.kind.is_contract() {
            "shape=box, style=dashed"
        } else {
            "shape=ellipse, style=solid"
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\", {}];",
            node.id.index(),
            node.address.index(),
            style
        );
    }
    for e in graph.edges() {
        if e.weight > 1 {
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"{}\"];",
                e.source.index(),
                e.target.index(),
                e.weight
            );
        } else {
            let _ = writeln!(out, "  n{} -> n{};", e.source.index(), e.target.index());
        }
    }
    out.push_str("}\n");
    out
}

/// Writes a symmetric CSR in the classic METIS `.graph` file format
/// (header `n m fmt` with `fmt = 011` for vertex + edge weights, then one
/// line per vertex: `vwgt (neighbor weight)*`, 1-based indices).
///
/// Useful for cross-checking this crate's partitioners against an actual
/// METIS binary.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
///
/// # Examples
///
/// ```
/// # fn main() -> std::io::Result<()> {
/// use blockpart_graph::{io::write_metis_graph, Csr};
///
/// let csr = Csr::from_edges(3, &[(0, 1, 5), (1, 2, 7)]);
/// let mut buf = Vec::new();
/// write_metis_graph(&mut buf, &csr)?;
/// let text = String::from_utf8(buf).unwrap();
/// assert!(text.starts_with("3 2 011\n"));
/// # Ok(())
/// # }
/// ```
pub fn write_metis_graph<W: Write>(mut writer: W, csr: &crate::Csr) -> std::io::Result<()> {
    writeln!(writer, "{} {} 011", csr.node_count(), csr.edge_count())?;
    for v in 0..csr.node_count() {
        write!(writer, "{}", csr.vertex_weight(v))?;
        for (u, w) in csr.neighbors(v) {
            write!(writer, " {} {}", u + 1, w)?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

fn kind_char(kind: AccountKind) -> char {
    if kind.is_contract() {
        'c'
    } else {
        'a'
    }
}

fn parse_kind(s: &str) -> Option<AccountKind> {
    match s {
        "a" => Some(AccountKind::ExternallyOwned),
        "c" => Some(AccountKind::Contract),
        _ => None,
    }
}

fn parse_address(s: &str) -> Option<Address> {
    let hex = s.strip_prefix("0x")?;
    if hex.len() != 40 {
        return None;
    }
    let mut bytes = [0u8; 20];
    for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
        let hi = (chunk[0] as char).to_digit(16)?;
        let lo = (chunk[1] as char).to_digit(16)?;
        bytes[i] = (hi * 16 + lo) as u8;
    }
    Some(Address::from_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> InteractionLog {
        let mut log = InteractionLog::new();
        log.push(Interaction::new(
            Timestamp::from_secs(10),
            Address::from_index(1),
            Address::from_index(2),
        ));
        log.push(Interaction {
            weight: 5,
            to_kind: AccountKind::Contract,
            ..Interaction::new(
                Timestamp::from_secs(20),
                Address::from_index(2),
                Address::from_index(3),
            )
        });
        log
    }

    #[test]
    fn trace_roundtrip() {
        let log = sample_log();
        let mut buf = Vec::new();
        write_trace(&mut buf, &log).unwrap();
        let log2 = read_trace(&buf[..]).unwrap();
        assert_eq!(log.events(), log2.events());
    }

    #[test]
    fn read_skips_comments_and_blanks() {
        let text = "# header\n\n10 0x0000000000000000000000000000000000000001 0x0000000000000000000000000000000000000002 1 a a\n";
        let log = read_trace(text.as_bytes()).unwrap();
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn read_rejects_short_lines() {
        let err = read_trace("10 0xabc".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Parse { line: 1, .. }));
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn read_rejects_bad_kind() {
        let text = "10 0x0000000000000000000000000000000000000001 0x0000000000000000000000000000000000000002 1 a z\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("kind"));
    }

    #[test]
    fn read_rejects_out_of_order() {
        let a = "0x0000000000000000000000000000000000000001";
        let text = format!("10 {a} {a} 1 a a\n5 {a} {a} 1 a a\n");
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("non-decreasing"));
    }

    #[test]
    fn parse_address_validates() {
        assert!(parse_address("0x00").is_none());
        assert!(parse_address("no-prefix").is_none());
        assert!(parse_address("0xzz00000000000000000000000000000000000000").is_none());
        let a = parse_address("0x00000000000000000000000000000000000000ff").unwrap();
        assert_eq!(a.as_bytes()[19], 0xff);
    }

    #[test]
    fn metis_graph_format() {
        let csr = crate::Csr::from_edges(3, &[(0, 1, 5), (1, 2, 7)]);
        let mut buf = Vec::new();
        write_metis_graph(&mut buf, &csr).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 vertices
        assert_eq!(lines[0], "3 2 011");
        // vertex 1 (middle of the path): unit weight... vertex weights here
        // come from Csr::from_edges (all 1)
        assert_eq!(lines[2], "1 1 5 3 7"); // vwgt, (n1, w), (n3, w) 1-based
    }

    #[test]
    fn dot_output_shape() {
        let g = InteractionLog::graph_of(sample_log().events());
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("style=dashed")); // the contract
        assert!(dot.contains("label=\"5\"")); // the weighted edge
        assert!(dot.trim_end().ends_with('}'));
    }
}
