//! The buffering trace collector and its record type.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::{Collector, MetricsRegistry};

/// Which clock stamped a record.
///
/// Virtual records are deterministic — the discrete-event engine's clock
/// advances identically for a given seed and config no matter how many
/// worker threads execute it — so virtual-only traces diff cleanly
/// across runs. Wall records measure the host and vary run to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockDomain {
    /// Simulated microseconds from the discrete-event engine.
    Virtual,
    /// Monotonic host microseconds since the collector's epoch.
    Wall,
}

/// One typed span/event argument.
#[derive(Clone, Debug, PartialEq)]
pub enum Arg {
    /// A string value.
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl Arg {
    /// The argument as a JSON value.
    pub fn json(&self) -> blockpart_metrics::Json {
        use blockpart_metrics::Json;
        match self {
            Arg::Str(s) => Json::from(s.clone()),
            Arg::U64(v) => Json::from(*v),
            Arg::I64(v) => Json::from(*v),
            Arg::F64(v) => Json::from(*v),
            Arg::Bool(v) => Json::from(*v),
        }
    }
}

macro_rules! impl_arg_from {
    ($($t:ty => $variant:ident ($conv:expr)),* $(,)?) => {$(
        impl From<$t> for Arg {
            fn from(v: $t) -> Arg {
                #[allow(clippy::redundant_closure_call)]
                Arg::$variant(($conv)(v))
            }
        }
    )*};
}

impl_arg_from! {
    &str => Str(|v: &str| v.to_string()),
    String => Str(|v| v),
    u64 => U64(|v| v),
    u32 => U64(u64::from),
    u16 => U64(u64::from),
    usize => U64(|v| v as u64),
    i64 => I64(|v| v),
    f64 => F64(|v| v),
    bool => Bool(|v| v),
}

impl From<blockpart_types::ShardId> for Arg {
    fn from(v: blockpart_types::ShardId) -> Arg {
        Arg::U64(u64::from(v.as_u16()))
    }
}

/// One trace record: a complete span (`dur_us: Some`) or an instant
/// event (`dur_us: None`).
///
/// `process`/`thread` are Perfetto lanes, stamped by the collector when
/// the record is stored (along with the clock domain), so instrumented
/// code never tracks where it runs.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Start (spans) or occurrence (events) timestamp in µs.
    pub ts_us: u64,
    /// Span duration in µs; `None` marks an instant event.
    pub dur_us: Option<u64>,
    /// Clock domain of `ts_us` (stamped by the collector).
    pub clock: ClockDomain,
    /// Perfetto `pid` lane (stamped by the collector).
    pub process: u32,
    /// Perfetto `tid` lane (stamped by the collector).
    pub thread: u32,
    /// Category: `"stage"` spans feed the self-profile, `"detail"`
    /// spans are sub-stage breakdowns, everything else is free-form.
    pub cat: &'static str,
    /// Span/event name (arbitrary string; escaping is the exporter's
    /// problem, not the caller's).
    pub name: String,
    /// Typed arguments, in insertion order.
    pub args: Vec<(&'static str, Arg)>,
}

impl Record {
    /// A complete span starting at `ts_us` lasting `dur_us`.
    pub fn span(ts_us: u64, dur_us: u64, cat: &'static str, name: impl Into<String>) -> Record {
        Record {
            ts_us,
            dur_us: Some(dur_us),
            clock: ClockDomain::Wall,
            process: 0,
            thread: 0,
            cat,
            name: name.into(),
            args: Vec::new(),
        }
    }

    /// An instant event at `ts_us`.
    pub fn instant(ts_us: u64, cat: &'static str, name: impl Into<String>) -> Record {
        Record {
            dur_us: None,
            ..Record::span(ts_us, 0, cat, name)
        }
    }

    /// Appends one argument (builder style).
    pub fn with_arg(mut self, key: &'static str, value: impl Into<Arg>) -> Record {
        self.args.push((key, value.into()));
        self
    }
}

/// A monotonic wall-clock stopwatch in microseconds.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    /// Microseconds elapsed since [`start`](Self::start).
    pub fn elapsed_us(&self) -> u64 {
        self.0.elapsed().as_micros() as u64
    }
}

/// The buffering collector: an append-only record buffer plus a metrics
/// registry.
///
/// A disabled trace ([`Trace::disabled`]) keeps nothing and reports
/// `enabled() == false`, so instrumentation can stay in place at near
/// zero cost. Traces merge ([`Trace::merge`]) for fan-out patterns:
/// each runtime worker owns one, and the engine merges them in shard
/// order and time-sorts, which is deterministic because virtual
/// timestamps are.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: bool,
    clock: Option<ClockDomain>,
    lane: (u32, u32),
    records: Vec<Record>,
    metrics: MetricsRegistry,
    metric_prefix: String,
    scratch: String,
    process_names: BTreeMap<u32, String>,
    thread_names: BTreeMap<(u32, u32), String>,
    epoch: Option<Instant>,
}

impl Trace {
    /// An enabled wall-clock trace with its epoch at the call site.
    pub fn new() -> Trace {
        Trace {
            enabled: true,
            events: true,
            clock: Some(ClockDomain::Wall),
            epoch: Some(Instant::now()),
            ..Trace::default()
        }
    }

    /// An enabled virtual-clock trace: callers stamp timestamps
    /// explicitly ([`span_at`](Self::span_at) /
    /// [`instant_at`](Self::instant_at) / `event!(.., @at ts, ..)`).
    pub fn new_virtual() -> Trace {
        Trace {
            enabled: true,
            events: true,
            clock: Some(ClockDomain::Virtual),
            ..Trace::default()
        }
    }

    /// An enabled collector that keeps counters, gauges and histograms
    /// but drops per-event [`Record`]s — the always-on observability
    /// mode. Its cost is O(metric updates) with no per-call allocation,
    /// which is what the CI overhead gate (`perf --obs-gate`) holds to
    /// ≤ 5%; the O(events) record stream stays opt-in.
    pub fn metrics_only() -> Trace {
        Trace {
            enabled: true,
            events: false,
            ..Trace::default()
        }
    }

    /// An enabled wall-clock trace sharing an explicit epoch — for
    /// fan-out callers whose sub-traces must line up on one timeline.
    pub fn new_at(epoch: Instant) -> Trace {
        Trace {
            epoch: Some(epoch),
            ..Trace::new()
        }
    }

    /// A disabled trace: every operation is a no-op.
    pub fn disabled() -> Trace {
        Trace::default()
    }

    /// An enabled trace when `on`, else a disabled one.
    pub fn when(on: bool) -> Trace {
        if on {
            Trace::new()
        } else {
            Trace::disabled()
        }
    }

    /// Sets the (process, thread) lane stamped onto subsequent records.
    pub fn set_lane(&mut self, process: u32, thread: u32) {
        self.lane = (process, thread);
    }

    /// Names a Perfetto process lane.
    pub fn name_process(&mut self, process: u32, name: impl Into<String>) {
        if self.enabled {
            self.process_names.insert(process, name.into());
        }
    }

    /// Names a Perfetto thread lane.
    pub fn name_thread(&mut self, process: u32, thread: u32, name: impl Into<String>) {
        if self.enabled {
            self.thread_names.insert((process, thread), name.into());
        }
    }

    /// Records a complete span at an explicit timestamp (virtual-clock
    /// instrumentation).
    pub fn span_at(&mut self, ts_us: u64, dur_us: u64, cat: &'static str, name: impl Into<String>) {
        self.record(Record::span(ts_us, dur_us, cat, name));
    }

    /// Records an instant event at an explicit timestamp.
    pub fn instant_at(&mut self, ts_us: u64, cat: &'static str, name: impl Into<String>) {
        self.record(Record::instant(ts_us, cat, name));
    }

    /// The collected records, in insertion order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Prefix (e.g. `"metis/k4/"`) prepended to every subsequent metric
    /// name recorded through this collector.
    pub fn set_metric_prefix(&mut self, prefix: impl Into<String>) {
        self.metric_prefix = prefix.into();
    }

    /// Rewrites the process lane of every record and lane name, for
    /// slotting a merged sub-trace (e.g. one runtime's virtual trace)
    /// into its own Perfetto process.
    pub fn retag_process(&mut self, process: u32) {
        for r in &mut self.records {
            r.process = process;
        }
        self.process_names = self
            .process_names
            .values()
            .map(|n| (process, n.clone()))
            .collect();
        self.thread_names = std::mem::take(&mut self.thread_names)
            .into_iter()
            .map(|((_, t), n)| ((process, t), n))
            .collect();
        self.lane.0 = process;
    }

    /// Appends another trace's records, lane names and metrics.
    pub fn merge(&mut self, other: Trace) {
        if !self.enabled {
            return;
        }
        self.records.extend(other.records);
        self.process_names.extend(other.process_names);
        self.thread_names.extend(other.thread_names);
        self.metrics.merge(&other.metrics);
    }

    /// Stable-sorts records by timestamp. Called after merging
    /// per-worker virtual traces: buffers arrive concatenated in shard
    /// order, each already time-ordered, so the result is deterministic
    /// (ties keep shard order) no matter how many threads produced them.
    pub fn sort_by_time(&mut self) {
        self.records.sort_by_key(|r| r.ts_us);
    }

    /// A copy holding only virtual-clock records — the deterministic,
    /// diffable slice of a mixed trace.
    pub fn virtual_only(&self) -> Trace {
        let mut out = self.clone();
        out.records.retain(|r| r.clock == ClockDomain::Virtual);
        out.epoch = None;
        out
    }

    /// Prepends `prefix` to every metric name already recorded — for
    /// scoping a merged sub-trace's registry (e.g. a replay's
    /// `shard-0/commits` becoming `metis/k4/shard-0/commits`).
    pub fn prefix_metrics(&mut self, prefix: &str) {
        self.metrics.prefix_names(prefix);
    }

    /// Flat text dump of the metrics registry.
    pub fn metrics_text(&self) -> String {
        self.metrics.render_text()
    }

    pub(crate) fn process_names_for_export(&self) -> Vec<(u32, String)> {
        self.process_names
            .iter()
            .map(|(&p, n)| (p, n.clone()))
            .collect()
    }

    pub(crate) fn thread_names_for_export(&self) -> Vec<((u32, u32), String)> {
        self.thread_names
            .iter()
            .map(|(&lane, n)| (lane, n.clone()))
            .collect()
    }
}

impl Trace {
    /// Builds `prefix + name` in the reusable scratch buffer, so hot
    /// metric updates never allocate after the first occurrence.
    fn scoped(scratch: &mut String, prefix: &str, name: &str) {
        scratch.clear();
        scratch.push_str(prefix);
        scratch.push_str(name);
    }
}

impl Collector for Trace {
    fn enabled(&self) -> bool {
        self.enabled
    }

    fn events(&self) -> bool {
        self.enabled && self.events
    }

    fn now_us(&self) -> u64 {
        match self.epoch {
            Some(epoch) => epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    fn record(&mut self, mut record: Record) {
        if !(self.enabled && self.events) {
            return;
        }
        (record.process, record.thread) = self.lane;
        if let Some(clock) = self.clock {
            record.clock = clock;
        }
        self.records.push(record);
    }

    fn add(&mut self, counter: &str, by: u64) {
        if self.enabled {
            Self::scoped(&mut self.scratch, &self.metric_prefix, counter);
            self.metrics.add(&self.scratch, by);
        }
    }

    fn gauge(&mut self, name: &str, value: f64) {
        if self.enabled {
            Self::scoped(&mut self.scratch, &self.metric_prefix, name);
            self.metrics.gauge(&self.scratch, value);
        }
    }

    fn observe_us(&mut self, histogram: &str, value_us: u64) {
        if self.enabled {
            Self::scoped(&mut self.scratch, &self.metric_prefix, histogram);
            self.metrics.observe_us(&self.scratch, value_us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_keeps_nothing() {
        let mut t = Trace::disabled();
        t.span_at(0, 10, "stage", "x");
        t.add("c", 1);
        t.observe_us("h", 5);
        assert!(t.records().is_empty());
        assert!(t.metrics().is_empty());
        assert_eq!(t.now_us(), 0);
    }

    #[test]
    fn lane_and_clock_are_stamped() {
        let mut t = Trace::new_virtual();
        t.set_lane(3, 7);
        t.span_at(100, 50, "exec", "tx-1");
        let r = &t.records()[0];
        assert_eq!((r.process, r.thread), (3, 7));
        assert_eq!(r.clock, ClockDomain::Virtual);
        assert_eq!(r.dur_us, Some(50));
    }

    #[test]
    fn merge_sort_and_retag() {
        let mut a = Trace::new_virtual();
        a.set_lane(0, 0);
        a.instant_at(20, "event", "late");
        a.add("n", 1);

        let mut b = Trace::new_virtual();
        b.set_lane(0, 1);
        b.name_thread(0, 1, "shard-1");
        b.instant_at(10, "event", "early");
        b.add("n", 2);
        b.retag_process(5);

        a.merge(b);
        a.sort_by_time();
        assert_eq!(a.records()[0].name, "early");
        assert_eq!(a.records()[0].process, 5);
        assert_eq!(a.metrics().counter("n"), 3);
    }

    #[test]
    fn metric_prefix_scopes_names() {
        let mut t = Trace::new();
        t.set_metric_prefix("metis/k4/");
        t.add("commits", 2);
        assert_eq!(t.metrics().counter("metis/k4/commits"), 2);
        assert_eq!(t.metrics().counter("commits"), 0);
    }

    #[test]
    fn virtual_only_filters_wall_records() {
        let mut t = Trace::new();
        t.record(Record::span(0, 5, "stage", "wall-span"));
        let mut v = Trace::new_virtual();
        v.instant_at(3, "event", "virt");
        t.merge(v);
        let filtered = t.virtual_only();
        assert_eq!(filtered.records().len(), 1);
        assert_eq!(filtered.records()[0].name, "virt");
    }
}
