/root/repo/target/debug/deps/fig6-51ded47eb1d7cedd.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-51ded47eb1d7cedd.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
