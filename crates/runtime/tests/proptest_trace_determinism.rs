//! Property test: virtual-clock traces are byte-identical across worker
//! counts.
//!
//! The engine executes same-instant event batches either serially or on
//! one thread per shard, gated by `parallel_batch_threshold`. Forcing
//! the gate to its extremes (0 = always parallel, `usize::MAX` = always
//! serial, i.e. one worker) must not change a single byte of the
//! exported trace — the observability extension of the workspace's
//! existing worker-count determinism proptests.

use std::collections::HashMap;

use blockpart_ethereum::{ExecutedTx, Receipt, Transaction, TxPayload, TxStatus, World};
use blockpart_obs::perfetto;
use blockpart_runtime::{Assignment, RuntimeConfig, ShardedRuntime};
use blockpart_types::{Address, Gas, ShardCount, ShardId, Timestamp, Wei};
use proptest::collection::vec;
use proptest::prelude::*;

struct Workload {
    world: World,
    txs: Vec<ExecutedTx>,
    assignment: Assignment,
    seed: u64,
}

/// A conflict-heavy micro-workload: a small user pool (so transfers
/// collide), addresses spread over `k` shards by the generated map.
fn workload(k: u16, users: usize, pairs: &[(u64, u64)], shards: &[u64], seed: u64) -> Workload {
    let mut world = World::new();
    let addrs: Vec<Address> = (0..users)
        .map(|_| world.new_user(Wei::new(1_000)))
        .collect();
    let txs: Vec<ExecutedTx> = pairs
        .iter()
        .map(|&(f, t)| {
            let from = addrs[(f as usize) % addrs.len()];
            let to = addrs[(t as usize) % addrs.len()];
            let tx = Transaction {
                from,
                to,
                value: Wei::new(1),
                gas_limit: Gas::new(30_000),
                payload: TxPayload::Transfer,
            };
            let receipt = Receipt {
                status: TxStatus::Success,
                gas_used: Gas::new(21_000),
                calls: Vec::new(),
                created: Vec::new(),
            };
            ExecutedTx::new(Timestamp::from_secs(1), tx, &receipt)
        })
        .collect();
    let map: HashMap<Address, ShardId> = addrs
        .iter()
        .zip(shards)
        .map(|(&a, &s)| (a, ShardId::new((s % u64::from(k)) as u16)))
        .collect();
    let assignment = Assignment::from_map(map, ShardCount::new(k).unwrap());
    Workload {
        world,
        txs,
        assignment,
        seed,
    }
}

fn traced_run(w: &Workload, threshold: usize) -> (blockpart_runtime::RuntimeReport, String) {
    let cfg = RuntimeConfig::new(w.assignment.k())
        .with_seed(w.seed)
        .with_inter_arrival_us(100)
        .with_net_latency_us(800)
        .with_parallel_batch_threshold(threshold);
    let (report, trace) =
        ShardedRuntime::new(cfg, w.assignment.clone()).run_traced(&w.world, &w.txs);
    (report, perfetto::to_perfetto(&trace).render())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn trace_identical_across_worker_counts(
        k in 1u16..=4,
        users in 2usize..6,
        pairs in vec((0u64..64, 0u64..64), 2..16),
        shards in vec(0u64..4, 6),
        seed in 0u64..1_000,
    ) {
        let w = workload(k, users, &pairs, &shards, seed);
        // usize::MAX: every batch below threshold → one serial worker.
        let (serial_report, serial_trace) = traced_run(&w, usize::MAX);
        // 0: every multi-shard batch fans out to one thread per shard.
        let (parallel_report, parallel_trace) = traced_run(&w, 0);
        prop_assert_eq!(&serial_report, &parallel_report);
        prop_assert_eq!(serial_trace, parallel_trace);

        // Traced and untraced runs see the same execution.
        let cfg = RuntimeConfig::new(w.assignment.k())
            .with_seed(w.seed)
            .with_inter_arrival_us(100)
            .with_net_latency_us(800);
        let untraced = ShardedRuntime::new(cfg, w.assignment.clone()).run(&w.world, &w.txs);
        prop_assert_eq!(&untraced, &serial_report);

        // The abort-cause breakdown partitions aborted_rounds.
        let cause_sum: u64 = serial_report.abort_causes.values().sum();
        prop_assert_eq!(cause_sum, serial_report.aborted_rounds);
    }

    #[test]
    fn metered_run_matches_traced_metrics_without_records(
        pairs in vec((0u64..16, 0u64..16), 2..10),
        shards in vec(0u64..2, 6),
        seed in 0u64..1_000,
    ) {
        let w = workload(2, 4, &pairs, &shards, seed);
        let cfg = || RuntimeConfig::new(w.assignment.k())
            .with_seed(w.seed)
            .with_inter_arrival_us(100)
            .with_net_latency_us(800);
        let rt = ShardedRuntime::new(cfg(), w.assignment.clone());
        let (traced_report, traced) = rt.run_traced(&w.world, &w.txs);
        let (metered_report, metered) = rt.run_metered(&w.world, &w.txs);

        // same execution, same metrics — only the record stream differs
        prop_assert_eq!(&metered_report, &traced_report);
        prop_assert!(metered.records().is_empty());
        prop_assert!(!traced.records().is_empty());
        prop_assert_eq!(metered.metrics_text(), traced.metrics_text());
        prop_assert_eq!(
            metered.metrics().counter("shard-0/commits")
                + metered.metrics().counter("shard-1/commits"),
            metered_report.committed
        );
    }

    #[test]
    fn traced_rerun_is_byte_identical(
        pairs in vec((0u64..16, 0u64..16), 2..10),
        shards in vec(0u64..2, 6),
        seed in 0u64..1_000,
    ) {
        let w = workload(2, 4, &pairs, &shards, seed);
        let (_, first) = traced_run(&w, 32);
        let (_, second) = traced_run(&w, 32);
        prop_assert_eq!(first, second);
    }
}
