//! A minimal JSON document builder.
//!
//! The workspace builds fully offline, so `serde` is a no-op shim (see
//! `third_party/README.md`) and no `serde_json` exists. Reports that want
//! a machine-readable form build a [`Json`] tree by hand and render it;
//! the output is plain RFC 8259 JSON suitable for `jq` and CI diffing.
//!
//! # Examples
//!
//! ```
//! use blockpart_metrics::Json;
//!
//! let doc = Json::obj([
//!     ("name", Json::from("HASH")),
//!     ("k", Json::from(2u64)),
//!     ("cut", Json::from(0.5f64)),
//! ]);
//! assert_eq!(doc.render(), r#"{"name":"HASH","k":2,"cut":0.5}"#);
//! ```

/// A JSON value tree.
///
/// Equality is numeric across the two exact-integer variants: a JSON
/// number has no signedness, so `Json::Int(5) == Json::UInt(5)`. This
/// keeps parse/render round-trips stable — the parser normalises any
/// non-negative integer (including `-0`) to [`Json::UInt`], while builder
/// code may have produced the same number through `From<i64>`. Floats
/// ([`Json::Num`]) stay a distinct type: `Num(5.0)` renders as `5.0`, not
/// `5`, and never equals an integer variant.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer, rendered exactly.
    Int(i64),
    /// An unsigned integer, rendered exactly (no f64 precision loss).
    UInt(u64),
    /// A float. Non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders human/diff-friendly JSON with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let newline = |out: &mut String, depth: usize| {
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(f) if !f.is_finite() => out.push_str("null"),
            Json::Num(f) => {
                // Rust's shortest round-trip float formatting is valid
                // JSON except for integral values ("1" needs no ".0", but
                // emit it so consumers see a float-typed field)
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline(out, depth);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, depth + 1);
                    escape_into(key, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    newline(out, depth);
                }
                out.push('}');
            }
        }
    }
}

impl Json {
    /// Parses a JSON document (the inverse of
    /// [`render`](Self::render)/[`render_pretty`](Self::render_pretty)).
    ///
    /// Accepts everything the builder emits (and thus everything RFC
    /// 8259 requires of those documents), plus a few lenient forms a
    /// strict validator would reject — leading-zero numbers, trailing
    /// `1.`, raw control characters inside strings. Use a strict tool if
    /// validation, rather than recovery of a report, is the goal.
    ///
    /// Numbers parse as [`Json::UInt`]/[`Json::Int`] when they carry no
    /// fraction or exponent, [`Json::Num`] otherwise — matching what the
    /// builder emits. Duplicate object keys are kept in document order
    /// (lookups see the first).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    ///
    /// # Examples
    ///
    /// ```
    /// use blockpart_metrics::Json;
    ///
    /// let doc = Json::parse(r#"{"stage": "graph-build", "median_ms": 12.5}"#).unwrap();
    /// assert_eq!(doc.get("median_ms").and_then(Json::as_f64), Some(12.5));
    /// assert_eq!(doc.render(), r#"{"stage":"graph-build","median_ms":12.5}"#);
    /// ```
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.at));
        }
        Ok(value)
    }

    /// Looks up `key` in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float: `Num` directly, `Int`/`UInt` widened.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(f) => Some(f),
            Json::Int(i) => Some(i as f64),
            Json::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    /// The value as an unsigned integer (`UInt`, or non-negative `Int`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// `true` for [`Json::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

impl PartialEq for Json {
    fn eq(&self, other: &Json) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Num(a), Json::Num(b)) => a == b,
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            (Json::Int(a), Json::Int(b)) => a == b,
            (Json::UInt(a), Json::UInt(b)) => a == b,
            (Json::Int(i), Json::UInt(u)) | (Json::UInt(u), Json::Int(i)) => {
                u64::try_from(*i) == Ok(*u)
            }
            _ => false,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.at))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(literal.as_bytes()) {
            self.at += literal.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.at)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.at)),
            }
        }
    }

    /// Reads exactly four hex digits of a `\u` escape. Strict: the JSON
    /// grammar allows only `[0-9A-Fa-f]{4}`, so the `+`/`-`/whitespace
    /// leniency of `u32::from_str_radix` must not leak in.
    fn hex4(&mut self) -> Result<u32, String> {
        let digits = self
            .bytes
            .get(self.at..self.at + 4)
            .filter(|d| d.iter().all(u8::is_ascii_hexdigit))
            .ok_or_else(|| format!("bad \\u escape at byte {}", self.at))?;
        let mut code = 0u32;
        for &d in digits {
            let nibble = match d {
                b'0'..=b'9' => u32::from(d - b'0'),
                b'a'..=b'f' => u32::from(d - b'a') + 10,
                _ => u32::from(d.to_ascii_lowercase() - b'a') + 10,
            };
            code = code << 4 | nibble;
        }
        self.at += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.at;
            while let Some(&b) = self.bytes.get(self.at) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.at += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.at])
                    .map_err(|_| format!("invalid utf-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("unterminated escape at byte {}", self.at))?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: JSON encodes astral chars as
                            // two \u escapes.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.at..self.at + 2) != Some(b"\\u") {
                                    return Err(format!("unpaired surrogate at byte {}", self.at));
                                }
                                self.at += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(format!("unpaired surrogate at byte {}", self.at));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid code point at byte {}", self.at)
                            })?);
                        }
                        _ => return Err(format!("unknown escape at byte {}", self.at)),
                    }
                }
                _ => return Err(format!("unterminated string at byte {}", self.at)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let mut fractional = false;
        while let Some(&b) = self.bytes.get(self.at) {
            match b {
                b'0'..=b'9' => self.at += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        if !fractional {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                // Normalise `-0` (and any other non-negative spelling that
                // failed the u64 path) so reserialization is a fixed point.
                return Ok(match u64::try_from(i) {
                    Ok(u) => Json::UInt(u),
                    Err(_) => Json::Int(i),
                });
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(u64::from(v))
    }
}
impl From<u16> for Json {
    fn from(v: u16) -> Json {
        Json::UInt(u64::from(v))
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(42u64).render(), "42");
        assert_eq!(Json::from(-7i64).render(), "-7");
        assert_eq!(Json::from(0.5).render(), "0.5");
        assert_eq!(Json::from(3.0).render(), "3.0");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn large_u64_is_exact() {
        let v = u64::MAX;
        assert_eq!(Json::from(v).render(), v.to_string());
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::from("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn nested_structure() {
        let doc = Json::obj([
            ("xs", Json::arr([Json::from(1u64), Json::from(2u64)])),
            ("empty", Json::arr([])),
            ("o", Json::obj::<&str>([])),
        ]);
        assert_eq!(doc.render(), r#"{"xs":[1,2],"empty":[],"o":{}}"#);
    }

    #[test]
    fn parse_roundtrips_render() {
        let doc = Json::obj([
            ("name", Json::from("bench/\"quoted\"\n")),
            ("k", Json::from(8u64)),
            ("neg", Json::from(-3i64)),
            ("ms", Json::from(1.25)),
            ("whole", Json::from(3.0)),
            ("flag", Json::from(true)),
            ("nothing", Json::Null),
            ("xs", Json::arr([Json::from(1u64), Json::from(2u64)])),
            ("o", Json::obj([("inner", Json::arr([]))])),
        ]);
        for rendered in [doc.render(), doc.render_pretty()] {
            let parsed = Json::parse(&rendered).unwrap();
            assert_eq!(parsed, doc, "mismatch for {rendered}");
        }
    }

    #[test]
    fn parse_accessors() {
        let doc = Json::parse(r#"{"a": [1, -2, 2.5], "s": "x", "b": false, "n": null}"#).unwrap();
        let xs = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(xs[0].as_u64(), Some(1));
        assert_eq!(xs[1].as_f64(), Some(-2.0));
        assert_eq!(xs[2].as_f64(), Some(2.5));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("b").unwrap().as_bool(), Some(false));
        assert!(doc.get("n").unwrap().is_null());
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn parse_escapes_and_unicode() {
        let doc = Json::parse(r#""é\t\\\" 😀""#).unwrap();
        assert_eq!(doc.as_str(), Some("é\t\\\" 😀"));
    }

    #[test]
    fn parse_exponents_and_big_ints() {
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(
            Json::parse(&u64::MAX.to_string()).unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(Json::parse("-5").unwrap(), Json::Int(-5));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"unterminated",
            "{\"a\" 1}",
            "1 2",
            "{,}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_bad_surrogates_without_panicking() {
        // a high surrogate followed by anything but a low-surrogate
        // escape must be a parse error, not an arithmetic underflow
        let not_low = String::from("\"\\uD83D\\u0041\""); // \uD83D\u0041
        let bare = String::from("\"\\uD83D\"");
        let not_escape = String::from("\"\\uD83DA\"");
        for bad in [&not_low, &bare, &not_escape] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // a valid pair still decodes
        let pair = String::from("\"\\uD83D\\uDE00\"");
        assert_eq!(Json::parse(&pair).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn pretty_is_reparseable_shape() {
        let doc = Json::obj([("a", Json::arr([Json::from(1u64)]))]);
        let pretty = doc.render_pretty();
        assert!(pretty.contains("\n  \"a\": [\n"));
        // compact and pretty carry the same tokens
        let strip = |s: &str| s.replace([' ', '\n'], "");
        assert_eq!(strip(&pretty), strip(&doc.render()));
    }
}
