/root/repo/target/debug/examples/ico_dapp-de3853c8c429736e.d: examples/ico_dapp.rs Cargo.toml

/root/repo/target/debug/examples/libico_dapp-de3853c8c429736e.rmeta: examples/ico_dapp.rs Cargo.toml

examples/ico_dapp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
