//! Chain quantities: block numbers, currency and gas.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

macro_rules! quantity {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0);

            /// Creates the quantity from a raw `u64`.
            pub const fn new(value: u64) -> Self {
                $name(value)
            }

            /// The raw value.
            pub const fn get(self) -> u64 {
                self.0
            }

            /// Saturating subtraction.
            pub const fn saturating_sub(self, rhs: $name) -> $name {
                $name(self.0.saturating_sub(rhs.0))
            }

            /// Checked subtraction; `None` on underflow.
            pub const fn checked_sub(self, rhs: $name) -> Option<$name> {
                match self.0.checked_sub(rhs.0) {
                    Some(v) => Some($name(v)),
                    None => None,
                }
            }
        }

        impl Add for $name {
            type Output = $name;

            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;

            fn sub(self, rhs: $name) -> $name {
                $name(self.0.saturating_sub(rhs.0))
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|q| q.0).sum())
            }
        }

        impl From<u64> for $name {
            fn from(value: u64) -> Self {
                $name(value)
            }
        }
    };
}

quantity! {
    /// A block height in the chain.
    ///
    /// # Examples
    ///
    /// ```
    /// use blockpart_types::BlockNumber;
    ///
    /// let b = BlockNumber::new(10).next();
    /// assert_eq!(b.get(), 11);
    /// ```
    BlockNumber
}

quantity! {
    /// An amount of ether, in wei.
    ///
    /// # Examples
    ///
    /// ```
    /// use blockpart_types::Wei;
    ///
    /// let total: Wei = [Wei::new(1), Wei::new(2)].into_iter().sum();
    /// assert_eq!(total, Wei::new(3));
    /// assert_eq!(Wei::new(1).checked_sub(Wei::new(2)), None);
    /// ```
    Wei
}

quantity! {
    /// An amount of execution gas.
    ///
    /// Gas consumed by a vertex's transactions is the paper's notion of
    /// vertex "activity" and feeds the *dynamic* metrics.
    ///
    /// # Examples
    ///
    /// ```
    /// use blockpart_types::Gas;
    ///
    /// let g = Gas::new(21_000) + Gas::new(500);
    /// assert_eq!(g.get(), 21_500);
    /// ```
    Gas
}

impl BlockNumber {
    /// The genesis block.
    pub const GENESIS: BlockNumber = BlockNumber(0);

    /// The next block height.
    pub const fn next(self) -> BlockNumber {
        BlockNumber(self.0 + 1)
    }
}

impl fmt::Display for BlockNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl fmt::Display for Wei {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} wei", self.0)
    }
}

impl fmt::Display for Gas {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} gas", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_number_next() {
        assert_eq!(BlockNumber::GENESIS.next(), BlockNumber::new(1));
    }

    #[test]
    fn sub_saturates() {
        assert_eq!(Wei::new(1) - Wei::new(5), Wei::ZERO);
        assert_eq!(Gas::new(5) - Gas::new(1), Gas::new(4));
    }

    #[test]
    fn checked_sub() {
        assert_eq!(Wei::new(5).checked_sub(Wei::new(2)), Some(Wei::new(3)));
        assert_eq!(Wei::new(1).checked_sub(Wei::new(2)), None);
    }

    #[test]
    fn sum_and_add_assign() {
        let mut g = Gas::ZERO;
        g += Gas::new(10);
        let s: Gas = (0..5).map(Gas::new).sum();
        assert_eq!(g, Gas::new(10));
        assert_eq!(s, Gas::new(10));
    }

    #[test]
    fn displays() {
        assert_eq!(BlockNumber::new(3).to_string(), "#3");
        assert_eq!(Wei::new(3).to_string(), "3 wei");
        assert_eq!(Gas::new(3).to_string(), "3 gas");
    }
}
