/root/repo/target/debug/deps/fig1-3b0a4a7557c934de.d: crates/bench/src/bin/fig1.rs Cargo.toml

/root/repo/target/debug/deps/libfig1-3b0a4a7557c934de.rmeta: crates/bench/src/bin/fig1.rs Cargo.toml

crates/bench/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
