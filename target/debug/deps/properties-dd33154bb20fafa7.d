/root/repo/target/debug/deps/properties-dd33154bb20fafa7.d: tests/properties.rs

/root/repo/target/debug/deps/properties-dd33154bb20fafa7: tests/properties.rs

tests/properties.rs:
