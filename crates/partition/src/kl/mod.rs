//! Kernighan–Lin partitioning: the classic 1970 bisection heuristic and the
//! distributed shard/oracle variant evaluated by the paper.
//!
//! The paper's "KL" method (§II-C) is not the textbook algorithm run
//! centrally: each shard locally selects vertices whose move would reduce
//! edge-cut, an *oracle* gathers the proposals and computes a k×k
//! probability matrix that keeps shards balanced, and shards then exchange
//! vertices according to that matrix. [`DistributedKl`] implements exactly
//! that loop; [`kl_bisection_pass`] provides the textbook bisection pass, which is
//! also reused as an alternative refinement step in ablation benchmarks.

mod classic;
mod distributed;

pub use classic::{kl_bisection_pass, refine_bisection};
pub use distributed::{DistributedKl, DistributedKlConfig};
