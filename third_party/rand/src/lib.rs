//! Offline shim for the `rand` 0.8 API subset used by this workspace.
//!
//! Provides [`rngs::SmallRng`] (xoshiro256++ seeded through splitmix64),
//! the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits with `gen`,
//! `gen_range` and `gen_bool`, and [`seq::SliceRandom`] with `shuffle` and
//! `choose`. Everything is deterministic per seed; the statistical quality
//! of xoshiro256++ matches what the real `SmallRng` provides.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i32 => u32, i64 => u64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly over the type's full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_state(seed: u64) -> Self {
            // splitmix64 expansion, as rand does for small seeds
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng::from_state(seed)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::RngCore;

    /// Random-order operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(va[0], c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(2u16..=6);
            assert!((2..=6).contains(&w));
        }
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes_and_choose_samples() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
