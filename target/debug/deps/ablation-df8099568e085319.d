/root/repo/target/debug/deps/ablation-df8099568e085319.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-df8099568e085319: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
