/root/repo/target/debug/deps/generator-e5373aba3c476a75.d: crates/bench/benches/generator.rs Cargo.toml

/root/repo/target/debug/deps/libgenerator-e5373aba3c476a75.rmeta: crates/bench/benches/generator.rs Cargo.toml

crates/bench/benches/generator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
