/root/repo/target/debug/examples/quickstart-6a40a2b0559a82ec.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6a40a2b0559a82ec: examples/quickstart.rs

examples/quickstart.rs:
