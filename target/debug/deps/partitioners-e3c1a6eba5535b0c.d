/root/repo/target/debug/deps/partitioners-e3c1a6eba5535b0c.d: crates/bench/benches/partitioners.rs

/root/repo/target/debug/deps/libpartitioners-e3c1a6eba5535b0c.rmeta: crates/bench/benches/partitioners.rs

crates/bench/benches/partitioners.rs:
