//! Timestamped scalar series.

use blockpart_types::Timestamp;
use serde::{Deserialize, Serialize};

/// A time-ordered series of scalar samples — one line of the paper's
/// Fig. 3 plots.
///
/// # Examples
///
/// ```
/// use blockpart_metrics::TimeSeries;
/// use blockpart_types::Timestamp;
///
/// let mut s = TimeSeries::new("dynamic edge-cut");
/// s.push(Timestamp::from_secs(0), 0.5);
/// s.push(Timestamp::from_secs(100), 0.4);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.mean(), Some(0.45));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    points: Vec<(Timestamp, f64)>,
}

impl TimeSeries {
    /// Creates an empty named series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the last sample.
    pub fn push(&mut self, time: Timestamp, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(time >= last, "series must be appended in time order");
        }
        self.points.push((time, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All samples in time order.
    pub fn points(&self) -> &[(Timestamp, f64)] {
        &self.points
    }

    /// The raw values, losing timestamps.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// Samples within `start <= t < end`.
    pub fn slice(&self, start: Timestamp, end: Timestamp) -> &[(Timestamp, f64)] {
        let lo = self.points.partition_point(|&(t, _)| t < start);
        let hi = self.points.partition_point(|&(t, _)| t < end);
        &self.points[lo..hi]
    }

    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            None
        } else {
            Some(self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
        }
    }

    /// The final sample value; `None` when empty.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Serializes as `time_secs,value` CSV lines (no header).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for &(t, v) in &self.points {
            out.push_str(&format!("{},{v}\n", t.as_secs()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn push_and_query() {
        let mut s = TimeSeries::new("x");
        for i in 0..10 {
            s.push(t(i * 10), i as f64);
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.last(), Some(9.0));
        assert_eq!(s.mean(), Some(4.5));
        assert_eq!(s.name(), "x");
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn unordered_push_panics() {
        let mut s = TimeSeries::new("x");
        s.push(t(10), 1.0);
        s.push(t(5), 2.0);
    }

    #[test]
    fn slice_selects_window() {
        let mut s = TimeSeries::new("x");
        for i in 0..10 {
            s.push(t(i * 10), i as f64);
        }
        let w = s.slice(t(20), t(50));
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].1, 2.0);
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new("x");
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.last(), None);
        assert_eq!(s.to_csv(), "");
    }

    #[test]
    fn csv_format() {
        let mut s = TimeSeries::new("x");
        s.push(t(60), 0.25);
        assert_eq!(s.to_csv(), "60,0.25\n");
    }
}
