//! Graph algorithms used by the study: traversal, components, degree
//! statistics and neighbourhood extraction (for the paper's Fig. 2).

use std::collections::VecDeque;

use crate::csr::Csr;
use crate::graph::Graph;
use crate::node::NodeId;

/// Breadth-first search over the symmetric CSR from `start`, returning the
/// visit order.
///
/// # Panics
///
/// Panics if `start` is out of bounds.
///
/// # Examples
///
/// ```
/// use blockpart_graph::{algos, Csr};
///
/// let csr = Csr::from_edges(4, &[(0, 1, 1), (1, 2, 1)]);
/// let order = algos::bfs(&csr, 0);
/// assert_eq!(order, vec![0, 1, 2]); // vertex 3 unreachable
/// ```
pub fn bfs(csr: &Csr, start: usize) -> Vec<usize> {
    assert!(start < csr.node_count(), "start vertex out of bounds");
    let mut seen = vec![false; csr.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for (v, _) in csr.neighbors(u) {
            let v = v as usize;
            if !seen[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Labels connected components of the symmetric CSR.
///
/// Returns `(labels, component_count)`; labels are dense in
/// `0..component_count`, assigned in order of the smallest vertex in each
/// component.
///
/// # Examples
///
/// ```
/// use blockpart_graph::{algos, Csr};
///
/// let csr = Csr::from_edges(4, &[(0, 1, 1), (2, 3, 1)]);
/// let (labels, n) = algos::connected_components(&csr);
/// assert_eq!(n, 2);
/// assert_eq!(labels[0], labels[1]);
/// assert_ne!(labels[0], labels[2]);
/// ```
pub fn connected_components(csr: &Csr) -> (Vec<u32>, usize) {
    let n = csr.node_count();
    let mut labels = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for s in 0..n {
        if labels[s] != u32::MAX {
            continue;
        }
        labels[s] = next;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for (v, _) in csr.neighbors(u) {
                let v = v as usize;
                if labels[v] == u32::MAX {
                    labels[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (labels, next as usize)
}

/// Extracts the set of vertices within `hops` undirected hops of `start`.
///
/// Used to cut out presentation subgraphs like the paper's Fig. 2.
///
/// # Panics
///
/// Panics if `start` is out of bounds.
pub fn neighborhood(csr: &Csr, start: usize, hops: usize) -> Vec<usize> {
    assert!(start < csr.node_count(), "start vertex out of bounds");
    let mut dist = vec![usize::MAX; csr.node_count()];
    let mut queue = VecDeque::new();
    let mut out = vec![start];
    dist[start] = 0;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        if dist[u] == hops {
            continue;
        }
        for (v, _) in csr.neighbors(u) {
            let v = v as usize;
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                out.push(v);
                queue.push_back(v);
            }
        }
    }
    out
}

/// Summary of a graph's degree distribution.
///
/// # Examples
///
/// ```
/// use blockpart_graph::{algos, Csr};
///
/// let csr = Csr::from_edges(3, &[(0, 1, 1), (0, 2, 1)]);
/// let stats = algos::DegreeStats::of(&csr);
/// assert_eq!(stats.max, 2);
/// assert_eq!(stats.isolated, 0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Number of degree-0 vertices.
    pub isolated: usize,
}

impl DegreeStats {
    /// Computes degree statistics for `csr`.
    pub fn of(csr: &Csr) -> DegreeStats {
        let n = csr.node_count();
        if n == 0 {
            return DegreeStats::default();
        }
        let mut min = usize::MAX;
        let mut max = 0;
        let mut sum = 0usize;
        let mut isolated = 0;
        for v in 0..n {
            let d = csr.degree(v);
            min = min.min(d);
            max = max.max(d);
            sum += d;
            if d == 0 {
                isolated += 1;
            }
        }
        DegreeStats {
            min,
            max,
            mean: sum as f64 / n as f64,
            isolated,
        }
    }
}

/// PageRank over the symmetric CSR (weighted edges), with damping factor
/// `d` and `iterations` power-method steps.
///
/// Useful as an alternative importance weight for vertices: on blockchain
/// graphs it concentrates on the same hub contracts as raw activity but
/// discounts spam neighbours.
///
/// # Panics
///
/// Panics if `d` is outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use blockpart_graph::{algos, Csr};
///
/// // a star: the hub must out-rank every leaf
/// let edges: Vec<(u32, u32, u64)> = (1..6).map(|i| (0, i, 1)).collect();
/// let csr = Csr::from_edges(6, &edges);
/// let pr = algos::pagerank(&csr, 0.85, 30);
/// assert!(pr[0] > pr[1] * 2.0);
/// ```
pub fn pagerank(csr: &Csr, d: f64, iterations: usize) -> Vec<f64> {
    assert!(d > 0.0 && d < 1.0, "damping factor must lie in (0, 1)");
    let n = csr.node_count();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    let weighted_degree: Vec<u64> = (0..n).map(|v| csr.weighted_degree(v)).collect();
    for _ in 0..iterations {
        let mut dangling = 0.0;
        for x in next.iter_mut() {
            *x = 0.0;
        }
        for v in 0..n {
            if weighted_degree[v] == 0 {
                dangling += rank[v];
                continue;
            }
            let share = rank[v] / weighted_degree[v] as f64;
            for (u, w) in csr.neighbors(v) {
                next[u as usize] += share * w as f64;
            }
        }
        let teleport = (1.0 - d) * uniform + d * dangling * uniform;
        for x in next.iter_mut() {
            *x = teleport + d * *x;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// The local clustering coefficient of vertex `v` (fraction of neighbour
/// pairs that are themselves connected; 0 for degree < 2).
///
/// Blockchain graphs are famously *un*-clustered (users interact with hub
/// contracts, not each other), which is part of why hashing cuts ~1 − 1/k
/// of all edges.
///
/// # Panics
///
/// Panics if `v` is out of bounds.
///
/// # Examples
///
/// ```
/// use blockpart_graph::{algos, Csr};
///
/// let triangle = Csr::from_edges(3, &[(0, 1, 1), (1, 2, 1), (0, 2, 1)]);
/// assert_eq!(algos::clustering_coefficient(&triangle, 0), 1.0);
/// let path = Csr::from_edges(3, &[(0, 1, 1), (1, 2, 1)]);
/// assert_eq!(algos::clustering_coefficient(&path, 1), 0.0);
/// ```
pub fn clustering_coefficient(csr: &Csr, v: usize) -> f64 {
    let neighbors: Vec<u32> = csr.neighbors(v).map(|(u, _)| u).collect();
    let d = neighbors.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for (i, &a) in neighbors.iter().enumerate() {
        for &b in &neighbors[i + 1..] {
            // adjacency lists are sorted: binary search
            let row: Vec<u32> = csr.neighbors(a as usize).map(|(u, _)| u).collect();
            if row.binary_search(&b).is_ok() {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (d * (d - 1)) as f64
}

/// Returns the `k` vertices with the highest activity weight, heaviest
/// first (ties broken by node id).
///
/// # Examples
///
/// ```
/// use blockpart_graph::{algos, GraphBuilder};
/// use blockpart_types::Address;
///
/// let mut b = GraphBuilder::new();
/// b.add_interaction(Address::from_index(0), Address::from_index(1), 10);
/// b.add_interaction(Address::from_index(2), Address::from_index(1), 1);
/// let g = b.build();
/// let top = algos::top_k_by_weight(&g, 1);
/// assert_eq!(g.node_weight(top[0]), 11); // vertex 1 took part in 11 interactions
/// ```
pub fn top_k_by_weight(graph: &Graph, k: usize) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = graph.nodes().map(|n| n.id).collect();
    nodes.sort_by_key(|&n| (std::cmp::Reverse(graph.node_weight(n)), n));
    nodes.truncate(k);
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use blockpart_types::Address;

    fn path(n: usize) -> Csr {
        let edges: Vec<(u32, u32, u64)> = (0..n - 1).map(|i| (i as u32, i as u32 + 1, 1)).collect();
        Csr::from_edges(n, &edges)
    }

    #[test]
    fn bfs_visits_reachable_in_order() {
        let order = bfs(&path(5), 2);
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], 2);
        // neighbours of 2 come before vertices at distance 2
        assert!(order[1..3].contains(&1) && order[1..3].contains(&3));
    }

    #[test]
    fn components_on_disconnected_graph() {
        let csr = Csr::from_edges(6, &[(0, 1, 1), (1, 2, 1), (3, 4, 1)]);
        let (labels, n) = connected_components(&csr);
        assert_eq!(n, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[5], labels[3]);
    }

    #[test]
    fn components_of_empty_graph() {
        let (labels, n) = connected_components(&Csr::from_edges(0, &[]));
        assert!(labels.is_empty());
        assert_eq!(n, 0);
    }

    #[test]
    fn neighborhood_respects_hops() {
        let csr = path(10);
        let hood = neighborhood(&csr, 5, 2);
        let mut sorted = hood.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn neighborhood_zero_hops_is_self() {
        assert_eq!(neighborhood(&path(3), 1, 0), vec![1]);
    }

    #[test]
    fn degree_stats() {
        let csr = Csr::from_edges(4, &[(0, 1, 1), (0, 2, 1)]);
        let s = DegreeStats::of(&csr);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 2);
        assert_eq!(s.isolated, 1);
        assert!((s.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_empty() {
        assert_eq!(
            DegreeStats::of(&Csr::from_edges(0, &[])),
            DegreeStats::default()
        );
    }

    #[test]
    fn top_k_orders_by_weight() {
        let mut b = GraphBuilder::new();
        b.add_interaction(Address::from_index(0), Address::from_index(1), 5);
        b.add_interaction(Address::from_index(2), Address::from_index(3), 9);
        let g = b.build();
        let top = top_k_by_weight(&g, 2);
        assert_eq!(g.node_weight(top[0]), 9);
        assert_eq!(g.node_weight(top[1]), 9);
        let all = top_k_by_weight(&g, 100);
        assert_eq!(all.len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bfs_bad_start_panics() {
        let _ = bfs(&path(2), 5);
    }

    #[test]
    fn pagerank_sums_to_one() {
        let csr = Csr::from_edges(5, &[(0, 1, 1), (1, 2, 3), (3, 4, 1)]);
        let pr = pagerank(&csr, 0.85, 40);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "sum {total}");
        assert!(pr.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn pagerank_respects_edge_weights() {
        // vertex 1 receives a heavy edge, vertex 2 a light one
        let csr = Csr::from_edges(3, &[(0, 1, 9), (0, 2, 1)]);
        let pr = pagerank(&csr, 0.85, 40);
        assert!(pr[1] > pr[2]);
    }

    #[test]
    fn pagerank_empty_graph() {
        assert!(pagerank(&Csr::from_edges(0, &[]), 0.85, 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn pagerank_bad_damping_panics() {
        let _ = pagerank(&path(2), 1.0, 10);
    }

    #[test]
    fn clustering_of_partial_triangle() {
        // 0 connected to 1,2,3; only 1-2 closed: C(0) = 1/3
        let csr = Csr::from_edges(4, &[(0, 1, 1), (0, 2, 1), (0, 3, 1), (1, 2, 1)]);
        let c = clustering_coefficient(&csr, 0);
        assert!((c - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_isolated_vertex_is_zero() {
        let csr = Csr::from_edges(2, &[]);
        assert_eq!(clustering_coefficient(&csr, 0), 0.0);
    }
}
