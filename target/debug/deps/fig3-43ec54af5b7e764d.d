/root/repo/target/debug/deps/fig3-43ec54af5b7e764d.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-43ec54af5b7e764d: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
