//! Directory-level segment store: append, scan, prune, stream.

use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

use blockpart_graph::ooc::OocGraphBuilder;
use blockpart_graph::{Graph, Interaction, InteractionLog};
use blockpart_types::{BlockNumber, StorageBackend, Timestamp};

use crate::segment::{read_segment, read_segment_meta, write_segment, SegmentError, SegmentMeta};

/// Default number of events per segment: large enough to amortize framing,
/// small enough that one decoded segment is a few MiB resident.
pub const DEFAULT_SEGMENT_EVENTS: usize = 64 * 1024;

fn segment_file_name(index: usize) -> String {
    format!("seg-{index:06}.bpsg")
}

/// A disk-resident, append-only interaction log: an ordered sequence of
/// columnar segments (see [`crate::segment`]) under one directory.
///
/// The store is the out-of-core replacement for a resident
/// [`InteractionLog`]: the generator appends block batches through a
/// [`SegmentStoreWriter`], and consumers stream events back one segment
/// at a time, pruning whole segments against a time window via the
/// per-segment min/max metadata.
///
/// Memory contract: reading holds one decoded segment resident at a time
/// (`O(segment)`, not `O(log)`).
///
/// # Examples
///
/// ```
/// use blockpart_storage::SegmentStore;
/// use blockpart_graph::Interaction;
/// use blockpart_types::{Address, BlockNumber, Timestamp};
///
/// let dir = std::env::temp_dir().join("bpsg-doc-store");
/// let mut w = SegmentStore::writer(&dir, 4).unwrap();
/// for t in 0..10u64 {
///     w.push(
///         Interaction::new(
///             Timestamp::from_secs(t),
///             Address::from_index(t),
///             Address::from_index(t + 1),
///         ),
///         BlockNumber::new(t),
///     ).unwrap();
/// }
/// let store = w.finish().unwrap();
/// assert_eq!(store.event_count(), 10);
/// assert_eq!(store.segment_count(), 3); // 4 + 4 + 2
/// let total: usize = store.iter().unwrap().map(|e| e.map(|_| 1).unwrap()).sum();
/// assert_eq!(total, 10);
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    segments: Vec<(PathBuf, SegmentMeta)>,
    event_count: u64,
}

impl SegmentStore {
    /// Opens an existing store, scanning segment headers (not columns).
    ///
    /// Fails with the underlying [`SegmentError`] if any segment header
    /// is unreadable — a truncated tail segment surfaces here by name.
    pub fn open(dir: impl Into<PathBuf>) -> Result<SegmentStore, SegmentError> {
        let dir = dir.into();
        let mut names: Vec<PathBuf> = std::fs::read_dir(&dir)
            .map_err(SegmentError::Io)?
            .filter_map(|entry| {
                let path = entry.ok()?.path();
                let name = path.file_name()?.to_str()?;
                (name.starts_with("seg-") && name.ends_with(".bpsg")).then_some(path)
            })
            .collect();
        names.sort();
        let mut segments = Vec::with_capacity(names.len());
        let mut event_count = 0;
        for path in names {
            let meta = read_segment_meta(&path)?;
            event_count += meta.count;
            segments.push((path, meta));
        }
        Ok(SegmentStore {
            dir,
            segments,
            event_count,
        })
    }

    /// Starts writing a fresh store into `dir` (created if absent,
    /// existing segments removed), cutting segments every
    /// `events_per_segment` events.
    pub fn writer(
        dir: impl Into<PathBuf>,
        events_per_segment: usize,
    ) -> Result<SegmentStoreWriter, SegmentError> {
        SegmentStoreWriter::create(dir.into(), events_per_segment)
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total events across all segments.
    pub fn event_count(&self) -> u64 {
        self.event_count
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Per-segment metadata, in log order.
    pub fn segments(&self) -> impl Iterator<Item = &SegmentMeta> {
        self.segments.iter().map(|(_, m)| m)
    }

    /// The timestamp of the last event, if any.
    pub fn last_time(&self) -> Option<Timestamp> {
        self.segments
            .iter()
            .rev()
            .find(|(_, m)| m.count > 0)
            .map(|(_, m)| m.max_time)
    }

    /// Streams every event in log order, one decoded segment resident at
    /// a time.
    pub fn iter(&self) -> Result<EventStream<'_>, SegmentError> {
        self.stream(None)
    }

    /// Streams events with `start <= time < end`, skipping — without
    /// reading their columns — segments whose min/max metadata proves
    /// them disjoint from the window.
    pub fn iter_window(
        &self,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<EventStream<'_>, SegmentError> {
        self.stream(Some((start, end)))
    }

    fn stream(
        &self,
        window: Option<(Timestamp, Timestamp)>,
    ) -> Result<EventStream<'_>, SegmentError> {
        let picked: Vec<&(PathBuf, SegmentMeta)> = match window {
            None => self.segments.iter().collect(),
            Some((start, end)) => self
                .segments
                .iter()
                .filter(|(_, m)| !m.disjoint_from_window(start, end))
                .collect(),
        };
        Ok(EventStream {
            segments: picked,
            window,
            at: 0,
            current: Vec::new().into_iter(),
        })
    }

    /// Materializes the full log in RAM — the bridge back to resident
    /// consumers. `O(log)` memory; prefer [`iter`](Self::iter) at scale.
    pub fn load_log(&self) -> Result<InteractionLog, SegmentError> {
        let mut log = InteractionLog::new();
        for e in self.iter()? {
            log.push(e?);
        }
        Ok(log)
    }

    /// Builds the cumulative interaction graph from the stored stream,
    /// one segment at a time, under `backend`'s budget.
    ///
    /// Byte-identical to `InteractionLog::graph_of` over the same events
    /// (see the determinism contract in `blockpart_graph::ooc`). With an
    /// [`StorageBackend::InMemory`] backend the edge accumulation is
    /// unbounded but events still stream segment-at-a-time.
    pub fn build_graph(&self, backend: &StorageBackend) -> Result<Graph, SegmentError> {
        match backend {
            StorageBackend::InMemory => {
                let mut events = Vec::with_capacity(self.event_count as usize);
                for e in self.iter()? {
                    events.push(e?);
                }
                Ok(InteractionLog::graph_of(&events))
            }
            StorageBackend::Spill { .. } => {
                let mut b = OocGraphBuilder::new(backend).map_err(SegmentError::Io)?;
                for (path, _) in &self.segments {
                    let (_, events) =
                        read_segment(BufReader::new(File::open(path).map_err(SegmentError::Io)?))?;
                    b.push_chunk(&events).map_err(SegmentError::Io)?;
                }
                b.finish().map_err(SegmentError::Io)
            }
        }
    }

    /// Builds the *reduced* graph of events with `start <= time < end`,
    /// streaming only the segments that intersect the window.
    pub fn build_graph_window(
        &self,
        start: Timestamp,
        end: Timestamp,
        backend: &StorageBackend,
    ) -> Result<Graph, SegmentError> {
        match backend {
            StorageBackend::InMemory => {
                let mut events = Vec::new();
                for e in self.iter_window(start, end)? {
                    events.push(e?);
                }
                Ok(InteractionLog::graph_of(&events))
            }
            StorageBackend::Spill { .. } => {
                let mut b = OocGraphBuilder::new(backend).map_err(SegmentError::Io)?;
                for e in self.iter_window(start, end)? {
                    b.push(&e?).map_err(SegmentError::Io)?;
                }
                b.finish().map_err(SegmentError::Io)
            }
        }
    }
}

/// A streaming cursor over a [`SegmentStore`]: decodes one segment at a
/// time and yields its events, optionally filtered to a time window.
pub struct EventStream<'a> {
    segments: Vec<&'a (PathBuf, SegmentMeta)>,
    window: Option<(Timestamp, Timestamp)>,
    at: usize,
    current: std::vec::IntoIter<Interaction>,
}

impl Iterator for EventStream<'_> {
    type Item = Result<Interaction, SegmentError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            for e in self.current.by_ref() {
                match self.window {
                    None => return Some(Ok(e)),
                    Some((start, end)) => {
                        if e.time >= end {
                            // Segments are time-ordered; drain the rest of
                            // this segment (cheap) and let pruning skip
                            // later ones.
                            break;
                        }
                        if e.time >= start {
                            return Some(Ok(e));
                        }
                    }
                }
            }
            let (path, _) = self.segments.get(self.at)?;
            self.at += 1;
            let file = match File::open(path) {
                Ok(f) => f,
                Err(e) => return Some(Err(SegmentError::Io(e))),
            };
            match read_segment(BufReader::new(file)) {
                Ok((_, events)) => self.current = events.into_iter(),
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

/// Incremental writer producing a [`SegmentStore`]: buffers up to one
/// segment's worth of events (`O(segment)` resident), flushing each full
/// segment to disk with its min/max time and block metadata.
#[derive(Debug)]
pub struct SegmentStoreWriter {
    dir: PathBuf,
    events_per_segment: usize,
    buffer: Vec<Interaction>,
    min_block: BlockNumber,
    max_block: BlockNumber,
    next_index: usize,
    last_time: Option<Timestamp>,
}

/// A [`SegmentStoreWriter`] is a generator sink: each executed block's
/// events land in the store as they are produced, so chain generation at
/// any `--scale` keeps only one block plus one partial segment resident.
impl blockpart_ethereum::gen::BlockSink for SegmentStoreWriter {
    type Error = SegmentError;

    fn block(
        &mut self,
        summary: &blockpart_ethereum::BlockSummary,
        events: &[Interaction],
        _txs: &[blockpart_ethereum::ExecutedTx],
    ) -> Result<(), SegmentError> {
        self.push_block(summary.number, events)
    }
}

impl SegmentStoreWriter {
    fn create(dir: PathBuf, events_per_segment: usize) -> Result<SegmentStoreWriter, SegmentError> {
        std::fs::create_dir_all(&dir).map_err(SegmentError::Io)?;
        for entry in std::fs::read_dir(&dir).map_err(SegmentError::Io)? {
            let path = entry.map_err(SegmentError::Io)?.path();
            let stale = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".bpsg"));
            if stale {
                std::fs::remove_file(&path).map_err(SegmentError::Io)?;
            }
        }
        Ok(SegmentStoreWriter {
            dir,
            events_per_segment: events_per_segment.max(1),
            buffer: Vec::new(),
            min_block: BlockNumber::new(u64::MAX),
            max_block: BlockNumber::new(0),
            next_index: 0,
            last_time: None,
        })
    }

    /// Appends one event attributed to `block`.
    ///
    /// # Panics
    ///
    /// Panics if `event.time` regresses — the same time-order contract as
    /// [`InteractionLog::push`].
    pub fn push(&mut self, event: Interaction, block: BlockNumber) -> Result<(), SegmentError> {
        if let Some(last) = self.last_time {
            assert!(
                event.time >= last,
                "segment store must be appended in time order ({} < {})",
                event.time,
                last
            );
        }
        self.last_time = Some(event.time);
        if self.min_block > block {
            self.min_block = block;
        }
        if self.max_block < block {
            self.max_block = block;
        }
        self.buffer.push(event);
        if self.buffer.len() >= self.events_per_segment {
            self.flush_segment()?;
        }
        Ok(())
    }

    /// Appends a whole block's events.
    pub fn push_block(
        &mut self,
        block: BlockNumber,
        events: &[Interaction],
    ) -> Result<(), SegmentError> {
        for &e in events {
            self.push(e, block)?;
        }
        Ok(())
    }

    fn flush_segment(&mut self) -> Result<(), SegmentError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let path = self.dir.join(segment_file_name(self.next_index));
        let tmp = self
            .dir
            .join(format!("{}.tmp", segment_file_name(self.next_index)));
        let file = File::create(&tmp).map_err(SegmentError::Io)?;
        let mut out = std::io::BufWriter::new(file);
        let min_block = if self.min_block.get() == u64::MAX {
            BlockNumber::new(0)
        } else {
            self.min_block
        };
        write_segment(&mut out, &self.buffer, min_block, self.max_block)
            .map_err(SegmentError::Io)?;
        out.into_inner()
            .map_err(|e| SegmentError::Io(e.into()))?
            .sync_data()
            .map_err(SegmentError::Io)?;
        // Rename-into-place keeps a crashed writer from leaving a
        // half-written `seg-*.bpsg` that a later open would misread.
        std::fs::rename(&tmp, &path).map_err(SegmentError::Io)?;
        self.next_index += 1;
        self.buffer.clear();
        self.min_block = BlockNumber::new(u64::MAX);
        self.max_block = BlockNumber::new(0);
        Ok(())
    }

    /// Flushes the tail segment and reopens the directory as a store.
    pub fn finish(mut self) -> Result<SegmentStore, SegmentError> {
        self.flush_segment()?;
        SegmentStore::open(self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpart_types::Address;

    fn ev(t: u64) -> Interaction {
        Interaction::new(
            Timestamp::from_secs(t),
            Address::from_index(t % 13),
            Address::from_index((t + 1) % 13),
        )
    }

    fn temp_store(name: &str, n: u64, per_segment: usize) -> SegmentStore {
        let dir = std::env::temp_dir().join(format!("bpsg-store-{name}"));
        let mut w = SegmentStore::writer(&dir, per_segment).unwrap();
        for t in 0..n {
            w.push(ev(t), BlockNumber::new(t / 10)).unwrap();
        }
        w.finish().unwrap()
    }

    fn cleanup(store: SegmentStore) {
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn write_read_roundtrip() {
        let store = temp_store("roundtrip", 1000, 128);
        assert_eq!(store.event_count(), 1000);
        assert_eq!(store.segment_count(), 8); // ceil(1000/128)
        let events: Vec<Interaction> = store.iter().unwrap().map(|e| e.unwrap()).collect();
        assert_eq!(events.len(), 1000);
        assert_eq!(events, (0..1000).map(ev).collect::<Vec<_>>());
        assert_eq!(store.last_time(), Some(Timestamp::from_secs(999)));
        cleanup(store);
    }

    #[test]
    fn reopen_matches_writer_view() {
        let store = temp_store("reopen", 300, 64);
        let reopened = SegmentStore::open(store.dir()).unwrap();
        assert_eq!(reopened.event_count(), 300);
        assert_eq!(reopened.segment_count(), store.segment_count());
        cleanup(store);
    }

    #[test]
    fn window_iteration_prunes_and_filters() {
        let store = temp_store("window", 1000, 100);
        let t = Timestamp::from_secs;
        let picked: Vec<Interaction> = store
            .iter_window(t(250), t(320))
            .unwrap()
            .map(|e| e.unwrap())
            .collect();
        assert_eq!(picked.len(), 70);
        assert_eq!(picked.first().unwrap().time, t(250));
        assert_eq!(picked.last().unwrap().time, t(319));
        // Pruning must refuse clearly-disjoint windows without decoding.
        assert_eq!(store.iter_window(t(5000), t(6000)).unwrap().count(), 0);
        cleanup(store);
    }

    #[test]
    fn graph_from_store_matches_resident_both_backends() {
        let store = temp_store("graphs", 2000, 256);
        let log = store.load_log().unwrap();
        let resident = InteractionLog::graph_of(log.events());
        let via_mem = store.build_graph(&StorageBackend::InMemory).unwrap();
        let spill = StorageBackend::spill(std::env::temp_dir().join("bpsg-store-spill"), 256);
        let via_spill = store.build_graph(&spill).unwrap();
        for g in [&via_mem, &via_spill] {
            assert_eq!(g.node_count(), resident.node_count());
            assert_eq!(g.edge_count(), resident.edge_count());
            assert_eq!(g.total_edge_weight(), resident.total_edge_weight());
            assert!(g.edges().zip(resident.edges()).all(|(a, b)| a == b));
        }
        let t = Timestamp::from_secs;
        let win_resident = log.graph_window(t(100), t(900));
        let win_spill = store.build_graph_window(t(100), t(900), &spill).unwrap();
        assert_eq!(win_spill.edge_count(), win_resident.edge_count());
        assert_eq!(
            win_spill.total_edge_weight(),
            win_resident.total_edge_weight()
        );
        cleanup(store);
    }

    #[test]
    fn rewrite_of_read_store_is_lossless() {
        let store = temp_store("rewrite-src", 500, 64);
        let dir2 = std::env::temp_dir().join("bpsg-store-rewrite-dst");
        let mut w = SegmentStore::writer(&dir2, 90).unwrap();
        // Re-attribute blocks from segment metadata bounds: re-writing
        // what we read must preserve every event and the time metadata.
        for e in store.iter().unwrap() {
            let e = e.unwrap();
            w.push(e, BlockNumber::new(e.time.as_secs() / 10)).unwrap();
        }
        let copy = w.finish().unwrap();
        let a: Vec<Interaction> = store.iter().unwrap().map(|e| e.unwrap()).collect();
        let b: Vec<Interaction> = copy.iter().unwrap().map(|e| e.unwrap()).collect();
        assert_eq!(a, b);
        assert_eq!(store.last_time(), copy.last_time());
        cleanup(copy);
        cleanup(store);
    }

    #[test]
    fn truncated_tail_segment_detected_on_open() {
        let store = temp_store("truncate", 200, 50);
        let dir = store.dir().to_path_buf();
        let last = dir.join(segment_file_name(3));
        let bytes = std::fs::read(&last).unwrap();
        std::fs::write(&last, &bytes[..bytes.len() / 2]).unwrap();
        // Header still intact: open() succeeds, the read names the error.
        let reopened = SegmentStore::open(&dir).unwrap();
        let err = reopened
            .iter()
            .unwrap()
            .find_map(|r| r.err())
            .expect("truncated segment must surface an error");
        assert!(matches!(err, SegmentError::Truncated { .. }), "got {err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_panics() {
        let dir = std::env::temp_dir().join("bpsg-store-order");
        let mut w = SegmentStore::writer(&dir, 10).unwrap();
        w.push(ev(10), BlockNumber::new(0)).unwrap();
        let result = w.push(ev(5), BlockNumber::new(0));
        let _ = result;
    }
}
