/root/repo/target/release/deps/blockpart_partition-23e690f37dadddc7.d: crates/partition/src/lib.rs crates/partition/src/hashing.rs crates/partition/src/kl/mod.rs crates/partition/src/kl/classic.rs crates/partition/src/kl/distributed.rs crates/partition/src/metrics.rs crates/partition/src/multilevel/mod.rs crates/partition/src/multilevel/coarsen.rs crates/partition/src/multilevel/initial.rs crates/partition/src/multilevel/matching.rs crates/partition/src/multilevel/refine.rs crates/partition/src/partition.rs crates/partition/src/streaming.rs crates/partition/src/traits.rs

/root/repo/target/release/deps/libblockpart_partition-23e690f37dadddc7.rlib: crates/partition/src/lib.rs crates/partition/src/hashing.rs crates/partition/src/kl/mod.rs crates/partition/src/kl/classic.rs crates/partition/src/kl/distributed.rs crates/partition/src/metrics.rs crates/partition/src/multilevel/mod.rs crates/partition/src/multilevel/coarsen.rs crates/partition/src/multilevel/initial.rs crates/partition/src/multilevel/matching.rs crates/partition/src/multilevel/refine.rs crates/partition/src/partition.rs crates/partition/src/streaming.rs crates/partition/src/traits.rs

/root/repo/target/release/deps/libblockpart_partition-23e690f37dadddc7.rmeta: crates/partition/src/lib.rs crates/partition/src/hashing.rs crates/partition/src/kl/mod.rs crates/partition/src/kl/classic.rs crates/partition/src/kl/distributed.rs crates/partition/src/metrics.rs crates/partition/src/multilevel/mod.rs crates/partition/src/multilevel/coarsen.rs crates/partition/src/multilevel/initial.rs crates/partition/src/multilevel/matching.rs crates/partition/src/multilevel/refine.rs crates/partition/src/partition.rs crates/partition/src/streaming.rs crates/partition/src/traits.rs

crates/partition/src/lib.rs:
crates/partition/src/hashing.rs:
crates/partition/src/kl/mod.rs:
crates/partition/src/kl/classic.rs:
crates/partition/src/kl/distributed.rs:
crates/partition/src/metrics.rs:
crates/partition/src/multilevel/mod.rs:
crates/partition/src/multilevel/coarsen.rs:
crates/partition/src/multilevel/initial.rs:
crates/partition/src/multilevel/matching.rs:
crates/partition/src/multilevel/refine.rs:
crates/partition/src/partition.rs:
crates/partition/src/streaming.rs:
crates/partition/src/traits.rs:
