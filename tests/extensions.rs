//! Integration tests for the extensions beyond the paper: cost models,
//! streaming partitioners, concentration metrics and the mempool.

use blockpart::core::ablation::offline_partitioner_comparison;
use blockpart::core::{Method, Study};
use blockpart::ethereum::gen::{ChainGenerator, GeneratorConfig};
use blockpart::ethereum::{Transaction, TxPayload, TxPool};
use blockpart::metrics::{gini, top_share, LogHistogram};
use blockpart::shard::{CostModel, CrossShardMode};
use blockpart::types::{Address, Gas, ShardCount, Wei};

fn history() -> &'static blockpart::ethereum::SyntheticChain {
    static H: std::sync::OnceLock<blockpart::ethereum::SyntheticChain> = std::sync::OnceLock::new();
    H.get_or_init(|| ChainGenerator::new(GeneratorConfig::test_scale(55)).generate())
}

#[test]
fn cost_model_prefers_better_partitioning() {
    let chain = history();
    let k = ShardCount::new(4).expect("4");
    let result = Study::new(&chain.log)
        .methods(vec![Method::Hash, Method::Metis])
        .shard_counts(vec![k])
        .run();

    // pick a capacity that saturates a single machine, so sharding can
    // actually show a speed-up
    let mean_events = {
        let r = result.get(Method::Hash, k).expect("ran");
        let active: Vec<_> = r.windows.iter().filter(|w| w.events > 0).collect();
        active.iter().map(|w| w.events).sum::<usize>() as f64 / active.len().max(1) as f64
    };
    let model = CostModel {
        shard_capacity: mean_events / 2.0,
        mode: CrossShardMode::Coordinate {
            coordination_factor: 3.0,
        },
        ..CostModel::default()
    };
    let hash = model.run_summary(result.get(Method::Hash, k).expect("ran"), 4);
    let metis = model.run_summary(result.get(Method::Metis, k).expect("ran"), 4);
    // METIS's lower cut must translate into lower bottleneck load per
    // offered transaction — the point of the cost model. (Balance skew
    // can eat some of the advantage, so compare load, not speedup.)
    assert!(
        metis.bottleneck_load < hash.bottleneck_load * 1.05,
        "metis load {} vs hash {}",
        metis.bottleneck_load,
        hash.bottleneck_load
    );
    // the paper's central pitfall, quantified: neither a cut-heavy nor a
    // balance-skewed partition reaches the ideal k× speed-up — and a
    // poorly partitioned system can land *below* one machine
    assert!(hash.speedup < 4.0, "hash speedup {}", hash.speedup);
    assert!(metis.speedup < 4.0, "metis speedup {}", metis.speedup);
    assert!(
        hash.speedup < 1.5,
        "cut-heavy hashing should barely beat one machine: {}",
        hash.speedup
    );
}

#[test]
fn streaming_partitioners_beat_hash_on_real_workload() {
    let chain = history();
    let rows = offline_partitioner_comparison(&chain.log, ShardCount::TWO);
    let cut = |name: &str| {
        rows.iter()
            .find(|(n, _)| n == name)
            .map(|(_, m)| m.dynamic_edge_cut)
            .expect("present")
    };
    // both streaming partitioners exploit locality hashing cannot
    assert!(
        cut("ldg") < cut("hash"),
        "ldg {} hash {}",
        cut("ldg"),
        cut("hash")
    );
    assert!(cut("fennel") < cut("hash"));
    // and every method produces a total partition
    for (name, m) in &rows {
        assert!(m.static_balance >= 1.0 - 1e-9, "{name}");
        assert!((0.0..=1.0).contains(&m.dynamic_edge_cut), "{name}");
    }
}

#[test]
fn activity_is_heavy_tailed_by_every_measure() {
    let chain = history();
    let end = chain.log.last_time().expect("events");
    let graph = chain.log.graph_until(end);
    let activities: Vec<u64> = graph.nodes().map(|n| n.weight).collect();

    let g = gini(&activities).expect("non-empty");
    assert!(
        g > 0.5,
        "blockchain activity should be concentrated: gini {g}"
    );

    // threshold calibrated to the deterministic offline RNG stream; the
    // concentration itself (top 1% ≫ 1% of activity) is what matters
    let share = top_share(&activities, 0.01).expect("non-empty");
    assert!(
        share > 0.15,
        "top 1% should carry a large share of activity: {share}"
    );

    let hist: LogHistogram = activities.iter().copied().collect();
    assert!(
        hist.max() > (hist.mean() as u64) * 20,
        "no hubs in histogram"
    );
}

#[test]
fn mempool_feeds_chain_blocks() {
    let mut chain = blockpart::ethereum::Chain::new(5);
    let mut log = blockpart::graph::InteractionLog::new();
    let users: Vec<Address> = (0..10)
        .map(|_| chain.world_mut().new_user(Wei::new(1_000_000)))
        .collect();

    let mut pool = TxPool::new();
    for (i, &u) in users.iter().enumerate() {
        pool.submit(
            Transaction {
                from: u,
                to: users[(i + 1) % users.len()],
                value: Wei::new(10),
                gas_limit: Gas::new(21_000),
                payload: TxPayload::Transfer,
            },
            Wei::new(1 + i as u64), // later users bid more
        );
    }
    // block gas limit fits 4 transfers: the 4 best-paying get in
    let block_txs = pool.draft_block(Gas::new(4 * 21_000));
    assert_eq!(block_txs.len(), 4);
    assert_eq!(pool.len(), 6);
    let summary = chain.apply_block(
        blockpart::types::Timestamp::from_secs(15),
        block_txs,
        &mut log,
    );
    assert_eq!(summary.tx_count, 4);
    assert_eq!(summary.failed, 0);
    assert_eq!(log.len(), 4);
    // the included senders are the highest bidders (users 6..9)
    for e in log.events() {
        let idx = users.iter().position(|&u| u == e.from).expect("known");
        assert!(idx >= 6, "low bidder {idx} included");
    }
}

#[test]
fn gas_schedule_fork_changes_costs() {
    use blockpart::ethereum::evm::{ExecContext, GasSchedule, Vm};
    use blockpart::ethereum::{ContractTemplate, World};
    use blockpart::types::Timestamp;

    // the crowdsale performs a CALL: pre-fork it is 40 gas, post-fork 700
    let run = |schedule: GasSchedule| {
        let mut world = World::new();
        let user = world.new_user(Wei::new(1_000_000));
        let token = world.create_contract(ContractTemplate::Token, user, 0);
        let sale = world.create_contract(ContractTemplate::Crowdsale, user, 0);
        world.storage_store(sale, 0, user.index());
        world.storage_store(sale, 1, token.index());
        let tx = Transaction {
            from: user,
            to: sale,
            value: Wei::new(10),
            gas_limit: Gas::new(1_000_000),
            payload: TxPayload::Call { arg: 0 },
        };
        let ctx =
            ExecContext::new(Timestamp::from_secs(1), 1, tx.gas_limit).with_schedule(schedule);
        Vm::execute(&mut world, &tx, &ctx).gas_used
    };
    let pre = run(GasSchedule::frontier());
    let post = run(GasSchedule::eip150());
    // the execution performs one CALL (+660) and four SLOADs (+150 each)
    assert_eq!(post.get() - pre.get(), 660 + 4 * 150, "{pre} -> {post}");
}
