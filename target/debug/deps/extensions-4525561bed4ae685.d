/root/repo/target/debug/deps/extensions-4525561bed4ae685.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-4525561bed4ae685: tests/extensions.rs

tests/extensions.rs:
