/root/repo/target/debug/deps/blockpart_types-a3d86c38bcc5a9b1.d: crates/types/src/lib.rs crates/types/src/address.rs crates/types/src/quantity.rs crates/types/src/shard.rs crates/types/src/time.rs

/root/repo/target/debug/deps/libblockpart_types-a3d86c38bcc5a9b1.rmeta: crates/types/src/lib.rs crates/types/src/address.rs crates/types/src/quantity.rs crates/types/src/shard.rs crates/types/src/time.rs

crates/types/src/lib.rs:
crates/types/src/address.rs:
crates/types/src/quantity.rs:
crates/types/src/shard.rs:
crates/types/src/time.rs:
