/root/repo/target/debug/deps/blockpart-d4f1c1dbf79b3e95.d: src/lib.rs

/root/repo/target/debug/deps/blockpart-d4f1c1dbf79b3e95: src/lib.rs

src/lib.rs:
