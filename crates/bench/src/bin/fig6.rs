//! Regenerates **Fig. 6** (an extension beyond the paper): the
//! execution-level cost of each partitioning method — throughput,
//! cross-shard ratio, 2PC abort rate and commit latency versus shard
//! count, measured by replaying the full history through the sharded
//! two-phase-commit runtime.
//!
//! Shapes to look for: hashing's cross-shard ratio approaches `1 − 1/k`,
//! so its latency and abort rate climb with k while delivered throughput
//! stalls; the METIS family keeps most transactions single-shard and
//! converts its lower edge-cut into lower p99 latency and higher
//! throughput.

use blockpart_bench::{generate_history, seed_from_env};
use blockpart_core::{runtime_table, Method, RuntimeStudy};
use blockpart_types::ShardCount;

fn main() {
    let chain = generate_history();
    let ks: Vec<ShardCount> = [1u16, 2, 4, 8]
        .iter()
        .map(|&k| ShardCount::new(k).expect("non-zero"))
        .collect();
    let methods = vec![Method::Hash, Method::Metis, Method::TrMetis];
    let result = RuntimeStudy::new(&chain)
        .methods(methods)
        .shard_counts(ks)
        .seed(seed_from_env())
        .run();

    println!("\n## Fig. 6 — execution cost vs shard count (2PC runtime)\n");
    println!("{}", runtime_table(&result.runs).render_ascii());

    // headline cross-checks (printed, not asserted: scales vary)
    let cross = |m, k: u16| {
        ShardCount::new(k)
            .and_then(|k| result.get(m, k))
            .map(|r| r.cross_shard_ratio)
            .unwrap_or(f64::NAN)
    };
    let tps = |m, k: u16| {
        ShardCount::new(k)
            .and_then(|k| result.get(m, k))
            .map(|r| r.throughput_tps)
            .unwrap_or(f64::NAN)
    };
    println!(
        "hash cross-ratio growth with k : {:.2} -> {:.2} -> {:.2}",
        cross(Method::Hash, 2),
        cross(Method::Hash, 4),
        cross(Method::Hash, 8)
    );
    println!(
        "metis advantage at k=4        : cross {:.2} vs hash {:.2}, {:.0} vs {:.0} tx/s",
        cross(Method::Metis, 4),
        cross(Method::Hash, 4),
        tps(Method::Metis, 4),
        tps(Method::Hash, 4)
    );
}
