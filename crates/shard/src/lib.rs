//! The sharding simulator: streams a blockchain interaction log through a
//! sharded system, places new vertices, triggers repartitions and records
//! the paper's metrics per measurement window.
//!
//! The five methods of the paper map onto simulator configurations:
//!
//! | method    | partitioner           | placement | policy               | scope  |
//! |-----------|-----------------------|-----------|----------------------|--------|
//! | HASH      | [`HashPartitioner`]   | `Hash`    | `Never`              | —      |
//! | KL        | [`DistributedKl`]     | `Hash`    | `Periodic` (2 weeks) | `Full` |
//! | METIS     | [`MultilevelPartitioner`] | `MinCut` | `Periodic`        | `Full` |
//! | R-METIS   | [`MultilevelPartitioner`] | `MinCut` | `Periodic`        | `Window` (2 weeks) |
//! | TR-METIS  | [`MultilevelPartitioner`] | `MinCut` | `Threshold`       | `Window` |
//!
//! # Examples
//!
//! ```
//! use blockpart_ethereum::gen::{ChainGenerator, GeneratorConfig};
//! use blockpart_partition::HashPartitioner;
//! use blockpart_shard::{PlacementRule, RepartitionPolicy, ShardSimulator, SimulatorConfig};
//! use blockpart_types::ShardCount;
//!
//! let chain = ChainGenerator::new(GeneratorConfig::test_scale(1)).generate();
//! let cfg = SimulatorConfig::new(ShardCount::TWO)
//!     .with_placement(PlacementRule::Hash)
//!     .with_policy(RepartitionPolicy::Never);
//! let mut sim = ShardSimulator::new(cfg, Box::new(HashPartitioner::new()));
//! let result = sim.run(&chain.log);
//! assert!(result.windows.len() > 10);
//! assert_eq!(result.total_moves, 0); // hashing never moves a vertex
//! ```
//!
//! [`HashPartitioner`]: blockpart_partition::HashPartitioner
//! [`DistributedKl`]: blockpart_partition::DistributedKl
//! [`MultilevelPartitioner`]: blockpart_partition::MultilevelPartitioner

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
mod delta;
mod placement;
mod policy;
mod simulator;
mod state;
mod window;

pub use cost::{CostModel, CrossShardMode};
pub use delta::{AssignmentDelta, MigrationBatch};
pub use placement::PlacementRule;
pub use policy::{RepartitionPolicy, RepartitionScope};
pub use simulator::{ShardSimulator, SimulationResult, SimulatorConfig, WindowRecord};
pub use state::ShardedState;
pub use window::WindowedGraph;

pub use blockpart_types::{ShardCount, ShardId};
