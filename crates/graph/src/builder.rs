//! Incremental construction of blockchain graphs, plus the sharded
//! parallel bulk-build path used by the hot `InteractionLog` entry points.

use std::collections::HashMap;

use blockpart_types::{resolve_workers, AccountKind, Address};

use crate::csr::{edge_key, merge_sorted_shards};
use crate::event::Interaction;
use crate::graph::Graph;
use crate::node::NodeId;

/// Below this many events the parallel build's thread and merge overhead
/// outweighs its speedup; fall back to the incremental builder.
const PARALLEL_EVENT_THRESHOLD: usize = 8_192;

/// One worker's accumulation: a sorted `(edge_key, weight)` shard plus
/// the chunk's sparse activity-weight contributions (`vertex, weight`).
/// Sparse because a chunk touches only its own addresses — dense
/// per-worker vectors would cost O(workers · V) peak memory.
type EdgeWeightShard = (Vec<(u64, u64)>, Vec<(u32, u64)>);

/// Builds the graph of a time-ordered slice of interactions on `workers`
/// threads (`0` = automatic).
///
/// This is the bulk counterpart of feeding an [`GraphBuilder`] one event
/// at a time, and it produces **byte-identical** output for every worker
/// count (including the sequential fallback):
///
/// 1. each worker interns the addresses of one contiguous event chunk in
///    local first-appearance order; merging the chunk lists in chunk
///    order reproduces the global first-appearance numbering exactly;
/// 2. each worker accumulates a private adjacency map and activity-weight
///    vector over its chunk (sums are order-independent);
/// 3. the per-worker maps are drained into sorted edge shards and merged
///    row-by-row into the CSR arrays by a parallel pass over row ranges.
pub(crate) fn graph_of_events(events: &[Interaction], workers: usize) -> Graph {
    // An explicit worker request is honoured even on tiny inputs (the
    // determinism tests rely on it); automatic selection applies the
    // overhead threshold.
    let auto = workers == 0;
    let workers = resolve_workers(workers);
    if workers == 1 || events.is_empty() || (auto && events.len() < PARALLEL_EVENT_THRESHOLD) {
        let mut b = GraphBuilder::new();
        for e in events {
            b.touch(e.from, e.from_kind);
            b.touch(e.to, e.to_kind);
            b.add_interaction(e.from, e.to, e.weight);
        }
        return b.build();
    }

    let chunks: Vec<&[Interaction]> = events.chunks(events.len().div_ceil(workers)).collect();

    // ---- Phase 1: chunk-local interning, merged in chunk order ----------
    let mut locals: Vec<Option<Vec<(Address, bool)>>> = Vec::new();
    locals.resize_with(chunks.len(), || None);
    crossbeam::thread::scope(|scope| {
        for (slot, chunk) in locals.iter_mut().zip(&chunks) {
            scope.spawn(move |_| {
                let mut seen: HashMap<Address, usize> = HashMap::new();
                let mut order: Vec<(Address, bool)> = Vec::new();
                let mut note = |address: Address, kind: AccountKind| match seen.entry(address) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        order[*e.get()].1 |= kind.is_contract();
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(order.len());
                        order.push((address, kind.is_contract()));
                    }
                };
                for e in *chunk {
                    note(e.from, e.from_kind);
                    note(e.to, e.to_kind);
                }
                *slot = Some(order);
            });
        }
    })
    .expect("interning worker panicked");

    let mut index: HashMap<Address, NodeId> = HashMap::new();
    let mut addresses: Vec<Address> = Vec::new();
    let mut contract: Vec<bool> = Vec::new();
    for local in locals.into_iter().map(|l| l.expect("chunk interned")) {
        for (address, is_contract) in local {
            match index.entry(address) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    contract[e.get().index()] |= is_contract;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    let id = NodeId::new(
                        u32::try_from(addresses.len()).expect("graph exceeds u32 vertex capacity"),
                    );
                    e.insert(id);
                    addresses.push(address);
                    contract.push(is_contract);
                }
            }
        }
    }
    let n = addresses.len();

    // ---- Phase 2: sharded edge + weight accumulation --------------------
    let mut shards: Vec<Option<EdgeWeightShard>> = Vec::new();
    shards.resize_with(chunks.len(), || None);
    let index_ref = &index;
    crossbeam::thread::scope(|scope| {
        for (slot, chunk) in shards.iter_mut().zip(&chunks) {
            scope.spawn(move |_| {
                let mut adjacency: HashMap<u64, u64> = HashMap::new();
                let mut weights: HashMap<u32, u64> = HashMap::new();
                for e in *chunk {
                    let u = index_ref[&e.from].as_u32();
                    let v = index_ref[&e.to].as_u32();
                    *weights.entry(u).or_insert(0) += e.weight;
                    if u == v {
                        continue;
                    }
                    *weights.entry(v).or_insert(0) += e.weight;
                    *adjacency.entry(edge_key(u, v)).or_insert(0) += e.weight;
                }
                let mut sorted: Vec<(u64, u64)> = adjacency.into_iter().collect();
                sorted.sort_unstable_by_key(|&(k, _)| k);
                *slot = Some((sorted, weights.into_iter().collect()));
            });
        }
    })
    .expect("edge accumulation worker panicked");
    let (edge_shards, weight_shards): (Vec<_>, Vec<_>) = shards
        .into_iter()
        .map(|s| s.expect("chunk accumulated"))
        .unzip();

    // ---- Phase 3: parallel CSR merge ------------------------------------
    let (offsets, raw_targets, edge_weights) = merge_sorted_shards(n, &edge_shards, workers);

    // Scatter the sparse weight contributions; indexed u64 addition is
    // commutative, so the shard order cannot affect the result.
    let mut weights = vec![0u64; n];
    for shard in &weight_shards {
        for &(u, w) in shard {
            weights[u as usize] += w;
        }
    }

    let kinds: Vec<AccountKind> = contract
        .iter()
        .map(|&c| {
            if c {
                AccountKind::Contract
            } else {
                AccountKind::ExternallyOwned
            }
        })
        .collect();
    let total_edge_weight = edge_weights.iter().sum();
    let targets: Vec<NodeId> = raw_targets.into_iter().map(NodeId::new).collect();
    Graph::from_parts(
        addresses,
        kinds,
        weights,
        offsets,
        targets,
        edge_weights,
        total_edge_weight,
        index,
    )
}

/// Builds a [`Graph`] by accumulating interactions between addresses.
///
/// Addresses are interned to dense [`NodeId`]s in first-appearance order.
/// Parallel edges merge by summing their weights — the paper's edge weight
/// is exactly "how many times this interaction happened". Vertex weights
/// accumulate *activity* (by default, one unit per interaction endpoint;
/// callers may add extra weight, e.g. gas consumed).
///
/// # Examples
///
/// ```
/// use blockpart_graph::GraphBuilder;
/// use blockpart_types::Address;
///
/// let mut b = GraphBuilder::new();
/// let (u, v) = (Address::from_index(0), Address::from_index(1));
/// b.add_interaction(u, v, 1);
/// b.add_interaction(u, v, 2); // merges into one edge of weight 3
/// let g = b.build();
/// assert_eq!(g.edge_count(), 1);
/// assert_eq!(g.total_edge_weight(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    index: HashMap<Address, NodeId>,
    addresses: Vec<Address>,
    kinds: Vec<AccountKind>,
    weights: Vec<u64>,
    /// Per-source adjacency: target -> accumulated weight.
    adjacency: Vec<HashMap<NodeId, u64>>,
    edge_count: usize,
    total_edge_weight: u64,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder sized for roughly `nodes` vertices.
    pub fn with_capacity(nodes: usize) -> Self {
        GraphBuilder {
            index: HashMap::with_capacity(nodes),
            addresses: Vec::with_capacity(nodes),
            kinds: Vec::with_capacity(nodes),
            weights: Vec::with_capacity(nodes),
            adjacency: Vec::with_capacity(nodes),
            edge_count: 0,
            total_edge_weight: 0,
        }
    }

    /// Number of interned vertices so far.
    pub fn node_count(&self) -> usize {
        self.addresses.len()
    }

    /// Number of distinct directed edges so far.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Interns `address`, marking it as `kind`, and returns its node id.
    ///
    /// A vertex first seen as [`AccountKind::ExternallyOwned`] is upgraded
    /// to [`AccountKind::Contract`] if later touched as a contract (the
    /// reverse never happens: contracts cannot become accounts).
    pub fn touch(&mut self, address: Address, kind: AccountKind) -> NodeId {
        let id = self.intern(address);
        if kind.is_contract() {
            self.kinds[id.index()] = AccountKind::Contract;
        }
        id
    }

    /// Looks up the node id of `address` without interning it.
    pub fn node_of(&self, address: Address) -> Option<NodeId> {
        self.index.get(&address).copied()
    }

    /// Adds `extra` activity weight to `address` (interning it if new).
    pub fn add_node_weight(&mut self, address: Address, extra: u64) -> NodeId {
        let id = self.intern(address);
        self.weights[id.index()] += extra;
        id
    }

    /// Records `count` interactions from `from` to `to`.
    ///
    /// Both endpoints gain `count` units of activity weight; the directed
    /// edge weight increases by `count`. Self-interactions are recorded on
    /// the vertex weight but produce no edge (the partition metrics ignore
    /// self-loops — a self-call can never cross shards).
    pub fn add_interaction(&mut self, from: Address, to: Address, count: u64) {
        let u = self.intern(from);
        let v = self.intern(to);
        self.weights[u.index()] += count;
        if u == v {
            return;
        }
        self.weights[v.index()] += count;
        let slot = self.adjacency[u.index()].entry(v);
        match slot {
            std::collections::hash_map::Entry::Occupied(mut e) => *e.get_mut() += count,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(count);
                self.edge_count += 1;
            }
        }
        self.total_edge_weight += count;
    }

    /// Freezes the builder into an immutable [`Graph`].
    ///
    /// Adjacency lists are sorted by target id so iteration order is
    /// deterministic regardless of hash-map insertion order.
    pub fn build(self) -> Graph {
        let n = self.addresses.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(self.edge_count);
        let mut edge_weights = Vec::with_capacity(self.edge_count);
        offsets.push(0usize);
        for adj in &self.adjacency {
            let mut row: Vec<(NodeId, u64)> = adj.iter().map(|(&t, &w)| (t, w)).collect();
            row.sort_unstable_by_key(|&(t, _)| t);
            for (t, w) in row {
                targets.push(t);
                edge_weights.push(w);
            }
            offsets.push(targets.len());
        }
        Graph::from_parts(
            self.addresses,
            self.kinds,
            self.weights,
            offsets,
            targets,
            edge_weights,
            self.total_edge_weight,
            self.index,
        )
    }

    fn intern(&mut self, address: Address) -> NodeId {
        if let Some(&id) = self.index.get(&address) {
            return id;
        }
        let id = NodeId::new(
            u32::try_from(self.addresses.len()).expect("graph exceeds u32 vertex capacity"),
        );
        self.index.insert(address, id);
        self.addresses.push(address);
        self.kinds.push(AccountKind::ExternallyOwned);
        self.weights.push(0);
        self.adjacency.push(HashMap::new());
        id
    }
}

impl Extend<(Address, Address, u64)> for GraphBuilder {
    fn extend<I: IntoIterator<Item = (Address, Address, u64)>>(&mut self, iter: I) {
        for (from, to, count) in iter {
            self.add_interaction(from, to, count);
        }
    }
}

impl FromIterator<(Address, Address, u64)> for GraphBuilder {
    fn from_iter<I: IntoIterator<Item = (Address, Address, u64)>>(iter: I) -> Self {
        let mut b = GraphBuilder::new();
        b.extend(iter);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    #[test]
    fn interning_is_first_appearance_order() {
        let mut b = GraphBuilder::new();
        b.add_interaction(addr(10), addr(20), 1);
        b.add_interaction(addr(30), addr(10), 1);
        let g = b.build();
        assert_eq!(g.address(NodeId::new(0)), addr(10));
        assert_eq!(g.address(NodeId::new(1)), addr(20));
        assert_eq!(g.address(NodeId::new(2)), addr(30));
    }

    #[test]
    fn parallel_edges_merge() {
        let mut b = GraphBuilder::new();
        b.add_interaction(addr(0), addr(1), 1);
        b.add_interaction(addr(0), addr(1), 4);
        assert_eq!(b.edge_count(), 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.total_edge_weight(), 5);
    }

    #[test]
    fn self_loop_only_adds_vertex_weight() {
        let mut b = GraphBuilder::new();
        b.add_interaction(addr(0), addr(0), 3);
        let g = b.build();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_weight(NodeId::new(0)), 3);
    }

    #[test]
    fn kind_upgrade_is_one_way() {
        let mut b = GraphBuilder::new();
        let a = addr(7);
        b.touch(a, AccountKind::ExternallyOwned);
        b.touch(a, AccountKind::Contract);
        b.touch(a, AccountKind::ExternallyOwned); // must not downgrade
        let g = b.build();
        assert_eq!(g.kind(NodeId::new(0)), AccountKind::Contract);
    }

    #[test]
    fn activity_counts_both_endpoints() {
        let mut b = GraphBuilder::new();
        b.add_interaction(addr(0), addr(1), 2);
        let g = b.build();
        assert_eq!(g.node_weight(NodeId::new(0)), 2);
        assert_eq!(g.node_weight(NodeId::new(1)), 2);
    }

    #[test]
    fn collect_from_iterator() {
        let b: GraphBuilder = vec![(addr(0), addr(1), 1u64), (addr(1), addr(2), 2)]
            .into_iter()
            .collect();
        let g = b.build();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn adjacency_is_sorted() {
        let mut b = GraphBuilder::new();
        b.add_interaction(addr(0), addr(9), 1);
        b.add_interaction(addr(0), addr(5), 1);
        b.add_interaction(addr(0), addr(7), 1);
        let g = b.build();
        let ts: Vec<u32> = g
            .out_edges(NodeId::new(0))
            .map(|e| e.target.as_u32())
            .collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted);
    }
}
