//! Criterion benchmark of the synthetic chain generator (transactions
//! executed through the EVM per second).

use blockpart_ethereum::gen::{ChainGenerator, GeneratorConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");
    group.sample_size(10);
    for &scale in &[0.005f64, 0.02] {
        // measure throughput in generated interactions
        let probe =
            ChainGenerator::new(GeneratorConfig::test_scale(5).with_scale(scale)).generate();
        group.throughput(Throughput::Elements(probe.log.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("test-timeline", scale),
            &scale,
            |b, &scale| {
                b.iter(|| {
                    ChainGenerator::new(GeneratorConfig::test_scale(5).with_scale(scale)).generate()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generator);
criterion_main!(benches);
