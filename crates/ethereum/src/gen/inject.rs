//! Adversarial traffic injectors.
//!
//! The friendly era timeline reproduces Ethereum's organic growth; the
//! paper's headline anomalies are everything *else* — the 2016
//! dummy-account attack, the 2017 ICO hub contracts, and their modern
//! descendants (MEV bundles, account-abstraction batches, NFT mint
//! stampedes). A [`TrafficInjector`] is a deterministic, seedable source
//! of extra transactions appended to every generated block: the organic
//! workload is untouched (same RNG stream, same transaction count), the
//! injector's traffic rides on top. Scenario specs in `blockpart-core`
//! compose these injectors into named, parameterized workloads.
//!
//! Determinism contract: an injector's per-block output depends only on
//! the block time, the organic transaction count and its own RNG/carry
//! state — never on world or population *contents* — so composing
//! injectors adds their transaction counts exactly.

use blockpart_types::{Address, Gas, Timestamp, Wei};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::gen::workload::Population;
use crate::program::ContractTemplate;
use crate::state::World;
use crate::transaction::{Transaction, TxPayload};

/// Gas budget for injected transactions (matches the organic workload).
const INJECT_GAS: u64 = 400_000;

/// Balance handed to accounts an injector mints for itself.
const INJECT_ENDOWMENT: u64 = 1_000_000;

/// The half-open time window `[start, end)` an injector is active in.
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::gen::Span;
/// use blockpart_types::Timestamp;
///
/// let span = Span::new(Timestamp::from_secs(10), Timestamp::from_secs(20));
/// assert!(span.contains(Timestamp::from_secs(10)));
/// assert!(!span.contains(Timestamp::from_secs(20)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// First instant the injector fires (inclusive).
    pub start: Timestamp,
    /// First instant past the active window (exclusive).
    pub end: Timestamp,
}

impl Span {
    /// Builds a span; `end <= start` yields an empty (never-active) span.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        Span { start, end }
    }

    /// Whether `t` falls inside the span.
    pub fn contains(self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// Span length in seconds (0 for empty spans).
    pub fn secs(self) -> u64 {
        self.end.as_secs().saturating_sub(self.start.as_secs())
    }
}

/// Fractional-rate accumulator: turns a real-valued per-block expectation
/// into integer counts whose sum tracks the expectation exactly (the same
/// floor-plus-carry scheme the organic generator uses).
#[derive(Clone, Debug, Default)]
pub struct Pacer {
    carry: f64,
}

impl Pacer {
    /// Creates a pacer with zero carry.
    pub fn new() -> Self {
        Pacer::default()
    }

    /// Consumes an expectation of `expected` events and returns the
    /// integer count to emit now, carrying the fraction forward.
    pub fn count(&mut self, expected: f64) -> usize {
        let total = expected.max(0.0) + self.carry;
        let n = total.floor();
        self.carry = total - n;
        n as usize
    }
}

/// Derives an injector-private RNG seed from the chain seed and a stable
/// tag, so every injector draws from an independent stream (FNV-1a over
/// the tag, mixed with the base seed).
pub fn derive_seed(base: u64, tag: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in tag.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ base.rotate_left(17)
}

/// Per-block context handed to [`TrafficInjector::inject`].
pub struct InjectCtx<'a> {
    /// Mutable world: injectors mint their own accounts and contracts
    /// here (never through the shared population).
    pub world: &'a mut World,
    /// Read-only organic population, for sampling victim/counterparty
    /// accounts with the injector's own RNG.
    pub population: &'a Population,
    /// The block timestamp.
    pub now: Timestamp,
    /// How many organic transactions this block carries; injector volume
    /// scales off this so `intensity` reads as a fraction of organic load.
    pub organic: usize,
}

/// A deterministic source of extra transactions appended to each block.
///
/// Implementations must honor the module-level determinism contract:
/// output depends only on `(now, organic)` and own state, so the same
/// seed always produces the same traffic and composition is additive.
pub trait TrafficInjector: Send + std::fmt::Debug {
    /// Returns the transactions to append to the block at `ctx.now`.
    fn inject(&mut self, ctx: &mut InjectCtx<'_>) -> Vec<Transaction>;
}

/// An ICO hub: one beneficiary, one token, one crowdsale wired together.
#[derive(Clone, Copy, Debug)]
struct Hub {
    sale: Address,
}

/// Deploys a wired crowdsale hub (owner + token + sale with slots 0/1
/// pointing at them) and returns it.
fn deploy_hub(world: &mut World) -> Hub {
    let owner = world.new_user(Wei::new(INJECT_ENDOWMENT));
    let token = world.create_contract(ContractTemplate::Token, owner, owner.index());
    let sale = world.create_contract(ContractTemplate::Crowdsale, owner, 0);
    world.storage_store(sale, 0, owner.index());
    world.storage_store(sale, 1, token.index());
    Hub { sale }
}

/// Samples an organic user, or mints a fresh endowed one when the
/// population is still empty or the fresh-account roll hits.
fn sample_or_mint(rng: &mut SmallRng, ctx: &mut InjectCtx<'_>, p_fresh: f64) -> Address {
    if !rng.gen_bool(p_fresh.clamp(0.0, 0.999_999)) {
        if let Some(u) = ctx.population.sample_user(rng) {
            return u;
        }
    }
    ctx.world.new_user(Wei::new(INJECT_ENDOWMENT))
}

/// 2017-style ICO/token-mint burst: a handful of crowdsale hubs absorb a
/// large share of all traffic. Each contribution fans out through the
/// crowdsale program (contributor → sale → beneficiary → token), so the
/// hubs become high-degree vertices no static cut can isolate.
#[derive(Debug)]
pub struct HubBurstInjector {
    span: Span,
    contracts: usize,
    intensity: f64,
    rng: SmallRng,
    pacer: Pacer,
    hubs: Vec<Hub>,
}

impl HubBurstInjector {
    /// Creates the injector: `contracts` hubs, emitting
    /// `intensity × organic` extra transactions per block inside `span`.
    pub fn new(seed: u64, span: Span, contracts: usize, intensity: f64) -> Self {
        HubBurstInjector {
            span,
            contracts: contracts.max(1),
            intensity: intensity.max(0.0),
            rng: SmallRng::seed_from_u64(derive_seed(seed, "hub-burst")),
            pacer: Pacer::new(),
            hubs: Vec::new(),
        }
    }

    /// Picks a hub with geometric bias toward the first (hottest) hub.
    fn pick_hub(&mut self) -> Hub {
        let mut i = 0;
        while i + 1 < self.hubs.len() && self.rng.gen_bool(0.35) {
            i += 1;
        }
        self.hubs[i]
    }
}

impl TrafficInjector for HubBurstInjector {
    fn inject(&mut self, ctx: &mut InjectCtx<'_>) -> Vec<Transaction> {
        if !self.span.contains(ctx.now) {
            return Vec::new();
        }
        if self.hubs.is_empty() {
            for _ in 0..self.contracts {
                self.hubs.push(deploy_hub(ctx.world));
            }
        }
        let n = self.pacer.count(ctx.organic as f64 * self.intensity);
        let mut txs = Vec::with_capacity(n);
        for _ in 0..n {
            let from = sample_or_mint(&mut self.rng, ctx, 0.25);
            let hub = self.pick_hub();
            txs.push(Transaction {
                from,
                to: hub.sale,
                value: Wei::new(self.rng.gen_range(100..50_000)),
                gas_limit: Gas::new(INJECT_GAS),
                payload: TxPayload::Call { arg: 0 },
            });
        }
        txs
    }
}

/// 2016-style dummy-account spam: every transaction comes from a fresh,
/// never-reused account, half of them also minting a fresh recipient —
/// the vertex-count inflation that breaks METIS's balance constraint.
#[derive(Debug)]
pub struct DummySpamInjector {
    span: Span,
    intensity: f64,
    rng: SmallRng,
    pacer: Pacer,
}

impl DummySpamInjector {
    /// Creates the injector, emitting `intensity × organic` spam
    /// transactions per block inside `span`.
    pub fn new(seed: u64, span: Span, intensity: f64) -> Self {
        DummySpamInjector {
            span,
            intensity: intensity.max(0.0),
            rng: SmallRng::seed_from_u64(derive_seed(seed, "dummy-spam")),
            pacer: Pacer::new(),
        }
    }
}

impl TrafficInjector for DummySpamInjector {
    fn inject(&mut self, ctx: &mut InjectCtx<'_>) -> Vec<Transaction> {
        if !self.span.contains(ctx.now) {
            return Vec::new();
        }
        let n = self.pacer.count(ctx.organic as f64 * self.intensity);
        let mut txs = Vec::with_capacity(n);
        for _ in 0..n {
            let from = ctx.world.new_user(Wei::new(1_000));
            let to = if self.rng.gen_bool(0.5) {
                ctx.world.new_user(Wei::ZERO)
            } else {
                // attach noise edges to the organic graph, like the
                // EXTCODESIZE spam did
                sample_or_mint(&mut self.rng, ctx, 0.0)
            };
            txs.push(Transaction {
                from,
                to,
                value: Wei::new(1),
                gas_limit: Gas::new(INJECT_GAS),
                payload: TxPayload::Transfer,
            });
        }
        txs
    }
}

/// DEX/arbitrage bundle traffic: a small fleet of searcher bots emits
/// bundles of consecutive same-sender transactions that each touch
/// several pool contracts, stitching the pools together through the bots
/// (the mempool idiom of MEV searchers).
#[derive(Debug)]
pub struct DexArbInjector {
    span: Span,
    pools: usize,
    bundle: usize,
    intensity: f64,
    rng: SmallRng,
    pacer: Pacer,
    bots: Vec<Address>,
    pool_addrs: Vec<Address>,
}

impl DexArbInjector {
    /// Bot fleet size (fixed; the interesting knob is `pools`).
    const BOTS: usize = 8;

    /// Creates the injector: `pools` pool contracts, bundles of `bundle`
    /// transactions, total volume `intensity × organic` per block.
    pub fn new(seed: u64, span: Span, pools: usize, bundle: usize, intensity: f64) -> Self {
        DexArbInjector {
            span,
            pools: pools.max(2),
            bundle: bundle.max(2),
            intensity: intensity.max(0.0),
            rng: SmallRng::seed_from_u64(derive_seed(seed, "dex-arb")),
            pacer: Pacer::new(),
            bots: Vec::new(),
            pool_addrs: Vec::new(),
        }
    }
}

impl TrafficInjector for DexArbInjector {
    fn inject(&mut self, ctx: &mut InjectCtx<'_>) -> Vec<Transaction> {
        if !self.span.contains(ctx.now) {
            return Vec::new();
        }
        if self.bots.is_empty() {
            for _ in 0..Self::BOTS {
                self.bots
                    .push(ctx.world.new_user(Wei::new(INJECT_ENDOWMENT)));
            }
            for i in 0..self.pools {
                let deployer = self.bots[i % self.bots.len()];
                let pool =
                    ctx.world
                        .create_contract(ContractTemplate::Token, deployer, deployer.index());
                self.pool_addrs.push(pool);
            }
        }
        let bundles = self
            .pacer
            .count(ctx.organic as f64 * self.intensity / self.bundle as f64);
        let mut txs = Vec::with_capacity(bundles * self.bundle);
        for _ in 0..bundles {
            let bot = self.bots[self.rng.gen_range(0..self.bots.len())];
            let start = self.rng.gen_range(0..self.pool_addrs.len());
            let stride = 1 + self.rng.gen_range(0..self.pool_addrs.len() - 1);
            for leg in 0..self.bundle {
                let pool = self.pool_addrs[(start + leg * stride) % self.pool_addrs.len()];
                txs.push(Transaction {
                    from: bot,
                    to: pool,
                    value: Wei::ZERO,
                    gas_limit: Gas::new(INJECT_GAS),
                    payload: TxPayload::Call { arg: bot.index() },
                });
            }
        }
        txs
    }
}

/// Account-abstraction batched user-ops: a few bundler accounts relay
/// batches of operations through their entry-point wallet contracts to
/// destinations all over the organic population — the bundlers and
/// entry points become super-hubs touching everything.
#[derive(Debug)]
pub struct AaBatchInjector {
    span: Span,
    bundlers: usize,
    batch: usize,
    intensity: f64,
    rng: SmallRng,
    pacer: Pacer,
    entry_points: Vec<(Address, Address)>,
}

impl AaBatchInjector {
    /// Creates the injector: `bundlers` bundler/entry-point pairs,
    /// batches of `batch` user-ops, total volume `intensity × organic`.
    pub fn new(seed: u64, span: Span, bundlers: usize, batch: usize, intensity: f64) -> Self {
        AaBatchInjector {
            span,
            bundlers: bundlers.max(1),
            batch: batch.max(1),
            intensity: intensity.max(0.0),
            rng: SmallRng::seed_from_u64(derive_seed(seed, "aa-batch")),
            pacer: Pacer::new(),
            entry_points: Vec::new(),
        }
    }
}

impl TrafficInjector for AaBatchInjector {
    fn inject(&mut self, ctx: &mut InjectCtx<'_>) -> Vec<Transaction> {
        if !self.span.contains(ctx.now) {
            return Vec::new();
        }
        if self.entry_points.is_empty() {
            for _ in 0..self.bundlers {
                let bundler = ctx.world.new_user(Wei::new(INJECT_ENDOWMENT));
                let wallet =
                    ctx.world
                        .create_contract(ContractTemplate::Wallet, bundler, bundler.index());
                self.entry_points.push((bundler, wallet));
            }
        }
        let batches = self
            .pacer
            .count(ctx.organic as f64 * self.intensity / self.batch as f64);
        let mut txs = Vec::with_capacity(batches * self.batch);
        for _ in 0..batches {
            let (bundler, wallet) =
                self.entry_points[self.rng.gen_range(0..self.entry_points.len())];
            for _ in 0..self.batch {
                let dest = sample_or_mint(&mut self.rng, ctx, 0.10);
                txs.push(Transaction {
                    from: bundler,
                    to: wallet,
                    value: Wei::new(self.rng.gen_range(100..5_000)),
                    gas_limit: Gas::new(INJECT_GAS),
                    payload: TxPayload::Call { arg: dest.index() },
                });
            }
        }
        txs
    }
}

/// NFT mint stampede: short drop windows inside the span during which a
/// crowd of mostly-fresh accounts hammers one fresh mint contract — an
/// extreme time-concentrated hub that appears out of nowhere.
#[derive(Debug)]
pub struct NftMintInjector {
    span: Span,
    drops: usize,
    intensity: f64,
    rng: SmallRng,
    pacer: Pacer,
    minted: Vec<Option<Address>>,
}

impl NftMintInjector {
    /// Creates the injector: `drops` evenly spaced drop windows, each
    /// emitting `intensity × organic` mint transactions per block while
    /// open.
    pub fn new(seed: u64, span: Span, drops: usize, intensity: f64) -> Self {
        let drops = drops.max(1);
        NftMintInjector {
            span,
            drops,
            intensity: intensity.max(0.0),
            rng: SmallRng::seed_from_u64(derive_seed(seed, "nft-mint")),
            pacer: Pacer::new(),
            minted: vec![None; drops],
        }
    }

    /// Returns the index of the drop whose window contains `t`, if any.
    /// Each drop occupies the first eighth of its slice of the span.
    fn active_drop(&self, t: Timestamp) -> Option<usize> {
        if !self.span.contains(t) {
            return None;
        }
        let slice = self.span.secs() / self.drops as u64;
        if slice == 0 {
            return None;
        }
        let offset = t.as_secs() - self.span.start.as_secs();
        let drop = (offset / slice).min(self.drops as u64 - 1) as usize;
        let into = offset - drop as u64 * slice;
        // a drop window is short — the first eighth of the slice (but at
        // least one block wide, which `max(1)` on the comparison ensures
        // when slices are tiny)
        if into <= (slice / 8).max(1) {
            Some(drop)
        } else {
            None
        }
    }
}

impl TrafficInjector for NftMintInjector {
    fn inject(&mut self, ctx: &mut InjectCtx<'_>) -> Vec<Transaction> {
        let Some(drop) = self.active_drop(ctx.now) else {
            return Vec::new();
        };
        let mint = match self.minted[drop] {
            Some(addr) => addr,
            None => {
                let deployer = ctx.world.new_user(Wei::new(INJECT_ENDOWMENT));
                let addr =
                    ctx.world
                        .create_contract(ContractTemplate::Token, deployer, deployer.index());
                self.minted[drop] = Some(addr);
                addr
            }
        };
        let n = self.pacer.count(ctx.organic as f64 * self.intensity);
        let mut txs = Vec::with_capacity(n);
        for _ in 0..n {
            let minter = sample_or_mint(&mut self.rng, ctx, 0.60);
            txs.push(Transaction {
                from: minter,
                to: mint,
                value: Wei::ZERO,
                gas_limit: Gas::new(INJECT_GAS),
                payload: TxPayload::Call {
                    arg: minter.index(),
                },
            });
        }
        txs
    }
}

/// Phase-shifting hub mix: the span is cut into equal phases, and on
/// entering each phase a brand-new crowdsale hub is deployed and receives
/// *all* the burst traffic, abandoning the previous hub — the workload
/// whose optimal partition keeps moving, designed to stress threshold-
/// triggered repartitioning.
#[derive(Debug)]
pub struct PhaseShiftInjector {
    span: Span,
    phases: usize,
    intensity: f64,
    rng: SmallRng,
    pacer: Pacer,
    current: Option<(usize, Hub)>,
}

impl PhaseShiftInjector {
    /// Creates the injector: `phases` hub generations across `span`,
    /// emitting `intensity × organic` transactions per block.
    pub fn new(seed: u64, span: Span, phases: usize, intensity: f64) -> Self {
        PhaseShiftInjector {
            span,
            phases: phases.max(1),
            intensity: intensity.max(0.0),
            rng: SmallRng::seed_from_u64(derive_seed(seed, "phase-shift")),
            pacer: Pacer::new(),
            current: None,
        }
    }

    /// The phase index `t` falls in.
    fn phase_of(&self, t: Timestamp) -> usize {
        let slice = (self.span.secs() / self.phases as u64).max(1);
        let offset = t.as_secs() - self.span.start.as_secs();
        ((offset / slice) as usize).min(self.phases - 1)
    }
}

impl TrafficInjector for PhaseShiftInjector {
    fn inject(&mut self, ctx: &mut InjectCtx<'_>) -> Vec<Transaction> {
        if !self.span.contains(ctx.now) {
            return Vec::new();
        }
        let phase = self.phase_of(ctx.now);
        let hub = match self.current {
            Some((p, hub)) if p == phase => hub,
            _ => {
                let hub = deploy_hub(ctx.world);
                self.current = Some((phase, hub));
                hub
            }
        };
        let n = self.pacer.count(ctx.organic as f64 * self.intensity);
        let mut txs = Vec::with_capacity(n);
        for _ in 0..n {
            let from = sample_or_mint(&mut self.rng, ctx, 0.25);
            txs.push(Transaction {
                from,
                to: hub.sale,
                value: Wei::new(self.rng.gen_range(100..50_000)),
                gas_limit: Gas::new(INJECT_GAS),
                payload: TxPayload::Call { arg: 0 },
            });
        }
        txs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{ChainGenerator, GeneratorConfig};
    use blockpart_types::Duration;

    #[test]
    fn pacer_tracks_expectation() {
        let mut p = Pacer::new();
        let total: usize = (0..100).map(|_| p.count(0.3)).sum();
        // 100 × 0.3 = 30 expected events, up to one lost to fp rounding
        assert!((29..=30).contains(&total), "total {total}");
        assert_eq!(Pacer::new().count(-1.0), 0);
    }

    #[test]
    fn span_bounds_are_half_open() {
        let s = Span::new(Timestamp::from_secs(5), Timestamp::from_secs(10));
        assert!(!s.contains(Timestamp::from_secs(4)));
        assert!(s.contains(Timestamp::from_secs(5)));
        assert!(s.contains(Timestamp::from_secs(9)));
        assert!(!s.contains(Timestamp::from_secs(10)));
        assert_eq!(s.secs(), 5);
        assert_eq!(
            Span::new(Timestamp::from_secs(9), Timestamp::from_secs(3)).secs(),
            0
        );
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        assert_eq!(derive_seed(7, "hub-burst"), derive_seed(7, "hub-burst"));
        assert_ne!(derive_seed(7, "hub-burst"), derive_seed(7, "dummy-spam"));
        assert_ne!(derive_seed(7, "hub-burst"), derive_seed(8, "hub-burst"));
    }

    fn test_span() -> Span {
        // days 4..14 of the 14-day test timeline
        Span::new(
            Timestamp::EPOCH + Duration::days(4),
            Timestamp::EPOCH + Duration::days(14),
        )
    }

    #[test]
    fn injected_traffic_is_additive_and_deterministic() {
        let cfg = GeneratorConfig::test_scale(21);
        let base = ChainGenerator::new(cfg.clone()).generate();
        let build = || {
            ChainGenerator::new(cfg.clone())
                .with_injector(Box::new(HubBurstInjector::new(
                    cfg.seed,
                    test_span(),
                    2,
                    0.5,
                )))
                .generate()
        };
        let a = build();
        let b = build();
        assert_eq!(a.log.events(), b.log.events());
        assert_eq!(a.txs, b.txs);
        assert!(a.chain.tx_count() > base.chain.tx_count());
    }

    #[test]
    fn composition_adds_exact_counts() {
        let cfg = GeneratorConfig::test_scale(33);
        let base = ChainGenerator::new(cfg.clone()).generate().chain.tx_count();
        let spam = ChainGenerator::new(cfg.clone())
            .with_injector(Box::new(DummySpamInjector::new(cfg.seed, test_span(), 0.7)))
            .generate()
            .chain
            .tx_count();
        let burst = ChainGenerator::new(cfg.clone())
            .with_injector(Box::new(HubBurstInjector::new(
                cfg.seed,
                test_span(),
                2,
                0.5,
            )))
            .generate()
            .chain
            .tx_count();
        let both = ChainGenerator::new(cfg.clone())
            .with_injector(Box::new(DummySpamInjector::new(cfg.seed, test_span(), 0.7)))
            .with_injector(Box::new(HubBurstInjector::new(
                cfg.seed,
                test_span(),
                2,
                0.5,
            )))
            .generate()
            .chain
            .tx_count();
        assert_eq!(both - base, (spam - base) + (burst - base));
    }

    #[test]
    fn injectors_respect_their_span() {
        let cfg = GeneratorConfig::test_scale(5);
        let span = Span::new(
            Timestamp::EPOCH + Duration::days(7),
            Timestamp::EPOCH + Duration::days(14),
        );
        let with = ChainGenerator::new(cfg.clone())
            .with_injector(Box::new(DummySpamInjector::new(cfg.seed, span, 1.0)))
            .generate();
        let base = ChainGenerator::new(cfg).generate();
        // blocks before the span are identical
        let cut = Timestamp::EPOCH + Duration::days(7);
        let before_with = with.txs.iter().filter(|t| t.time < cut).count();
        let before_base = base.txs.iter().filter(|t| t.time < cut).count();
        assert_eq!(before_with, before_base);
        assert!(with.txs.len() > base.txs.len());
    }

    #[test]
    fn phase_shift_rotates_hub_identity() {
        let cfg = GeneratorConfig::test_scale(13);
        let span = test_span();
        let chain = ChainGenerator::new(cfg.clone())
            .with_injector(Box::new(PhaseShiftInjector::new(cfg.seed, span, 4, 1.0)))
            .generate();
        let base = ChainGenerator::new(cfg).generate();
        // strictly more contracts: each phase deploys a fresh hub pair
        assert!(
            chain.chain.world().contract_count() >= base.chain.world().contract_count() + 8,
            "with {} base {}",
            chain.chain.world().contract_count(),
            base.chain.world().contract_count()
        );
    }
}
