/root/repo/target/debug/deps/fig1-d0f1a09b13bc4600.d: crates/bench/src/bin/fig1.rs Cargo.toml

/root/repo/target/debug/deps/libfig1-d0f1a09b13bc4600.rmeta: crates/bench/src/bin/fig1.rs Cargo.toml

crates/bench/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
