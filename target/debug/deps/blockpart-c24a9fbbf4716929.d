/root/repo/target/debug/deps/blockpart-c24a9fbbf4716929.d: src/bin/blockpart.rs

/root/repo/target/debug/deps/blockpart-c24a9fbbf4716929: src/bin/blockpart.rs

src/bin/blockpart.rs:
