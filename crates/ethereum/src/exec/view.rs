//! The multi-version state view behind optimistic execution: a
//! copy-on-write overlay over [`World`] that records the read and write
//! footprint of one transaction while mirroring the world's semantics
//! exactly, plus the portable [`Speculation`] that captures the result.

use std::collections::{BTreeSet, HashMap, HashSet};

use blockpart_types::{AccountKind, Address, Wei};

use crate::evm::{ExecContext, Vm};
use crate::program::{ContractTemplate, Program};
use crate::state::{AccountState, ContractState, World};
use crate::transaction::{Receipt, Transaction};

/// One unit of state the optimistic scheduler versions and validates.
///
/// Address granularity matches how speculative results are installed: a
/// [`Speculation`] replaces whole per-address records, so two
/// transactions touching the same address conflict even when they touch
/// different storage slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Resource {
    /// One address's account or contract record.
    Addr(Address),
    /// The contract-address allocator ([`World::address_floor`]):
    /// contract creations read and advance it, so creations serialize
    /// against each other and allocated addresses stay deterministic.
    Allocator,
}

/// The world-state surface the EVM-lite interpreter executes against.
///
/// [`World`] implements it directly; [`OverlayView`] implements it as a
/// recording copy-on-write layer. Every method takes `&mut self` so read
/// tracking needs no interior mutability.
pub trait VmState {
    /// Bumps the sender nonce (see [`World::bump_nonce`]).
    fn bump_nonce(&mut self, address: Address);
    /// The kind of `address` (see [`World::kind`]).
    fn kind(&mut self, address: Address) -> AccountKind;
    /// The balance of any address (see [`World::balance`]).
    fn balance(&mut self, address: Address) -> Wei;
    /// Moves up to `value`, clamped at the sender's balance (see
    /// [`World::transfer`]).
    fn transfer(&mut self, from: Address, to: Address, value: Wei) -> Wei;
    /// The program at `address`, if it holds a contract.
    fn program_of(&mut self, address: Address) -> Option<Program>;
    /// Reads a contract storage slot (see [`World::storage_load`]).
    fn storage_load(&mut self, contract: Address, key: u64) -> u64;
    /// Writes a contract storage slot (see [`World::storage_store`]).
    fn storage_store(&mut self, contract: Address, key: u64, value: u64);
    /// Creates a contract (see [`World::create_contract`]).
    fn create_contract(
        &mut self,
        template: ContractTemplate,
        creator: Address,
        arg: u64,
    ) -> Address;
}

impl VmState for World {
    fn bump_nonce(&mut self, address: Address) {
        World::bump_nonce(self, address);
    }

    fn kind(&mut self, address: Address) -> AccountKind {
        World::kind(self, address)
    }

    fn balance(&mut self, address: Address) -> Wei {
        World::balance(self, address)
    }

    fn transfer(&mut self, from: Address, to: Address, value: Wei) -> Wei {
        World::transfer(self, from, to, value)
    }

    fn program_of(&mut self, address: Address) -> Option<Program> {
        self.contract(address).map(|c| c.program.clone())
    }

    fn storage_load(&mut self, contract: Address, key: u64) -> u64 {
        World::storage_load(self, contract, key)
    }

    fn storage_store(&mut self, contract: Address, key: u64, value: u64) {
        World::storage_store(self, contract, key, value);
    }

    fn create_contract(
        &mut self,
        template: ContractTemplate,
        creator: Address,
        arg: u64,
    ) -> Address {
        World::create_contract(self, template, creator, arg)
    }
}

/// A recording copy-on-write overlay over a shared [`World`].
///
/// Execution against the view leaves the base world untouched: mutated
/// records are cloned into the overlay first, and every access is noted
/// in the read/write footprint. [`into_speculation`](Self::into_speculation)
/// freezes the overlay into a [`Speculation`] that can later be applied
/// to the base — producing byte-for-byte the state direct execution
/// would have produced (proptest-guarded in this crate's test suite).
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::exec::{speculate, Resource};
/// use blockpart_ethereum::evm::ExecContext;
/// use blockpart_ethereum::{Transaction, TxPayload, World};
/// use blockpart_types::{Gas, Timestamp, Wei};
///
/// let mut world = World::new();
/// let alice = world.new_user(Wei::new(1_000));
/// let bob = world.new_user(Wei::ZERO);
/// let tx = Transaction {
///     from: alice,
///     to: bob,
///     value: Wei::new(5),
///     gas_limit: Gas::new(30_000),
///     payload: TxPayload::Transfer,
/// };
/// let ctx = ExecContext::new(Timestamp::from_secs(1), 7, tx.gas_limit);
/// let spec = speculate(&world, &tx, &ctx);
/// assert!(spec.receipt().is_success());
/// assert_eq!(world.balance(bob), Wei::ZERO); // base untouched
/// spec.apply(&mut world);
/// assert_eq!(world.balance(bob), Wei::new(5));
/// assert!(spec.writes().contains(&Resource::Addr(alice)));
/// ```
#[derive(Debug)]
pub struct OverlayView<'a> {
    base: &'a World,
    accounts: HashMap<Address, AccountState>,
    contracts: HashMap<Address, ContractState>,
    next_index: u64,
    reads: BTreeSet<Resource>,
    writes: BTreeSet<Resource>,
}

impl<'a> OverlayView<'a> {
    /// Creates an empty overlay over `base`.
    pub fn new(base: &'a World) -> Self {
        OverlayView {
            base,
            accounts: HashMap::new(),
            contracts: HashMap::new(),
            next_index: base.address_floor(),
            reads: BTreeSet::new(),
            writes: BTreeSet::new(),
        }
    }

    /// Freezes the overlay into a portable [`Speculation`].
    pub fn into_speculation(self, receipt: Receipt) -> Speculation {
        let mut accounts: Vec<(Address, AccountState)> = self.accounts.into_iter().collect();
        accounts.sort_by_key(|&(a, _)| a);
        let mut contracts: Vec<(Address, ContractState)> = self.contracts.into_iter().collect();
        contracts.sort_by_key(|&(a, _)| a);
        Speculation {
            receipt,
            accounts,
            contracts,
            next_index: self.next_index,
            reads: self.reads.into_iter().collect(),
            writes: self.writes.into_iter().collect(),
        }
    }

    fn note_read(&mut self, r: Resource) {
        self.reads.insert(r);
    }

    fn note_write(&mut self, r: Resource) {
        self.writes.insert(r);
    }

    /// Contract existence across overlay and base (the overlay never
    /// deletes, so the union is authoritative).
    fn is_contract(&self, address: Address) -> bool {
        self.contracts.contains_key(&address) || self.base.is_contract(address)
    }

    /// Account existence across overlay and base.
    fn account_exists(&self, address: Address) -> bool {
        self.accounts.contains_key(&address) || self.base.account(address).is_some()
    }

    /// Materializes the contract record into the overlay (cloning from
    /// base on first touch) and returns it, if the address is a contract.
    fn contract_entry(&mut self, address: Address) -> Option<&mut ContractState> {
        if !self.contracts.contains_key(&address) {
            if let Some(c) = self.base.contract(address) {
                self.contracts.insert(address, c.clone());
            }
        }
        self.contracts.get_mut(&address)
    }

    /// Materializes the account record (default-initialized when the
    /// base has none) — mirrors `accounts.entry(a).or_default()`.
    fn account_entry(&mut self, address: Address) -> &mut AccountState {
        if !self.accounts.contains_key(&address) {
            let seed = self.base.account(address).copied().unwrap_or_default();
            self.accounts.insert(address, seed);
        }
        self.accounts.get_mut(&address).expect("just materialized")
    }

    fn debit(&mut self, address: Address, value: Wei) {
        // mirrors World::debit: contracts first, then existing accounts,
        // and no entry is created for an unknown debtor
        if self.is_contract(address) {
            self.note_read(Resource::Addr(address));
            self.note_write(Resource::Addr(address));
            let c = self.contract_entry(address).expect("existence checked");
            c.balance = c.balance.saturating_sub(value);
        } else if self.account_exists(address) {
            self.note_read(Resource::Addr(address));
            self.note_write(Resource::Addr(address));
            let a = self.account_entry(address);
            a.balance = a.balance.saturating_sub(value);
        }
    }

    fn credit(&mut self, address: Address, value: Wei) {
        // mirrors World::credit: a credit to an unknown address
        // materializes a fresh account entry
        self.note_read(Resource::Addr(address));
        self.note_write(Resource::Addr(address));
        if self.is_contract(address) {
            let c = self.contract_entry(address).expect("existence checked");
            c.balance += value;
        } else {
            self.account_entry(address).balance += value;
        }
    }
}

impl VmState for OverlayView<'_> {
    fn bump_nonce(&mut self, address: Address) {
        // World::bump_nonce materializes an account entry even for
        // contract addresses; the resulting nonce depends on the prior
        // value, so this is a read as well as a write
        self.note_read(Resource::Addr(address));
        self.note_write(Resource::Addr(address));
        self.account_entry(address).nonce += 1;
    }

    fn kind(&mut self, address: Address) -> AccountKind {
        self.note_read(Resource::Addr(address));
        if self.is_contract(address) {
            AccountKind::Contract
        } else {
            AccountKind::ExternallyOwned
        }
    }

    fn balance(&mut self, address: Address) -> Wei {
        self.note_read(Resource::Addr(address));
        if let Some(c) = self.contracts.get(&address) {
            return c.balance;
        }
        if let Some(c) = self.base.contract(address) {
            return c.balance;
        }
        if let Some(a) = self.accounts.get(&address) {
            return a.balance;
        }
        self.base.account(address).map_or(Wei::ZERO, |a| a.balance)
    }

    fn transfer(&mut self, from: Address, to: Address, value: Wei) -> Wei {
        // mirrors World::transfer: clamp at the sender's balance, then
        // debit and credit
        let available = self.balance(from);
        let moved = if value > available { available } else { value };
        self.debit(from, moved);
        self.credit(to, moved);
        moved
    }

    fn program_of(&mut self, address: Address) -> Option<Program> {
        self.note_read(Resource::Addr(address));
        if let Some(c) = self.contracts.get(&address) {
            return Some(c.program.clone());
        }
        self.base.contract(address).map(|c| c.program.clone())
    }

    fn storage_load(&mut self, contract: Address, key: u64) -> u64 {
        self.note_read(Resource::Addr(contract));
        if let Some(c) = self.contracts.get(&contract) {
            return c.storage.get(&key).copied().unwrap_or(0);
        }
        self.base.storage_load(contract, key)
    }

    fn storage_store(&mut self, contract: Address, key: u64, value: u64) {
        // installing the record copies the whole storage map, so the
        // prior contents are a dependency: read and write
        self.note_read(Resource::Addr(contract));
        self.note_write(Resource::Addr(contract));
        self.contract_entry(contract)
            .expect("storage write outside a contract")
            .storage
            .insert(key, value);
    }

    fn create_contract(
        &mut self,
        template: ContractTemplate,
        creator: Address,
        arg: u64,
    ) -> Address {
        self.note_read(Resource::Allocator);
        self.note_write(Resource::Allocator);
        let address = Address::from_index(self.next_index);
        self.next_index += 1;
        self.note_write(Resource::Addr(address));
        let storage = template.initial_storage(arg).into_iter().collect();
        self.contracts.insert(
            address,
            ContractState {
                template,
                program: template.program(),
                storage,
                balance: Wei::ZERO,
                creator,
            },
        );
        address
    }
}

/// The frozen result of executing one transaction against an
/// [`OverlayView`]: the receipt, the per-address records the execution
/// produced, and the read/write footprint the scheduler validates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Speculation {
    receipt: Receipt,
    accounts: Vec<(Address, AccountState)>,
    contracts: Vec<(Address, ContractState)>,
    next_index: u64,
    reads: Vec<Resource>,
    writes: Vec<Resource>,
}

impl Speculation {
    /// The speculative receipt (identical to direct execution's when the
    /// speculation validates).
    pub fn receipt(&self) -> &Receipt {
        &self.receipt
    }

    /// Resources read during execution, ascending.
    pub fn reads(&self) -> &[Resource] {
        &self.reads
    }

    /// Resources written during execution, ascending.
    pub fn writes(&self) -> &[Resource] {
        &self.writes
    }

    /// Every resource this speculation depends on (reads and writes —
    /// installed records carry absolute values, so writes are
    /// dependencies too).
    pub fn deps(&self) -> impl Iterator<Item = &Resource> {
        self.reads.iter().chain(self.writes.iter())
    }

    /// Whether any dependency overlaps the given committed write set —
    /// the optimistic scheduler's validation step.
    pub fn conflicts_with(&self, written: &HashSet<Resource>) -> bool {
        self.deps().any(|r| written.contains(r))
    }

    /// Read dependencies as plain addresses, in ascending address order.
    /// [`Address::ZERO`] is excluded (it is not real state), matching the
    /// `touched` access-list convention.
    pub fn read_addresses(&self) -> Vec<Address> {
        resource_addresses(&self.reads)
    }

    /// Written resources as plain addresses, ascending,
    /// [`Address::ZERO`]-excluded.
    pub fn write_addresses(&self) -> Vec<Address> {
        resource_addresses(&self.writes)
    }

    /// Installs the speculative records into `world`, reproducing
    /// byte-for-byte the state direct execution would have left.
    pub fn apply(&self, world: &mut World) {
        for &(a, s) in &self.accounts {
            world.set_account_record(a, s);
        }
        for (a, c) in &self.contracts {
            world.set_contract_record(*a, c.clone());
        }
        world.raise_address_floor(self.next_index);
    }
}

fn resource_addresses(resources: &[Resource]) -> Vec<Address> {
    resources
        .iter()
        .filter_map(|r| match r {
            Resource::Addr(a) if *a != Address::ZERO => Some(*a),
            _ => None,
        })
        .collect()
}

/// Executes `tx` speculatively against a read-only `world`, capturing
/// the receipt, result records and read/write footprint. The base world
/// is not modified; apply the returned [`Speculation`] to commit.
pub fn speculate(world: &World, tx: &Transaction, ctx: &ExecContext) -> Speculation {
    let mut view = OverlayView::new(world);
    let receipt = Vm::execute(&mut view, tx, ctx);
    view.into_speculation(receipt)
}

/// Executes `tx` directly on `world` through the overlay, returning the
/// receipt together with the exact read/write address footprint — the
/// capture path the chain generator uses to split `touched` into
/// declared read and write sets.
pub fn execute_captured(
    world: &mut World,
    tx: &Transaction,
    ctx: &ExecContext,
) -> (Receipt, Vec<Address>, Vec<Address>) {
    let spec = speculate(world, tx, ctx);
    spec.apply(world);
    let reads = spec.read_addresses();
    let writes = spec.write_addresses();
    (spec.receipt, reads, writes)
}
