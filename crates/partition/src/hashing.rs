//! Hash partitioning: `hash(vertex id) mod k`.

use blockpart_types::ShardId;

use crate::partition::Partition;
use crate::traits::{PartitionRequest, Partitioner};

/// The paper's baseline: assign each vertex to `hash(id) mod k`.
///
/// Placement depends only on the vertex's stable identifier, so a vertex
/// never moves once assigned — the method has zero *moves* by construction
/// and (for a uniform hash) optimum static balance, at the cost of an
/// edge-cut that approaches `1 − 1/k` on graphs without locality.
///
/// # Examples
///
/// ```
/// use blockpart_graph::Csr;
/// use blockpart_partition::{HashPartitioner, PartitionRequest, Partitioner};
/// use blockpart_types::ShardCount;
///
/// let csr = Csr::from_edges(4, &[(0, 1, 1), (2, 3, 1)]);
/// let ids = [100u64, 200, 300, 400];
/// let mut h = HashPartitioner::new();
/// let p1 = h.partition(&PartitionRequest::new(&csr, ShardCount::TWO).with_stable_ids(&ids));
/// let p2 = h.partition(&PartitionRequest::new(&csr, ShardCount::TWO).with_stable_ids(&ids));
/// assert_eq!(p1, p2); // deterministic
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct HashPartitioner {
    _private: (),
}

impl HashPartitioner {
    /// Creates the hash partitioner.
    pub fn new() -> Self {
        HashPartitioner::default()
    }

    /// The shard a stable id maps to under `k` shards.
    ///
    /// Exposed so the simulator can place brand-new vertices consistently
    /// with a full repartition.
    pub fn shard_for_id(id: u64, k: blockpart_types::ShardCount) -> ShardId {
        ShardId::new((mix64(id) % u64::from(k.get())) as u16)
    }
}

impl Partitioner for HashPartitioner {
    fn name(&self) -> &str {
        "hash"
    }

    fn partition(&mut self, req: &PartitionRequest<'_>) -> Partition {
        let n = req.csr.node_count();
        let assignment: Vec<u16> = (0..n)
            .map(|v| Self::shard_for_id(req.stable_id(v), req.k).as_u16())
            .collect();
        Partition::from_assignment(assignment, req.k).expect("hash shard always < k")
    }
}

/// SplitMix64 finalizer (same mixer as `blockpart_types::Address` uses) so
/// ids that are already hashes and raw dense indices both spread well.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpart_graph::Csr;
    use blockpart_types::ShardCount;

    #[test]
    fn assignment_is_stable_under_graph_growth() {
        // The same stable id must land on the same shard regardless of how
        // many other vertices exist — the "zero moves" property.
        let k = ShardCount::new(4).unwrap();
        let small = Csr::from_edges(2, &[(0, 1, 1)]);
        let big = Csr::from_edges(5, &[(0, 1, 1), (3, 4, 1)]);
        let ids_small = [111u64, 222];
        let ids_big = [111u64, 222, 333, 444, 555];
        let mut h = HashPartitioner::new();
        let p_small = h.partition(&PartitionRequest::new(&small, k).with_stable_ids(&ids_small));
        let p_big = h.partition(&PartitionRequest::new(&big, k).with_stable_ids(&ids_big));
        assert_eq!(p_small.shard_of(0), p_big.shard_of(0));
        assert_eq!(p_small.shard_of(1), p_big.shard_of(1));
    }

    #[test]
    fn balance_is_near_uniform() {
        let n = 8_000usize;
        let csr = Csr::from_edges(n, &[]);
        let ids: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let k = ShardCount::new(8).unwrap();
        let mut h = HashPartitioner::new();
        let p = h.partition(&PartitionRequest::new(&csr, k).with_stable_ids(&ids));
        for &size in &p.shard_sizes() {
            assert!((800..1200).contains(&size), "sizes: {:?}", p.shard_sizes());
        }
    }

    #[test]
    fn works_without_stable_ids() {
        let csr = Csr::from_edges(3, &[(0, 1, 1)]);
        let mut h = HashPartitioner::new();
        let p = h.partition(&PartitionRequest::new(&csr, ShardCount::TWO));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn shard_for_id_matches_partition() {
        let k = ShardCount::new(4).unwrap();
        let csr = Csr::from_edges(1, &[]);
        let ids = [0xdead_beefu64];
        let mut h = HashPartitioner::new();
        let p = h.partition(&PartitionRequest::new(&csr, k).with_stable_ids(&ids));
        assert_eq!(p.shard_of(0), HashPartitioner::shard_for_id(ids[0], k));
    }
}
