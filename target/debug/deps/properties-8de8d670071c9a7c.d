/root/repo/target/debug/deps/properties-8de8d670071c9a7c.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-8de8d670071c9a7c.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
