//! Contract templates and their EVM-lite programs.
//!
//! Real Ethereum contracts cluster into a few behavioural archetypes that
//! shape the blockchain graph very differently: tokens (hub vertices with
//! huge in-degree, no internal calls), crowdsales (fan-out: forward funds
//! and mint), wallets (relays), factories (create many children — the
//! paper's Fig. 2 contract 9703), games (occasional payouts to past
//! players) and registries (storage-heavy, no calls). Each template below
//! compiles to a small [`Program`] exercising exactly that pattern.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::evm::Op;

/// An immutable EVM-lite program (a contract's code).
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::{ContractTemplate, Program};
///
/// let p = ContractTemplate::Wallet.program();
/// assert!(!p.ops().is_empty());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program(Vec<Op>);

impl Program {
    /// Wraps a list of instructions.
    pub fn new(ops: Vec<Op>) -> Self {
        Program(ops)
    }

    /// The instructions.
    pub fn ops(&self) -> &[Op] {
        &self.0
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` for the empty program.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// The behavioural archetypes contracts are instantiated from.
///
/// Storage layout conventions used by the programs:
///
/// | slot | meaning |
/// |------|---------|
/// | 0    | primary address parameter (owner / beneficiary / last winner) |
/// | 1    | secondary parameter (token address / counter / pot) |
/// | 2    | accumulator (raised amount) |
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::ContractTemplate;
///
/// let t = ContractTemplate::from_id(0).unwrap();
/// assert_eq!(t, ContractTemplate::Token);
/// assert_eq!(t.id(), 0);
/// assert!(ContractTemplate::from_id(99).is_none());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContractTemplate {
    /// ERC20-style token: balance bookkeeping in storage, no internal
    /// calls. Becomes a high-in-degree hub vertex.
    Token,
    /// ICO crowdsale: stores the contribution, forwards the ether to a
    /// beneficiary (slot 0) and calls the token contract (slot 1).
    Crowdsale,
    /// Simple wallet: relays the received ether to the argument address.
    Wallet,
    /// Factory: every call creates a child contract (slot 0 holds the
    /// child template id, slot 1 counts children).
    Factory,
    /// Gambling game: accumulates a pot (slot 1) and pays it out to the
    /// previous winner (slot 0) on a pseudo-random 1-in-4 roll.
    Game,
    /// Name registry: pure storage writes, no calls, no transfers.
    Registry,
}

impl ContractTemplate {
    /// All templates, in id order.
    pub const ALL: [ContractTemplate; 6] = [
        ContractTemplate::Token,
        ContractTemplate::Crowdsale,
        ContractTemplate::Wallet,
        ContractTemplate::Factory,
        ContractTemplate::Game,
        ContractTemplate::Registry,
    ];

    /// The template's stable numeric id (used by `CREATE` on the stack).
    pub fn id(self) -> u64 {
        match self {
            ContractTemplate::Token => 0,
            ContractTemplate::Crowdsale => 1,
            ContractTemplate::Wallet => 2,
            ContractTemplate::Factory => 3,
            ContractTemplate::Game => 4,
            ContractTemplate::Registry => 5,
        }
    }

    /// Looks a template up by id.
    pub fn from_id(id: u64) -> Option<ContractTemplate> {
        ContractTemplate::ALL.get(id as usize).copied()
    }

    /// Compiles the template's program.
    ///
    /// Calling convention: the callee starts with its single argument word
    /// on the stack; `SStore` pops value then key; `Transfer` pops value
    /// then target; `Call` pops argument, value, then target; `Create`
    /// pops endowment then template id.
    pub fn program(self) -> Program {
        use Op::*;
        let ops = match self {
            // start stack: [arg = recipient index]
            ContractTemplate::Token => vec![
                Caller,    // [arg, caller]
                CallValue, // [arg, caller, value]
                SStore,    // storage[caller] = value      [arg]
                Dup(0),    // [arg, arg]
                SLoad,     // [arg, bal]
                Push(1),   // [arg, bal, 1]
                Add,       // [arg, bal+1]
                SStore,    // storage[arg] = bal + 1       []
                Push(0),
                Log, // emit Transfer event
                Stop,
            ],
            // start stack: [arg] (ignored)
            ContractTemplate::Crowdsale => vec![
                Pop,
                Push(2),
                SLoad,     // [raised]
                CallValue, // [raised, value]
                Add,       // [raised+value]
                Push(2),   // [raised+value, 2]
                Swap(1),   // [2, raised+value]
                SStore,    // storage[2] += value
                Push(0),
                SLoad,     // [beneficiary]
                CallValue, // [beneficiary, value]
                Transfer,  // forward the funds
                Push(1),
                SLoad,   // [token]
                Push(0), // [token, 0]
                Caller,  // [token, 0, caller]
                Call,    // mint: token.call(arg = contributor)
                Pop,
                Stop,
            ],
            // start stack: [arg = destination index]
            ContractTemplate::Wallet => vec![
                CallValue, // [dest, value]
                Transfer,  // relay
                Push(0),
                Log,
                Stop,
            ],
            // start stack: [arg] (ignored)
            ContractTemplate::Factory => vec![
                Pop,
                Push(0),
                SLoad,   // [child template]
                Push(0), // [template, endow = 0]
                Create,  // [child addr]
                Pop,
                Push(1),
                SLoad, // [count]
                Push(1),
                Add,     // [count+1]
                Push(1), // [count+1, 1]
                Swap(1), // [1, count+1]
                SStore,  // storage[1] = count + 1
                Stop,
            ],
            // start stack: [arg] (ignored)
            ContractTemplate::Game => vec![
                Pop,
                Push(1),
                SLoad,     // [pot]
                CallValue, // [pot, value]
                Add,       // [pot+value]
                Push(1),
                Swap(1),
                SStore, // storage[1] = pot + value
                Rand,
                Push(4),
                Mod,       // [r % 4]
                JumpI(20), // skip payout unless the roll is 0
                // payout path (indices 12..20)
                Push(0),
                SLoad, // [winner]
                Push(1),
                SLoad,    // [winner, pot]
                Transfer, // pay the pot
                Push(1),
                Push(0),
                SStore, // pot = 0
                // index 20: record the caller as last winner
                Push(0),
                Caller,
                SStore, // storage[0] = caller
                Stop,
            ],
            // start stack: [arg = name hash]
            ContractTemplate::Registry => vec![
                Caller, // [name, caller]
                SStore, // storage[name] = caller
                Push(0),
                Log,
                Stop,
            ],
        };
        Program::new(ops)
    }

    /// The storage a fresh instance starts with, given the constructor
    /// argument (an address index or child-template id, depending on the
    /// template).
    pub fn initial_storage(self, arg: u64) -> Vec<(u64, u64)> {
        match self {
            ContractTemplate::Token => vec![(0, arg)], // owner
            ContractTemplate::Crowdsale => vec![(0, arg), (1, arg.wrapping_add(1))],
            ContractTemplate::Wallet => vec![(0, arg)], // owner
            ContractTemplate::Factory => vec![(0, arg % 6), (1, 0)],
            ContractTemplate::Game => vec![(0, arg), (1, 0)],
            ContractTemplate::Registry => Vec::new(),
        }
    }
}

impl fmt::Display for ContractTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ContractTemplate::Token => "token",
            ContractTemplate::Crowdsale => "crowdsale",
            ContractTemplate::Wallet => "wallet",
            ContractTemplate::Factory => "factory",
            ContractTemplate::Game => "game",
            ContractTemplate::Registry => "registry",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        for t in ContractTemplate::ALL {
            assert_eq!(ContractTemplate::from_id(t.id()), Some(t));
        }
        assert!(ContractTemplate::from_id(6).is_none());
    }

    #[test]
    fn all_programs_terminate_with_stop() {
        for t in ContractTemplate::ALL {
            let p = t.program();
            assert_eq!(*p.ops().last().unwrap(), Op::Stop, "{t}");
        }
    }

    #[test]
    fn game_jump_target_is_in_bounds_and_correct() {
        let p = ContractTemplate::Game.program();
        for op in p.ops() {
            if let Op::JumpI(target) | Op::Jump(target) = op {
                assert!((*target as usize) < p.len());
                // the skip target must be the "record winner" sequence
                assert_eq!(p.ops()[*target as usize], Op::Push(0));
            }
        }
    }

    #[test]
    fn factory_initial_storage_holds_valid_template() {
        for arg in [0u64, 5, 6, 1000] {
            let storage = ContractTemplate::Factory.initial_storage(arg);
            let child = storage.iter().find(|&&(k, _)| k == 0).unwrap().1;
            assert!(ContractTemplate::from_id(child).is_some());
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ContractTemplate::Token.to_string(), "token");
        assert_eq!(ContractTemplate::Registry.to_string(), "registry");
    }
}
