//! Repartitioning policies and scopes.

use blockpart_types::{Duration, Timestamp};
use serde::{Deserialize, Serialize};

/// When the simulator re-runs the partitioner.
///
/// # Examples
///
/// ```
/// use blockpart_shard::RepartitionPolicy;
/// use blockpart_types::{Duration, Timestamp};
///
/// let p = RepartitionPolicy::Periodic {
///     interval: Duration::weeks(2),
/// };
/// // due two weeks after the last repartition
/// assert!(p.due(
///     Timestamp::from_secs(Duration::weeks(2).as_secs()),
///     Timestamp::EPOCH,
///     0.9,
///     1.9,
/// ));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum RepartitionPolicy {
    /// Never repartition (the HASH method).
    Never,
    /// Repartition every `interval` of simulated time (the paper's
    /// two-week cadence for KL, METIS and R-METIS).
    Periodic {
        /// Time between repartitions.
        interval: Duration,
    },
    /// The TR-METIS trigger: repartition when the *measured window*
    /// dynamic edge-cut or dynamic balance crosses its threshold, but not
    /// more often than `min_interval`.
    Threshold {
        /// Fire when window dynamic edge-cut exceeds this.
        edge_cut: f64,
        /// Fire when window dynamic balance exceeds this.
        balance: f64,
        /// Refractory period between repartitions.
        min_interval: Duration,
    },
}

impl RepartitionPolicy {
    /// Decides whether a repartition is due at a window boundary.
    ///
    /// `now` is the boundary time, `last` the previous repartition time,
    /// and `window_cut`/`window_balance` the dynamic metrics of the window
    /// that just closed.
    pub fn due(
        &self,
        now: Timestamp,
        last: Timestamp,
        window_cut: f64,
        window_balance: f64,
    ) -> bool {
        match *self {
            RepartitionPolicy::Never => false,
            RepartitionPolicy::Periodic { interval } => now.since(last) >= interval,
            RepartitionPolicy::Threshold {
                edge_cut,
                balance,
                min_interval,
            } => {
                now.since(last) >= min_interval
                    && (window_cut > edge_cut || window_balance > balance)
            }
        }
    }
}

impl Default for RepartitionPolicy {
    fn default() -> Self {
        RepartitionPolicy::Periodic {
            interval: Duration::weeks(2),
        }
    }
}

/// Which graph the partitioner sees at a repartition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepartitionScope {
    /// The whole cumulative graph (the METIS and KL methods).
    #[default]
    Full,
    /// Only the interactions of the trailing window — the paper's
    /// *reduced graph* (R-METIS, TR-METIS). Vertices outside the window
    /// keep their current shard.
    Window,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(days: u64) -> Timestamp {
        Timestamp::from_secs(days * 86_400)
    }

    #[test]
    fn never_never_fires() {
        let p = RepartitionPolicy::Never;
        assert!(!p.due(t(1_000), Timestamp::EPOCH, 1.0, 10.0));
    }

    #[test]
    fn periodic_fires_on_schedule() {
        let p = RepartitionPolicy::Periodic {
            interval: Duration::weeks(2),
        };
        assert!(!p.due(t(13), Timestamp::EPOCH, 0.0, 1.0));
        assert!(p.due(t(14), Timestamp::EPOCH, 0.0, 1.0));
        assert!(!p.due(t(20), t(14), 0.0, 1.0));
        assert!(p.due(t(28), t(14), 0.0, 1.0));
    }

    #[test]
    fn threshold_fires_on_either_metric() {
        let p = RepartitionPolicy::Threshold {
            edge_cut: 0.3,
            balance: 1.5,
            min_interval: Duration::days(1),
        };
        // neither exceeded
        assert!(!p.due(t(10), t(0), 0.2, 1.2));
        // cut exceeded
        assert!(p.due(t(10), t(0), 0.4, 1.2));
        // balance exceeded
        assert!(p.due(t(10), t(0), 0.2, 1.6));
    }

    #[test]
    fn threshold_respects_refractory_period() {
        let p = RepartitionPolicy::Threshold {
            edge_cut: 0.3,
            balance: 1.5,
            min_interval: Duration::days(3),
        };
        assert!(!p.due(t(2), t(0), 0.9, 9.0));
        assert!(p.due(t(3), t(0), 0.9, 9.0));
    }

    #[test]
    fn default_is_two_weeks() {
        assert_eq!(
            RepartitionPolicy::default(),
            RepartitionPolicy::Periodic {
                interval: Duration::weeks(2)
            }
        );
    }
}
