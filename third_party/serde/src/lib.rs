//! Offline shim for serde: the marker traits plus the derive macros.
//!
//! The workspace uses serde purely as `#[derive(Serialize, Deserialize)]`
//! annotations on data types; no serializer is ever invoked. The derives
//! expand to nothing and the traits carry no methods, which keeps every
//! annotated type compiling unchanged.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
