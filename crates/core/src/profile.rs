//! The self-profile pipeline behind `blockpart profile`.
//!
//! Runs the full study pipeline **serially**, one stage at a time —
//! chain-gen → graph-build → csr → partition → simulate (→ replay) —
//! with every stage wrapped in a wall-clock `stage` span, so the
//! aggregated table accounts for essentially all of the wall time.
//! The parallel [`Experiment`](crate::Experiment) fan-out is
//! deliberately bypassed: overlapping pair spans would make "% of
//! total" meaningless.
//!
//! The `partition` stage runs the multilevel partitioner once over the
//! cumulative full graph (the dominant cost of the paper's METIS
//! offline simulation) and nests its `partition/coarsen`,
//! `partition/initial` and `partition/refine` phase breakdown;
//! `simulate` nests the per-repartition `simulate/graph-assembly`,
//! `simulate/partition` and `simulate/apply-moves` details recorded by
//! the [`ShardSimulator`](blockpart_shard::ShardSimulator).

use blockpart_ethereum::gen::{ChainGenerator, GeneratorConfig};
use blockpart_graph::GraphBuilder;
use blockpart_metrics::Table;
use blockpart_obs::profile::{aggregate, coverage, StageRow};
use blockpart_obs::{profile, Collector, Record, Stopwatch, Trace};
use blockpart_partition::{kway_traced, MultilevelConfig};
use blockpart_runtime::{Assignment, ShardedRuntime};
use blockpart_shard::ShardSimulator;
use blockpart_types::{Duration, ShardCount};

use crate::strategy::{StrategyError, StrategyRegistry};

/// The result of one [`run_profile`] pass: the collected trace plus the
/// end-to-end wall time the stage table is normalized against.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    trace: Trace,
    wall_us: u64,
}

impl ProfileReport {
    /// The collected trace (stage + detail spans, replay virtual
    /// traces, metrics).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// End-to-end pipeline wall time in µs.
    pub fn wall_us(&self) -> u64 {
        self.wall_us
    }

    /// Aggregated top-level stages, in first-seen (pipeline) order.
    pub fn stages(&self) -> Vec<StageRow> {
        aggregate(&self.trace, "stage")
    }

    /// Fraction of wall time the top-level stages account for. The
    /// stages run serially and wrap every expensive step, so this
    /// should sit above 0.95 on any non-trivial workload.
    pub fn coverage(&self) -> f64 {
        coverage(&self.stages(), self.wall_us)
    }

    /// The `stage | calls | time (ms) | % of total` table, stages
    /// sorted by time descending with their `detail` sub-spans
    /// indented, closed by a `total (wall)` row.
    pub fn table(&self) -> Table {
        let mut t = profile::table(
            &self.stages(),
            &aggregate(&self.trace, "detail"),
            self.wall_us,
        );
        t.row(vec![
            "total (wall)".to_string(),
            String::new(),
            format!("{:.2}", self.wall_us as f64 / 1000.0),
            "100.0%".to_string(),
        ]);
        t
    }
}

/// Profiles the full pipeline for `specs` × `shard_counts` over a chain
/// generated from `gen`. With `replay`, each pair's final assignment is
/// also replayed through the 2PC runtime (its deterministic
/// virtual-clock trace lands in a per-pair Perfetto process lane).
///
/// With `instrument` false the identical pipeline runs against a
/// disabled collector — the report then carries only the wall time,
/// which is what the CI overhead gate compares an instrumented run
/// against.
///
/// # Errors
///
/// Fails when `specs` does not resolve against `registry`.
#[allow(clippy::too_many_arguments)] // a flat CLI-facing entry point
pub fn run_profile(
    registry: &StrategyRegistry,
    specs: &str,
    shard_counts: &[ShardCount],
    gen: GeneratorConfig,
    window: Duration,
    seed: u64,
    replay: bool,
    instrument: bool,
) -> Result<ProfileReport, StrategyError> {
    let strategies = registry.resolve_list_with_sources(specs)?;
    let stopwatch = Stopwatch::start();
    let mut obs = Trace::when(instrument);
    obs.name_process(0, "profile pipeline (wall µs)");
    obs.name_thread(0, 0, "pipeline");

    // ---- chain-gen ------------------------------------------------------
    let start = obs.now_us();
    let chain = ChainGenerator::new(gen).generate();
    let dur = obs.now_us() - start;
    obs.record(
        Record::span(start, dur, "stage", "chain-gen")
            .with_arg("txs", chain.txs.len())
            .with_arg("interactions", chain.log.len()),
    );

    // ---- graph-build ----------------------------------------------------
    let start = obs.now_us();
    let mut builder = GraphBuilder::new();
    for e in chain.log.events() {
        builder.touch(e.from, e.from_kind);
        builder.touch(e.to, e.to_kind);
        builder.add_interaction(e.from, e.to, e.weight);
    }
    let graph = builder.build();
    let dur = obs.now_us() - start;
    obs.record(
        Record::span(start, dur, "stage", "graph-build")
            .with_arg("vertices", graph.node_count())
            .with_arg("edges", graph.edge_count()),
    );

    // ---- csr ------------------------------------------------------------
    let start = obs.now_us();
    let csr = graph.to_csr();
    let dur = obs.now_us() - start;
    obs.record(Record::span(start, dur, "stage", "csr").with_arg("edges", csr.edge_count()));

    // ---- partition ------------------------------------------------------
    // One multilevel pass over the cumulative graph at the largest k —
    // the unit cost dominating the paper's METIS offline simulation.
    let k_max = shard_counts
        .iter()
        .copied()
        .max_by_key(|k| k.get())
        .unwrap_or(ShardCount::TWO);
    let start = obs.now_us();
    let part = kway_traced(
        &csr,
        k_max,
        &MultilevelConfig {
            seed,
            ..MultilevelConfig::default()
        },
        &mut obs,
    );
    let dur = obs.now_us() - start;
    obs.record(
        Record::span(start, dur, "stage", "partition")
            .with_arg("k", k_max.get())
            .with_arg("vertices", part.len()),
    );

    // ---- simulate / replay, one pair at a time --------------------------
    let mut pair = 0u32;
    for (spec, _source) in &strategies {
        for &k in shard_counts {
            let label = format!("{} k={}", spec.name(), k.get());
            obs.set_metric_prefix(format!("{}/k{}/", spec.name(), k.get()));

            let config = spec.simulator_config(k).with_window(window);
            let mut sim = ShardSimulator::new(config, spec.build_partitioner(seed));
            let start = obs.now_us();
            let result = sim.run_traced(&chain.log, &mut obs);
            let dur = obs.now_us() - start;
            obs.record(
                Record::span(start, dur, "stage", "simulate")
                    .with_arg("pair", label.clone())
                    .with_arg("repartitions", result.repartitions),
            );

            if replay {
                let assignment = Assignment::from_map(sim.into_state().assignment_map(), k);
                let mut cfg = spec.runtime_config(k).with_seed(seed);
                cfg.k = k;
                let runtime = ShardedRuntime::new(cfg, assignment);
                let start = obs.now_us();
                // an uninstrumented (`--no-obs`) profile must not pay for
                // event collection it would immediately discard
                let (rep, mut virt) = if obs.enabled() {
                    runtime.run_traced(chain.chain.world(), &chain.txs)
                } else {
                    (
                        runtime.run(chain.chain.world(), &chain.txs),
                        Trace::disabled(),
                    )
                };
                let dur = obs.now_us() - start;
                obs.record(
                    Record::span(start, dur, "stage", "replay")
                        .with_arg("pair", label.clone())
                        .with_arg("committed", rep.committed),
                );
                virt.retag_process(pair + 1);
                virt.name_process(pair + 1, format!("{label} replay (virtual µs)"));
                virt.prefix_metrics(&format!("{}/k{}/", spec.name(), k.get()));
                obs.merge(virt);
            }
            pair += 1;
        }
    }
    obs.set_metric_prefix("");

    Ok(ProfileReport {
        trace: obs,
        wall_us: stopwatch.elapsed_us(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(instrument: bool) -> ProfileReport {
        let registry = StrategyRegistry::with_builtins();
        run_profile(
            &registry,
            "hash,metis",
            &[ShardCount::TWO],
            GeneratorConfig::test_scale(5),
            Duration::hours(4),
            7,
            true,
            instrument,
        )
        .expect("built-ins resolve")
    }

    #[test]
    fn stages_cover_the_wall_time() {
        let report = quick(true);
        let stages = report.stages();
        let names: Vec<&str> = stages.iter().map(|s| s.name.as_str()).collect();
        for stage in [
            "chain-gen",
            "graph-build",
            "csr",
            "partition",
            "simulate",
            "replay",
        ] {
            assert!(names.contains(&stage), "missing {stage} in {names:?}");
        }
        assert!(
            report.coverage() >= 0.95,
            "coverage {:.3} of {} µs",
            report.coverage(),
            report.wall_us()
        );
        let rendered = report.table().render_ascii();
        assert!(rendered.contains("total (wall)"), "{rendered}");
        assert!(rendered.contains("partition/coarsen"), "{rendered}");
    }

    #[test]
    fn uninstrumented_run_keeps_nothing_but_wall_time() {
        let report = quick(false);
        assert!(report.trace().records().is_empty());
        assert!(report.trace().metrics().is_empty());
        assert!(report.wall_us() > 0);
        assert_eq!(report.coverage(), 0.0);
    }
}
