/root/repo/target/debug/examples/trace_export-1d598714119937bf.d: examples/trace_export.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_export-1d598714119937bf.rmeta: examples/trace_export.rs Cargo.toml

examples/trace_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
