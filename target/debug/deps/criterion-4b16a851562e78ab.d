/root/repo/target/debug/deps/criterion-4b16a851562e78ab.d: third_party/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-4b16a851562e78ab.rlib: third_party/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-4b16a851562e78ab.rmeta: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:
