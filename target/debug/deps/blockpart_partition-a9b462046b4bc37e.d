/root/repo/target/debug/deps/blockpart_partition-a9b462046b4bc37e.d: crates/partition/src/lib.rs crates/partition/src/hashing.rs crates/partition/src/kl/mod.rs crates/partition/src/kl/classic.rs crates/partition/src/kl/distributed.rs crates/partition/src/metrics.rs crates/partition/src/multilevel/mod.rs crates/partition/src/multilevel/coarsen.rs crates/partition/src/multilevel/initial.rs crates/partition/src/multilevel/matching.rs crates/partition/src/multilevel/refine.rs crates/partition/src/partition.rs crates/partition/src/streaming.rs crates/partition/src/traits.rs

/root/repo/target/debug/deps/libblockpart_partition-a9b462046b4bc37e.rmeta: crates/partition/src/lib.rs crates/partition/src/hashing.rs crates/partition/src/kl/mod.rs crates/partition/src/kl/classic.rs crates/partition/src/kl/distributed.rs crates/partition/src/metrics.rs crates/partition/src/multilevel/mod.rs crates/partition/src/multilevel/coarsen.rs crates/partition/src/multilevel/initial.rs crates/partition/src/multilevel/matching.rs crates/partition/src/multilevel/refine.rs crates/partition/src/partition.rs crates/partition/src/streaming.rs crates/partition/src/traits.rs

crates/partition/src/lib.rs:
crates/partition/src/hashing.rs:
crates/partition/src/kl/mod.rs:
crates/partition/src/kl/classic.rs:
crates/partition/src/kl/distributed.rs:
crates/partition/src/metrics.rs:
crates/partition/src/multilevel/mod.rs:
crates/partition/src/multilevel/coarsen.rs:
crates/partition/src/multilevel/initial.rs:
crates/partition/src/multilevel/matching.rs:
crates/partition/src/multilevel/refine.rs:
crates/partition/src/partition.rs:
crates/partition/src/streaming.rs:
crates/partition/src/traits.rs:
