/root/repo/target/debug/deps/simulator-98f383e140d015fe.d: crates/bench/benches/simulator.rs

/root/repo/target/debug/deps/libsimulator-98f383e140d015fe.rmeta: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
