//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! matching scheme, refinement passes, initial-partitioning trials and
//! balance weighting. Each timing group also prints the resulting
//! edge-cut once, so quality and cost can be compared side by side.

use blockpart_graph::Csr;
use blockpart_partition::multilevel::{kway, MatchingScheme};
use blockpart_partition::{CutMetrics, MultilevelConfig, VertexWeighting};
use blockpart_types::ShardCount;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn community_graph(communities: u32, size: u32, seed: u64) -> Csr {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = communities * size;
    let mut edges = Vec::new();
    for v in 0..n {
        let c = v / size;
        // dense intra-community edges
        for _ in 0..3 {
            let u = c * size + rng.gen_range(0..size);
            if u != v {
                edges.push((v, u, 5));
            }
        }
        // sparse inter-community edges
        if rng.gen_bool(0.08) {
            let u = rng.gen_range(0..n);
            if u != v {
                edges.push((v, u, 1));
            }
        }
    }
    Csr::from_edges(n as usize, &edges)
}

fn report_quality(name: &str, csr: &Csr, cfg: &MultilevelConfig) {
    let k = ShardCount::new(8).expect("non-zero");
    let part = kway(csr, k, cfg);
    let m = CutMetrics::compute(csr, &part);
    eprintln!(
        "# quality[{name}]: dynamic-cut {:.4}, static-balance {:.3}",
        m.dynamic_edge_cut, m.static_balance
    );
}

fn bench_matching_scheme(c: &mut Criterion) {
    let csr = community_graph(16, 200, 3);
    let k = ShardCount::new(8).expect("non-zero");
    let mut group = c.benchmark_group("ablation-matching");
    group.sample_size(10);
    for (name, scheme) in [
        ("heavy-edge", MatchingScheme::HeavyEdge),
        ("random", MatchingScheme::Random),
    ] {
        let cfg = MultilevelConfig {
            matching: scheme,
            ..MultilevelConfig::default()
        };
        report_quality(name, &csr, &cfg);
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| kway(&csr, k, cfg));
        });
    }
    group.finish();
}

fn bench_refinement_passes(c: &mut Criterion) {
    let csr = community_graph(16, 200, 5);
    let k = ShardCount::new(8).expect("non-zero");
    let mut group = c.benchmark_group("ablation-refinement");
    group.sample_size(10);
    for passes in [0usize, 2, 8] {
        let cfg = MultilevelConfig {
            refine_passes: passes,
            ..MultilevelConfig::default()
        };
        report_quality(&format!("passes-{passes}"), &csr, &cfg);
        group.bench_with_input(BenchmarkId::from_parameter(passes), &cfg, |b, cfg| {
            b.iter(|| kway(&csr, k, cfg));
        });
    }
    group.finish();
}

fn bench_init_trials(c: &mut Criterion) {
    let csr = community_graph(12, 200, 7);
    let k = ShardCount::new(8).expect("non-zero");
    let mut group = c.benchmark_group("ablation-init-trials");
    group.sample_size(10);
    for trials in [1usize, 4, 8] {
        let cfg = MultilevelConfig {
            init_trials: trials,
            ..MultilevelConfig::default()
        };
        report_quality(&format!("trials-{trials}"), &csr, &cfg);
        group.bench_with_input(BenchmarkId::from_parameter(trials), &cfg, |b, cfg| {
            b.iter(|| kway(&csr, k, cfg));
        });
    }
    group.finish();
}

fn bench_weighting(c: &mut Criterion) {
    let csr = community_graph(12, 200, 9);
    let k = ShardCount::new(8).expect("non-zero");
    let mut group = c.benchmark_group("ablation-weighting");
    group.sample_size(10);
    for (name, weighting) in [
        ("unit", VertexWeighting::Unit),
        ("activity", VertexWeighting::Activity),
    ] {
        let cfg = MultilevelConfig {
            weighting,
            ..MultilevelConfig::default()
        };
        report_quality(name, &csr, &cfg);
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| kway(&csr, k, cfg));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matching_scheme,
    bench_refinement_passes,
    bench_init_trials,
    bench_weighting
);
criterion_main!(benches);
