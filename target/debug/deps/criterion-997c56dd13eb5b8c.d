/root/repo/target/debug/deps/criterion-997c56dd13eb5b8c.d: third_party/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-997c56dd13eb5b8c: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:
