/root/repo/target/debug/deps/crossbeam-704b48af10086541.d: third_party/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-704b48af10086541.rmeta: third_party/crossbeam/src/lib.rs Cargo.toml

third_party/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
