/root/repo/target/debug/examples/attack_replay-3dad4a4b03197351.d: examples/attack_replay.rs Cargo.toml

/root/repo/target/debug/examples/libattack_replay-3dad4a4b03197351.rmeta: examples/attack_replay.rs Cargo.toml

examples/attack_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
