//! Concentration statistics: how unevenly activity is distributed.
//!
//! The paper's METIS anomaly hinges on exactly this: after the 2016
//! attack, a small fraction of vertices carried almost all the activity.
//! The Gini coefficient and top-share quantify it.

/// The Gini coefficient of a set of non-negative values: 0 for perfectly
/// equal, approaching 1 when a single element holds everything.
///
/// Returns `None` for empty input or an all-zero population.
///
/// # Examples
///
/// ```
/// use blockpart_metrics::gini;
///
/// assert_eq!(gini(&[5, 5, 5, 5]), Some(0.0));
/// let skewed = gini(&[0, 0, 0, 100]).unwrap();
/// assert!(skewed > 0.7);
/// assert_eq!(gini(&[]), None);
/// ```
pub fn gini(values: &[u64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let total: u128 = values.iter().map(|&v| u128::from(v)).sum();
    if total == 0 {
        return None;
    }
    let mut sorted: Vec<u64> = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    // G = (2 Σ i·x_i) / (n Σ x_i) − (n + 1)/n, with i 1-based over sorted x
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as f64 + 1.0) * v as f64)
        .sum();
    Some((2.0 * weighted) / (n * total as f64) - (n + 1.0) / n)
}

/// The share of the total held by the top `fraction` of elements
/// (e.g. `top_share(&activity, 0.01)` = how much the top 1% carries).
///
/// Returns `None` for empty input, an all-zero population or a fraction
/// outside `(0, 1]`.
///
/// # Examples
///
/// ```
/// use blockpart_metrics::top_share;
///
/// // top 25% of [1,1,1,97] is the single 97 -> 97% of the mass
/// let s = top_share(&[1, 1, 1, 97], 0.25).unwrap();
/// assert!((s - 0.97).abs() < 1e-12);
/// ```
pub fn top_share(values: &[u64], fraction: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=1.0).contains(&fraction) || fraction == 0.0 {
        return None;
    }
    let total: u128 = values.iter().map(|&v| u128::from(v)).sum();
    if total == 0 {
        return None;
    }
    let mut sorted: Vec<u64> = values.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let take = ((sorted.len() as f64 * fraction).ceil() as usize).clamp(1, sorted.len());
    let top: u128 = sorted[..take].iter().map(|&v| u128::from(v)).sum();
    Some(top as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_of_equal_values_is_zero() {
        assert_eq!(gini(&[7, 7, 7]), Some(0.0));
    }

    #[test]
    fn gini_increases_with_skew() {
        let mild = gini(&[1, 2, 3, 4]).unwrap();
        let heavy = gini(&[1, 1, 1, 997]).unwrap();
        assert!(heavy > mild);
        assert!(heavy < 1.0);
    }

    #[test]
    fn gini_rejects_degenerate_inputs() {
        assert_eq!(gini(&[]), None);
        assert_eq!(gini(&[0, 0]), None);
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = gini(&[1, 2, 3]).unwrap();
        let b = gini(&[10, 20, 30]).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn top_share_full_fraction_is_one() {
        assert!((top_share(&[3, 2, 1], 1.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_share_rejects_bad_fraction() {
        assert_eq!(top_share(&[1], 0.0), None);
        assert_eq!(top_share(&[1], 1.5), None);
        assert_eq!(top_share(&[], 0.5), None);
        assert_eq!(top_share(&[0, 0], 0.5), None);
    }

    #[test]
    fn top_share_always_takes_at_least_one() {
        // tiny fraction of a small slice still returns the single largest
        let s = top_share(&[1, 1, 98], 0.001).unwrap();
        assert!((s - 0.98).abs() < 1e-12);
    }
}
