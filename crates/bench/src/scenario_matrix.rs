//! The scenario × strategy CI matrix behind the `scenarios` binary.
//!
//! Every adversarial scenario from the
//! [`ScenarioRegistry`] is scored
//! against every requested strategy at every shard count, through all
//! three measurement paths of [`Experiment`]: offline simulation
//! (cut/balance/moves/repartitions), 2PC replay (cross-shard ratio,
//! abort rate, p99 commit latency) and the live repartitioning service
//! (migration episodes, accounts and bytes shipped, worst
//! during-migration p99). The chain for a scenario is generated once and
//! reused across its strategy × k cells.
//!
//! The report renders as a stable-schema JSON document (see [`SCHEMA`])
//! plus a flat CSV, and [`schema_drift`] turns a committed baseline into
//! a CI gate on the *shape* of the matrix — the schema string, the row
//! identity set in both directions, and the metric column names. Metric
//! *values* are deliberately not gated here: hostile workloads shift
//! them by design, and the perf harness already gates the deterministic
//! quantities that must not drift.

use blockpart_core::{
    EngineRegistry, Experiment, ExperimentReport, ScenarioRegistry, StrategyRegistry,
};
use blockpart_ethereum::gen::GeneratorConfig;
use blockpart_metrics::Json;
use blockpart_types::ShardCount;

/// Schema identifier stamped into every scenario-matrix document.
pub const SCHEMA: &str = "blockpart.scenarios/1";

/// The metric column names of a matrix row, in CSV order. Recorded in
/// the document so [`schema_drift`] catches added or renamed metrics.
pub const METRIC_KEYS: [&str; 11] = [
    "cut",
    "balance",
    "moves",
    "repartitions",
    "cross_pct",
    "abort_pct",
    "p99_ms",
    "migrations",
    "accounts_moved",
    "bytes_moved",
    "during_p99_ms",
];

/// Matrix configuration: workload scale and the swept axes.
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixConfig {
    /// Generator scale (fraction of the full transaction rate).
    pub scale: f64,
    /// Generator and partitioner seed.
    pub seed: u64,
    /// Scenario spec list (`all` for every registered factory).
    pub scenarios: String,
    /// Strategy spec list.
    pub strategies: String,
    /// Shard counts swept per scenario × strategy.
    pub shard_counts: Vec<u16>,
    /// Intra-shard execution engine spec, resolved through the
    /// [`EngineRegistry`]. Informational: engines are parity-guaranteed,
    /// so the column records *how* cells were executed without being part
    /// of any row identity — switching engines is not schema drift.
    /// Documents written before the field parse as `serial`.
    pub engine: String,
}

impl MatrixConfig {
    /// The reduced CI profile: small workload, `hash` vs `tr-metis` at
    /// k = 2 over every registered scenario, serial execution.
    pub fn ci() -> Self {
        MatrixConfig {
            scale: 0.0004,
            seed: 42,
            scenarios: "all".to_string(),
            strategies: "hash,tr-metis".to_string(),
            shard_counts: vec![2],
            engine: "serial".to_string(),
        }
    }
}

/// One scenario × strategy × k cell of the matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixRow {
    /// Scenario label (embeds canonical parameters).
    pub scenario: String,
    /// Strategy display name.
    pub strategy: String,
    /// Shard count.
    pub k: u16,
    /// The execution engine the cell ran under (canonical engine name).
    /// Informational — not part of [`key`](MatrixRow::key), because
    /// engines are parity-guaranteed and must not cause schema drift.
    pub engine: String,
    /// Mean dynamic edge cut over active offline windows.
    pub cut: f64,
    /// Normalized mean dynamic balance, `(b − 1)/(k − 1)`.
    pub balance: f64,
    /// Total vertices moved by offline repartitions.
    pub moves: u64,
    /// Offline repartitions that fired.
    pub repartitions: u64,
    /// Replay cross-shard transaction percentage.
    pub cross_pct: f64,
    /// Replay 2PC abort percentage.
    pub abort_pct: f64,
    /// Replay p99 commit latency, milliseconds (virtual clock).
    pub p99_ms: f64,
    /// Live migration episodes.
    pub migrations: u64,
    /// Accounts shipped by live migrations.
    pub accounts_moved: u64,
    /// Bytes shipped by live migrations.
    pub bytes_moved: u64,
    /// Worst p99 commit latency while a migration was in flight,
    /// milliseconds (virtual clock).
    pub during_p99_ms: f64,
}

impl MatrixRow {
    /// The `scenario/strategy/k` identity used to match rows across
    /// reports.
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.scenario, self.strategy, self.k)
    }
}

/// A completed scenario-matrix run.
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixReport {
    /// The configuration the run used.
    pub config: MatrixConfig,
    /// All cells, in scenario → experiment order.
    pub rows: Vec<MatrixRow>,
}

/// Mean cut/balance over the offline windows that saw traffic — the
/// same aggregation the experiment tables use.
fn mean_offline_metrics(sim: &blockpart_shard::SimulationResult) -> (f64, f64) {
    let active: Vec<_> = sim.windows.iter().filter(|w| w.events > 0).collect();
    let n = active.len().max(1) as f64;
    (
        active.iter().map(|w| w.dynamic_edge_cut).sum::<f64>() / n,
        active.iter().map(|w| w.dynamic_balance).sum::<f64>() / n,
    )
}

fn normalized_balance(mean_balance: f64, k: u16) -> f64 {
    if k <= 1 {
        0.0
    } else {
        ((mean_balance - 1.0) / (f64::from(k) - 1.0)).max(0.0)
    }
}

/// Flattens one scenario's [`ExperimentReport`] into matrix rows.
fn rows_of(scenario: &str, engine: &str, report: &ExperimentReport) -> Vec<MatrixRow> {
    report
        .runs
        .iter()
        .map(|run| {
            let (cut, balance) = run.offline.as_ref().map_or((0.0, 0.0), |sim| {
                let (cut, bal) = mean_offline_metrics(sim);
                (cut, normalized_balance(bal, run.k.get()))
            });
            MatrixRow {
                scenario: scenario.to_string(),
                strategy: run.strategy.clone(),
                k: run.k.get(),
                engine: engine.to_string(),
                cut,
                balance,
                moves: run.offline.as_ref().map_or(0, |s| s.total_moves),
                repartitions: run.offline.as_ref().map_or(0, |s| s.repartitions as u64),
                cross_pct: run
                    .runtime
                    .as_ref()
                    .map_or(0.0, |r| r.cross_shard_ratio * 100.0),
                abort_pct: run.runtime.as_ref().map_or(0.0, |r| r.abort_rate * 100.0),
                p99_ms: run
                    .runtime
                    .as_ref()
                    .map_or(0.0, |r| r.p99_commit_latency_us as f64 / 1e3),
                migrations: run.live.as_ref().map_or(0, |l| l.migrations() as u64),
                accounts_moved: run.live.as_ref().map_or(0, |l| l.accounts_moved()),
                bytes_moved: run.live.as_ref().map_or(0, |l| l.bytes_moved()),
                during_p99_ms: run
                    .live
                    .as_ref()
                    .map_or(0.0, |l| l.worst_during_p99_us() as f64 / 1e3),
            }
        })
        .collect()
}

/// Runs the full matrix under `config`, printing one progress line per
/// scenario to stderr.
///
/// # Errors
///
/// Returns the registry error message when a scenario or strategy spec
/// does not resolve.
pub fn run(config: &MatrixConfig) -> Result<MatrixReport, String> {
    let scenarios = ScenarioRegistry::with_builtins();
    let strategies = StrategyRegistry::with_builtins();
    let specs = scenarios
        .resolve_list(&config.scenarios)
        .map_err(|e| e.to_string())?;
    strategies
        .resolve_list(&config.strategies)
        .map_err(|e| e.to_string())?;
    let exec = EngineRegistry::with_builtins()
        .resolve(&config.engine)
        .map_err(|e| e.to_string())?;
    let engine_name = exec.name();
    let shard_counts: Vec<ShardCount> = config
        .shard_counts
        .iter()
        .map(|&k| ShardCount::new(k).ok_or_else(|| "zero shard count".to_string()))
        .collect::<Result<_, _>>()?;

    let gen_config = GeneratorConfig::demo_scale(config.seed).with_scale(config.scale);
    let mut rows = Vec::new();
    for scenario in specs {
        eprintln!("# scenarios: {} ...", scenario.name());
        let report = Experiment::from_generator(gen_config.clone())
            .scenario(scenario.clone())
            .named_strategies(&strategies, &config.strategies)
            .map_err(|e| e.to_string())?
            .shard_counts(shard_counts.clone())
            .seed(config.seed)
            .offline(true)
            .replay(true)
            .live(true)
            .with_exec(exec.clone())
            .run();
        rows.extend(rows_of(scenario.name(), &engine_name, &report));
    }
    Ok(MatrixReport {
        config: config.clone(),
        rows,
    })
}

impl MatrixReport {
    /// Renders the report as the stable scenario-matrix JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from(SCHEMA)),
            ("seed", Json::from(self.config.seed)),
            ("scale", Json::from(self.config.scale)),
            ("scenarios", Json::from(self.config.scenarios.as_str())),
            ("strategies", Json::from(self.config.strategies.as_str())),
            ("engine", Json::from(self.config.engine.as_str())),
            (
                "shard_counts",
                Json::arr(self.config.shard_counts.iter().map(|&k| Json::from(k))),
            ),
            (
                "metrics",
                Json::arr(METRIC_KEYS.iter().map(|&m| Json::from(m))),
            ),
            (
                "rows",
                Json::arr(self.rows.iter().map(|r| {
                    Json::obj([
                        ("scenario", Json::from(r.scenario.as_str())),
                        ("strategy", Json::from(r.strategy.as_str())),
                        ("k", Json::from(r.k)),
                        ("engine", Json::from(r.engine.as_str())),
                        ("cut", Json::from(r.cut)),
                        ("balance", Json::from(r.balance)),
                        ("moves", Json::from(r.moves)),
                        ("repartitions", Json::from(r.repartitions)),
                        ("cross_pct", Json::from(r.cross_pct)),
                        ("abort_pct", Json::from(r.abort_pct)),
                        ("p99_ms", Json::from(r.p99_ms)),
                        ("migrations", Json::from(r.migrations)),
                        ("accounts_moved", Json::from(r.accounts_moved)),
                        ("bytes_moved", Json::from(r.bytes_moved)),
                        ("during_p99_ms", Json::from(r.during_p99_ms)),
                    ])
                })),
            ),
        ])
    }

    /// Parses a document produced by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field —
    /// including any missing metric key, so a renamed metric fails the
    /// baseline load rather than passing silently.
    pub fn from_json(doc: &Json) -> Result<MatrixReport, String> {
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema `{schema}` (want `{SCHEMA}`)"));
        }
        let metrics: Vec<String> = doc
            .get("metrics")
            .and_then(Json::as_array)
            .ok_or("missing metrics")?
            .iter()
            .map(|m| m.as_str().map(str::to_string).ok_or("bad metric name"))
            .collect::<Result<_, _>>()?;
        if metrics != METRIC_KEYS {
            return Err(format!(
                "metric columns changed: baseline [{}] vs current [{}]",
                metrics.join(", "),
                METRIC_KEYS.join(", ")
            ));
        }
        let shard_counts = doc
            .get("shard_counts")
            .and_then(Json::as_array)
            .ok_or("missing shard_counts")?
            .iter()
            .map(|k| {
                k.as_u64()
                    .and_then(|k| u16::try_from(k).ok())
                    .ok_or("bad shard count".to_string())
            })
            .collect::<Result<Vec<u16>, String>>()?;
        let str_field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing {name}"))
        };
        let rows = doc
            .get("rows")
            .and_then(Json::as_array)
            .ok_or("missing rows")?
            .iter()
            .map(|r| {
                let f = |name: &str| {
                    r.get(name)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("row missing {name}"))
                };
                let u = |name: &str| {
                    r.get(name)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("row missing {name}"))
                };
                Ok(MatrixRow {
                    scenario: r
                        .get("scenario")
                        .and_then(Json::as_str)
                        .ok_or("row missing scenario")?
                        .to_string(),
                    strategy: r
                        .get("strategy")
                        .and_then(Json::as_str)
                        .ok_or("row missing strategy")?
                        .to_string(),
                    k: u("k").and_then(|k| {
                        u16::try_from(k).map_err(|_| "bad row shard count".to_string())
                    })?,
                    // additive within schema 1: rows written before the
                    // column parse as serial execution
                    engine: r
                        .get("engine")
                        .and_then(Json::as_str)
                        .unwrap_or("serial")
                        .to_string(),
                    cut: f("cut")?,
                    balance: f("balance")?,
                    moves: u("moves")?,
                    repartitions: u("repartitions")?,
                    cross_pct: f("cross_pct")?,
                    abort_pct: f("abort_pct")?,
                    p99_ms: f("p99_ms")?,
                    migrations: u("migrations")?,
                    accounts_moved: u("accounts_moved")?,
                    bytes_moved: u("bytes_moved")?,
                    during_p99_ms: f("during_p99_ms")?,
                })
            })
            .collect::<Result<Vec<MatrixRow>, String>>()?;
        Ok(MatrixReport {
            config: MatrixConfig {
                scale: doc
                    .get("scale")
                    .and_then(Json::as_f64)
                    .ok_or("missing scale")?,
                seed: doc
                    .get("seed")
                    .and_then(Json::as_u64)
                    .ok_or("missing seed")?,
                scenarios: str_field("scenarios")?,
                strategies: str_field("strategies")?,
                shard_counts,
                engine: doc
                    .get("engine")
                    .and_then(Json::as_str)
                    .unwrap_or("serial")
                    .to_string(),
            },
            rows,
        })
    }

    /// Renders the matrix as a flat CSV: identity columns, the
    /// informational engine column, then [`METRIC_KEYS`] in order.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("scenario,strategy,k,engine,");
        out.push_str(&METRIC_KEYS.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{:.4},{:.4},{},{},{:.2},{:.2},{:.3},{},{},{},{:.3}\n",
                r.scenario,
                r.strategy,
                r.k,
                r.engine,
                r.cut,
                r.balance,
                r.moves,
                r.repartitions,
                r.cross_pct,
                r.abort_pct,
                r.p99_ms,
                r.migrations,
                r.accounts_moved,
                r.bytes_moved,
                r.during_p99_ms,
            ));
        }
        out
    }
}

/// Compares the *shape* of `current` against `baseline`: every baseline
/// row identity must still exist, and every current row must be in the
/// baseline (a new scenario or strategy means the committed baseline
/// needs a refresh). Returns human-readable drift messages; empty means
/// the gate passes. Metric values are not compared — see the module
/// docs.
pub fn schema_drift(current: &MatrixReport, baseline: &MatrixReport) -> Vec<String> {
    let current_keys: Vec<String> = current.rows.iter().map(MatrixRow::key).collect();
    let baseline_keys: Vec<String> = baseline.rows.iter().map(MatrixRow::key).collect();
    let mut drift = Vec::new();
    for key in &baseline_keys {
        if !current_keys.contains(key) {
            drift.push(format!(
                "missing row {key}: baseline cell absent from this run"
            ));
        }
    }
    for key in &current_keys {
        if !baseline_keys.contains(key) {
            drift.push(format!(
                "new row {key}: not in the baseline (refresh bench/scenarios-baseline.json)"
            ));
        }
    }
    drift
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(scenario: &str, strategy: &str, k: u16) -> MatrixRow {
        MatrixRow {
            scenario: scenario.to_string(),
            strategy: strategy.to_string(),
            k,
            engine: "serial".to_string(),
            cut: 0.25,
            balance: 0.5,
            moves: 10,
            repartitions: 2,
            cross_pct: 30.0,
            abort_pct: 1.5,
            p99_ms: 4.2,
            migrations: 3,
            accounts_moved: 100,
            bytes_moved: 1600,
            during_p99_ms: 9.9,
        }
    }

    fn report_with(rows: Vec<MatrixRow>) -> MatrixReport {
        MatrixReport {
            config: MatrixConfig::ci(),
            rows,
        }
    }

    #[test]
    fn json_roundtrip_preserves_report() {
        let report = report_with(vec![
            row("hub-burst", "HASH", 2),
            row("phase-shift", "TR-METIS", 4),
        ]);
        let rendered = report.to_json().render_pretty();
        let parsed = MatrixReport::from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn schema_and_metric_columns_are_gated() {
        let doc = Json::parse(r#"{"schema": "other/9"}"#).unwrap();
        assert!(MatrixReport::from_json(&doc).is_err());
        // a renamed metric column fails the load
        let mut rendered = report_with(vec![row("hub-burst", "HASH", 2)])
            .to_json()
            .render();
        rendered = rendered.replace("\"cut\"", "\"edge_cut\"");
        let err = MatrixReport::from_json(&Json::parse(&rendered).unwrap()).unwrap_err();
        assert!(err.contains("metric columns changed"), "{err}");
    }

    #[test]
    fn drift_catches_rows_in_both_directions() {
        let baseline = report_with(vec![
            row("hub-burst", "HASH", 2),
            row("dummy-spam", "HASH", 2),
        ]);
        let current = report_with(vec![
            row("hub-burst", "HASH", 2),
            row("nft-mint", "HASH", 2),
        ]);
        let drift = schema_drift(&current, &baseline);
        assert_eq!(drift.len(), 2);
        assert!(
            drift[0].contains("missing row dummy-spam/HASH/2"),
            "{drift:?}"
        );
        assert!(drift[1].contains("new row nft-mint/HASH/2"), "{drift:?}");
        assert!(schema_drift(&baseline, &baseline).is_empty());
    }

    #[test]
    fn csv_has_identity_plus_metric_columns() {
        let csv = report_with(vec![row("hub-burst", "HASH", 2)]).to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(
            header,
            "scenario,strategy,k,engine,cut,balance,moves,repartitions,cross_pct,abort_pct,\
             p99_ms,migrations,accounts_moved,bytes_moved,during_p99_ms"
        );
        let line = lines.next().unwrap();
        assert!(line.starts_with("hub-burst,HASH,2,serial,"), "{line}");
        assert_eq!(line.split(',').count(), header.split(',').count());
    }

    #[test]
    fn engine_column_is_additive_and_identity_free() {
        // documents written before the column parse as serial execution
        let report = report_with(vec![row("hub-burst", "HASH", 2)]);
        let stripped = report
            .to_json()
            .render()
            .replace(",\"engine\":\"serial\"", "");
        let parsed = MatrixReport::from_json(&Json::parse(&stripped).unwrap()).unwrap();
        assert_eq!(parsed.rows[0].engine, "serial");
        assert_eq!(parsed.config.engine, "serial");
        // switching engines is not schema drift: row identities (and so
        // the baseline gate) ignore the column entirely
        let mut parallel = report.clone();
        parallel.rows[0].engine = "parallel[lanes=0;retry=4;window=32]".to_string();
        assert_eq!(parallel.rows[0].key(), report.rows[0].key());
        assert!(schema_drift(&parallel, &report).is_empty());
    }

    #[test]
    fn matrix_runs_scenarios_through_all_three_paths() {
        // tiny sanity run: one hostile scenario, both CI strategies
        let config = MatrixConfig {
            scale: 0.0002,
            seed: 7,
            scenarios: "hub-burst[contracts=2]".to_string(),
            strategies: "hash,tr-metis".to_string(),
            shard_counts: vec![2],
            engine: "serial".to_string(),
        };
        let report = run(&config).unwrap();
        assert_eq!(report.rows.len(), 2);
        for r in &report.rows {
            assert_eq!(r.scenario, "hub-burst[contracts=2]");
            assert!(r.cut > 0.0, "offline path produced no cut: {r:?}");
            assert!(r.p99_ms > 0.0, "replay path produced no latency: {r:?}");
        }
        assert!(run(&MatrixConfig {
            scenarios: "bogus".to_string(),
            ..config
        })
        .is_err());
    }
}
