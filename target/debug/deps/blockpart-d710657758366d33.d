/root/repo/target/debug/deps/blockpart-d710657758366d33.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart-d710657758366d33.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
