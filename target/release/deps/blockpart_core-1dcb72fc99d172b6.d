/root/repo/target/release/deps/blockpart_core-1dcb72fc99d172b6.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/experiments.rs crates/core/src/methods.rs crates/core/src/runtime_study.rs crates/core/src/study.rs

/root/repo/target/release/deps/libblockpart_core-1dcb72fc99d172b6.rlib: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/experiments.rs crates/core/src/methods.rs crates/core/src/runtime_study.rs crates/core/src/study.rs

/root/repo/target/release/deps/libblockpart_core-1dcb72fc99d172b6.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/experiments.rs crates/core/src/methods.rs crates/core/src/runtime_study.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/experiments.rs:
crates/core/src/methods.rs:
crates/core/src/runtime_study.rs:
crates/core/src/study.rs:
