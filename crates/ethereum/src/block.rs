//! Blocks: batches of transactions sharing a timestamp.

use blockpart_types::{BlockNumber, Gas, Timestamp};
use serde::{Deserialize, Serialize};

use crate::transaction::Transaction;

/// A block under construction: an ordered batch of transactions executed
/// at the same timestamp.
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::Block;
/// use blockpart_types::{BlockNumber, Timestamp};
///
/// let b = Block::new(BlockNumber::new(7), Timestamp::from_secs(100), Vec::new());
/// assert_eq!(b.number, BlockNumber::new(7));
/// assert!(b.transactions.is_empty());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Height in the chain.
    pub number: BlockNumber,
    /// Timestamp all contained transactions execute at.
    pub time: Timestamp,
    /// The transactions, in execution order.
    pub transactions: Vec<Transaction>,
}

impl Block {
    /// Creates a block.
    pub fn new(number: BlockNumber, time: Timestamp, transactions: Vec<Transaction>) -> Self {
        Block {
            number,
            time,
            transactions,
        }
    }
}

/// What remains of a block after execution: the header-level summary kept
/// by the [`Chain`](crate::Chain).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockSummary {
    /// Height in the chain.
    pub number: BlockNumber,
    /// Block timestamp.
    pub time: Timestamp,
    /// Number of transactions executed.
    pub tx_count: usize,
    /// Number of transactions that failed.
    pub failed: usize,
    /// Total gas consumed.
    pub gas_used: Gas,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_holds_transactions() {
        let b = Block::new(BlockNumber::GENESIS, Timestamp::EPOCH, Vec::new());
        assert_eq!(b.transactions.len(), 0);
        assert_eq!(b.time, Timestamp::EPOCH);
    }
}
