//! Log-binned histograms, for degree and activity distributions.

use serde::{Deserialize, Serialize};

/// A base-2 log-binned histogram of non-negative integers: bin `i` counts
/// values in `[2^i, 2^(i+1))`, with a dedicated zero bin.
///
/// Heavy-tailed distributions (blockchain degrees, account activity) are
/// unreadable in linear bins; log bins make the power-law slope visible.
///
/// # Examples
///
/// ```
/// use blockpart_metrics::LogHistogram;
///
/// let h: LogHistogram = [0u64, 1, 1, 2, 3, 700].into_iter().collect();
/// assert_eq!(h.zero_count(), 1);
/// assert_eq!(h.count(), 6);
/// assert_eq!(h.bin_for(700), 9); // 2^9 = 512 <= 700 < 1024
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    zero: u64,
    bins: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Adds one observation.
    pub fn record(&mut self, value: u64) {
        self.total += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
        if value == 0 {
            self.zero += 1;
            return;
        }
        let bin = Self::bin_of(value);
        if self.bins.len() <= bin {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += 1;
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Number of zero observations.
    pub fn zero_count(&self) -> u64 {
        self.zero
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The bin index a value would land in (zero goes to the zero bin and
    /// reports bin 0 here for display purposes).
    pub fn bin_for(&self, value: u64) -> usize {
        if value == 0 {
            0
        } else {
            Self::bin_of(value)
        }
    }

    /// `(lower_bound, count)` per non-empty bin, ascending.
    pub fn bins(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
    }

    /// The `q`-th percentile (`q` in `[0, 1]`), estimated from the log
    /// bins by linear interpolation within the containing bin and clamped
    /// to the observed maximum. Exact for the zero bin; within a factor
    /// of 2 elsewhere — the right resolution for latency percentiles
    /// (p50/p99 in µs) where the bin edge, not the third digit, carries
    /// the signal. Returns 0 when empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use blockpart_metrics::LogHistogram;
    ///
    /// let h: LogHistogram = (1u64..=1000).collect();
    /// let p50 = h.percentile(0.50);
    /// assert!((400..=600).contains(&p50), "p50 = {p50}");
    /// assert_eq!(h.percentile(1.0), 1000);
    /// ```
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the requested observation.
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        if rank <= self.zero {
            return 0;
        }
        let mut seen = self.zero;
        for (i, &count) in self.bins.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if rank <= seen + count {
                let lower = 1u64 << i;
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                let upper = upper.min(self.max);
                // Position of the rank inside this bin, in (0, 1].
                let frac = (rank - seen) as f64 / count as f64;
                return lower + ((upper - lower) as f64 * frac).round() as u64;
            }
            seen += count;
        }
        self.max
    }

    /// Folds another histogram into this one (bin-wise addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        self.zero += other.zero;
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        if self.bins.len() < other.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (mine, theirs) in self.bins.iter_mut().zip(&other.bins) {
            *mine += theirs;
        }
    }

    fn bin_of(value: u64) -> usize {
        (63 - value.leading_zeros()) as usize
    }
}

impl Extend<u64> for LogHistogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<u64> for LogHistogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = LogHistogram::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_boundaries() {
        let h = LogHistogram::new();
        assert_eq!(h.bin_for(1), 0);
        assert_eq!(h.bin_for(2), 1);
        assert_eq!(h.bin_for(3), 1);
        assert_eq!(h.bin_for(4), 2);
        assert_eq!(h.bin_for(u64::MAX), 63);
    }

    #[test]
    fn record_and_stats() {
        let h: LogHistogram = [0u64, 0, 1, 4, 5, 16].into_iter().collect();
        assert_eq!(h.count(), 6);
        assert_eq!(h.zero_count(), 2);
        assert_eq!(h.max(), 16);
        assert!((h.mean() - 26.0 / 6.0).abs() < 1e-12);
        let bins: Vec<_> = h.bins().collect();
        assert_eq!(bins, vec![(1, 1), (4, 2), (16, 1)]);
    }

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.bins().count(), 0);
        assert_eq!(h.percentile(0.5), 0);
    }

    #[test]
    fn percentile_zero_bin_and_extremes() {
        let h: LogHistogram = [0u64, 0, 0, 8, 9, 10].into_iter().collect();
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(0.5), 0); // rank 3 of 6 is still a zero
        assert_eq!(h.percentile(1.0), 10); // clamped to observed max
                                           // All observations in one bin [8, 16): estimates stay in-bin.
        let p75 = h.percentile(0.75);
        assert!((8..=10).contains(&p75), "p75 = {p75}");
    }

    #[test]
    fn percentile_is_monotone() {
        let h: LogHistogram = (0u64..500).map(|i| i * 17 % 4096).collect();
        let mut last = 0;
        for i in 0..=20 {
            let p = h.percentile(i as f64 / 20.0);
            assert!(p >= last, "percentile not monotone at {i}");
            last = p;
        }
        assert_eq!(last, h.max());
    }

    #[test]
    fn merge_matches_combined_recording() {
        let a: LogHistogram = [0u64, 1, 5, 100].into_iter().collect();
        let b: LogHistogram = [3u64, 5, 7000].into_iter().collect();
        let mut merged = a.clone();
        merged.merge(&b);
        let direct: LogHistogram = [0u64, 1, 5, 100, 3, 5, 7000].into_iter().collect();
        assert_eq!(merged, direct);
        assert_eq!(merged.count(), 7);
        assert_eq!(merged.max(), 7000);
    }
}
