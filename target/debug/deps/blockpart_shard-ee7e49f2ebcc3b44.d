/root/repo/target/debug/deps/blockpart_shard-ee7e49f2ebcc3b44.d: crates/shard/src/lib.rs crates/shard/src/cost.rs crates/shard/src/placement.rs crates/shard/src/policy.rs crates/shard/src/simulator.rs crates/shard/src/state.rs

/root/repo/target/debug/deps/libblockpart_shard-ee7e49f2ebcc3b44.rmeta: crates/shard/src/lib.rs crates/shard/src/cost.rs crates/shard/src/placement.rs crates/shard/src/policy.rs crates/shard/src/simulator.rs crates/shard/src/state.rs

crates/shard/src/lib.rs:
crates/shard/src/cost.rs:
crates/shard/src/placement.rs:
crates/shard/src/policy.rs:
crates/shard/src/simulator.rs:
crates/shard/src/state.rs:
