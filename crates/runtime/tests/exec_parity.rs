//! Engine-parity guarantees of the sharded runtime: the explicit serial
//! engine is a perfect shim for the historical path, a speculating
//! engine changes nothing but the additive `exec_*` counters, and
//! parallel runs are byte-identical — reports, trace records, metrics —
//! across lane counts and reruns.

use blockpart_ethereum::exec::ExecHandle;
use blockpart_ethereum::gen::{ChainGenerator, GeneratorConfig};
use blockpart_ethereum::{ExecutedTx, ParallelEngine, SerialEngine, World};
use blockpart_runtime::{Assignment, RuntimeConfig, RuntimeReport, ShardedRuntime};
use blockpart_types::ShardCount;

fn workload() -> (World, Vec<ExecutedTx>) {
    let synthetic = ChainGenerator::new(GeneratorConfig::test_scale(23)).generate();
    let txs: Vec<ExecutedTx> = synthetic.txs.iter().take(400).cloned().collect();
    (synthetic.chain.world().clone(), txs)
}

/// A load high enough that run queues build up, so a speculating engine
/// actually gets to work ahead.
fn config() -> RuntimeConfig {
    RuntimeConfig::new(ShardCount::TWO).with_inter_arrival_us(20)
}

fn parallel() -> ExecHandle {
    ExecHandle::new(ParallelEngine::new().with_lanes(2))
}

/// Zeroes the additive speculation counters so a parallel report can be
/// compared field-for-field against a serial one.
fn without_exec_counters(mut report: RuntimeReport) -> RuntimeReport {
    report.exec_speculated = 0;
    report.exec_conflicts = 0;
    report.exec_re_executions = 0;
    for shard in &mut report.per_shard {
        shard.exec_speculated = 0;
        shard.exec_conflicts = 0;
        shard.exec_re_executions = 0;
    }
    report
}

#[test]
fn explicit_serial_engine_is_a_perfect_shim() {
    let (world, txs) = workload();
    let default_run =
        ShardedRuntime::new(config(), Assignment::hashed(ShardCount::TWO)).run(&world, &txs);
    let explicit = ShardedRuntime::new(
        config().with_exec(ExecHandle::new(SerialEngine)),
        Assignment::hashed(ShardCount::TWO),
    )
    .run(&world, &txs);
    assert_eq!(default_run, explicit);
    assert_eq!(explicit.exec_speculated, 0);
    assert_eq!(explicit.exec_re_executions, 0);
}

#[test]
fn parallel_engine_changes_only_the_exec_counters() {
    let (world, txs) = workload();
    let serial =
        ShardedRuntime::new(config(), Assignment::hashed(ShardCount::TWO)).run(&world, &txs);
    let parallel_run = ShardedRuntime::new(
        config().with_exec(parallel()),
        Assignment::hashed(ShardCount::TWO),
    )
    .run(&world, &txs);
    assert!(
        parallel_run.exec_speculated > 0,
        "no speculation happened: {parallel_run:?}"
    );
    assert_eq!(
        without_exec_counters(parallel_run),
        without_exec_counters(serial.clone())
    );
    assert_eq!(serial.exec_speculated, 0);
}

#[test]
fn parallel_runs_are_byte_identical_across_lane_counts() {
    let (world, txs) = workload();
    let mut runs = Vec::new();
    for lanes in [1usize, 2, 8] {
        let cfg = config().with_exec(ExecHandle::new(ParallelEngine::new().with_lanes(lanes)));
        let (report, trace) =
            ShardedRuntime::new(cfg, Assignment::hashed(ShardCount::TWO)).run_traced(&world, &txs);
        runs.push((
            lanes,
            report,
            trace.records().to_vec(),
            trace.metrics_text(),
        ));
    }
    let (_, report0, records0, metrics0) = &runs[0];
    for (lanes, report, records, metrics) in &runs[1..] {
        assert_eq!(report, report0, "report differs at lanes={lanes}");
        assert_eq!(records, records0, "trace records differ at lanes={lanes}");
        assert_eq!(metrics, metrics0, "metrics differ at lanes={lanes}");
    }
}

#[test]
fn parallel_reruns_are_deterministic() {
    let (world, txs) = workload();
    let run = || {
        ShardedRuntime::new(
            config().with_exec(parallel()),
            Assignment::hashed(ShardCount::TWO),
        )
        .run(&world, &txs)
    };
    assert_eq!(run(), run());
}

#[test]
fn speculation_counters_roll_up_from_shards() {
    let (world, txs) = workload();
    let report = ShardedRuntime::new(
        config().with_exec(parallel()),
        Assignment::hashed(ShardCount::TWO),
    )
    .run(&world, &txs);
    let per_shard: u64 = report.per_shard.iter().map(|s| s.exec_speculated).sum();
    assert_eq!(report.exec_speculated, per_shard);
    let conflicts: u64 = report.per_shard.iter().map(|s| s.exec_conflicts).sum();
    assert_eq!(report.exec_conflicts, conflicts);
    let reexec: u64 = report.per_shard.iter().map(|s| s.exec_re_executions).sum();
    assert_eq!(report.exec_re_executions, reexec);
    assert!(report.exec_conflicts <= report.exec_re_executions);
}
