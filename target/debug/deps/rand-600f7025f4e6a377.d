/root/repo/target/debug/deps/rand-600f7025f4e6a377.d: third_party/rand/src/lib.rs

/root/repo/target/debug/deps/librand-600f7025f4e6a377.rmeta: third_party/rand/src/lib.rs

third_party/rand/src/lib.rs:
