/root/repo/target/debug/deps/blockpart_bench-c978f1d2ea6dc7bf.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/blockpart_bench-c978f1d2ea6dc7bf: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
