//! Out-of-core storage backend: the disk-resident data path that lets
//! paper-scale experiments run under a fixed memory budget.
//!
//! The paper (Fynn & Pedone, DSN 2018) partitions 30 months of Ethereum
//! — hundreds of millions of interactions — while a purely resident
//! pipeline caps out far earlier. This crate supplies the three pieces
//! that keep the working set bounded, all selected by the
//! [`StorageBackend`] enum threaded down from the CLI:
//!
//! * [`SegmentStore`] / [`SegmentStoreWriter`] — an append-only columnar
//!   segment store for interaction streams ([`segment`] documents the
//!   `BPSG` on-disk framing), with per-segment min/max time and block
//!   metadata for window pruning and segment-at-a-time readers;
//! * graph and CSR builds over the store ([`SegmentStore::build_graph`],
//!   [`SegmentStore::build_graph_window`]) that stream segments into the
//!   external-memory builder in `blockpart_graph::ooc` — byte-identical
//!   to the in-RAM builds wherever both fit;
//! * [`AccountStateStore`] — a compact append-only account/contract
//!   snapshot store, so 2PC state shipping serializes migration batches
//!   from disk instead of a resident `World`.
//!
//! # Examples
//!
//! ```
//! use blockpart_storage::SegmentStore;
//! use blockpart_graph::Interaction;
//! use blockpart_types::{Address, BlockNumber, StorageBackend, Timestamp};
//!
//! let dir = std::env::temp_dir().join("bpsg-lib-doc");
//! let mut w = SegmentStore::writer(&dir, 8).unwrap();
//! for t in 0..32u64 {
//!     w.push(
//!         Interaction::new(
//!             Timestamp::from_secs(t),
//!             Address::from_index(t % 5),
//!             Address::from_index((t + 1) % 5),
//!         ),
//!         BlockNumber::new(t / 4),
//!     ).unwrap();
//! }
//! let store = w.finish().unwrap();
//! let backend = StorageBackend::spill(dir.join("spill"), 1024);
//! let g = store.build_graph(&backend).unwrap();
//! assert_eq!(g.node_count(), 5);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod segment;
mod state;
mod store;

pub use segment::{SegmentError, SegmentMeta, SEGMENT_MAGIC, SEGMENT_VERSION};
pub use state::AccountStateStore;
pub use store::{EventStream, SegmentStore, SegmentStoreWriter, DEFAULT_SEGMENT_EVENTS};

pub use blockpart_types::{parse_mem_budget, SpillSession, StorageBackend};
